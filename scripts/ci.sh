#!/usr/bin/env bash
# Tier-1 verification plus the perf snapshot this repo tracks PR-over-PR.
set -euo pipefail
cd "$(dirname "$0")/.."

# Tier-1: the whole workspace must build and test clean, offline.
cargo build --release
cargo test -q

# Determinism: the parallel sweep engine must produce byte-identical
# results to the forced single-thread path (also part of `cargo test`,
# run again explicitly so a CI failure names the culprit directly).
cargo test -q -p mutcon-bench --test determinism

# Live-proxy smoke: origin + proxy on real sockets, hundreds of
# concurrent clients through the reactor threads — a stalled event
# loop shows up here as read timeouts, not as a hang.
cargo test -q -p mutcon-live --test reactor_smoke

# live-multi: the deterministic concurrency harness (fake clock +
# scripted origin + seeded schedules) under four reactors — miss
# coalescing, mid-transfer origin death, stale pooled sockets,
# refresh-vs-read interleavings, and the bit-identical-replay check.
MUTCON_LIVE_REACTORS=4 cargo test -q -p mutcon-live --test concurrency

# live-admin: the hot-swappable consistency runtime under four
# reactors — a PUT /admin/rules lands mid-load without dropping a
# single keep-alive connection or cache entry, the new Δ's poll
# cadence takes effect, removed paths cannot be resurrected by
# in-flight polls, and unchanged paths keep their adaptive-TTR state.
MUTCON_LIVE_REACTORS=4 cargo test -q -p mutcon-live --test admin

# live-wire: the zero-copy hit path under four reactors — vectored
# writes with partial-flush recovery over real sockets, pooled
# read/write buffers recycling across connection lifetimes, the
# flat-body_copies guarantee over keep-alive hit streams, and the
# /admin/stats wire counters.
MUTCON_LIVE_REACTORS=4 cargo test -q -p mutcon-live --test wire

# Backend matrix: the wire suite and the deterministic concurrency
# harness again under each reactor backend, four reactors. The epoll
# leg exercises the coalesced-interest ledger; the io_uring leg runs
# real rings where the kernel grants them and falls back (visibly,
# inside the engine) to epoll where it does not — either way the
# responses must be byte-identical, which the parity test inside the
# wire suite asserts directly.
for backend in epoll io_uring; do
  MUTCON_LIVE_BACKEND=$backend MUTCON_LIVE_REACTORS=4 \
    cargo test -q -p mutcon-live --test wire
  MUTCON_LIVE_BACKEND=$backend MUTCON_LIVE_REACTORS=4 \
    cargo test -q -p mutcon-live --test concurrency
done

# Perf snapshot: regenerate every figure plus the robustness grid with
# the default worker count, then the live-proxy load run (recorded as
# the live_bench section). On a multi-core machine --compare-serial
# re-runs the deterministic sections with one thread and records the
# speedup and the parallel/serial output equality in BENCH_repro.json;
# on a single core the comparison is skipped (there is no parallelism
# to measure).
target/release/repro --compare-serial --repeats 10 all > /dev/null

# live-multi, part 2: the reactor-count sweep (1, 2, 4) of the live
# proxy, spliced into BENCH_repro.json as live_bench_sweep. On a
# 1-core runner the points stay flat; on real hardware they must not.
target/release/repro live-bench --reactors 4 > /dev/null

# live-admin, part 2: the reconfigure scenario — rule reloads driven
# concurrently with load, recorded (throughput + p99 across the
# swaps) as the live_reload section of BENCH_repro.json.
target/release/repro live-bench --conns 100 --rounds 6 --reload-every 2 > /dev/null

# live-wire, part 2: the high-concurrency wire-path snapshot — 10000
# keep-alive connections (the engine raises RLIMIT_NOFILE to fit;
# a hard cap it cannot lift clamps the run, loudly, to what fits)
# with the refresher polling concurrently, p99 plus the syscall/copy
# and interest-coalescing counters spliced into BENCH_repro.json as
# the live_wire section.
target/release/repro live-wire --wire-conns 10000 > /dev/null

# Backend matrix, part 2: the epoll-vs-io_uring head-to-head at wire
# scale, spliced into BENCH_repro.json as the live_backend section
# (epoll leg only when the kernel refuses rings).
target/release/repro live-backend --wire-conns 2000 > /dev/null

# Zipf / L1 coherence: the per-reactor hot-object cache under four
# reactors — readers hammering the L1 while the refresher bumps
# versions, bit-identical seeded replay, and L1-on/L1-off parity. The
# whole live suite then re-runs with the L1 force-disabled
# (MUTCON_LIVE_L1=0): the L1 must be a pure cache of a cache, invisible
# to every behavioral assertion in the suite.
MUTCON_LIVE_REACTORS=4 cargo test -q -p mutcon-live --test coherence
MUTCON_LIVE_L1=0 MUTCON_LIVE_REACTORS=4 cargo test -q -p mutcon-live \
  --test coherence --test concurrency --test wire --test admin
# The cache-pressure snapshot: a Zipf catalog overflowing the L2,
# identical request sequences with the L1 on and off, spliced into
# BENCH_repro.json as live_zipf. repro exits non-zero if ANY stale
# serve is counted (engine post-serve audit or client-side stamp
# monotonicity), if the L2 never evicted, or if the L1 served no hits.
target/release/repro live-zipf > /dev/null

# Refresh plane: the due-queue scheduler + poll-worker pool. The
# refresh suite (never-double-poll, no resurrection, refresh-vs-read
# monotonicity, worker overlap, /admin/stats drift figures) and the
# coherence/admin suites run with the pool at its default width and
# again forced serial (MUTCON_LIVE_REFRESH_WORKERS=1): worker count
# must never change behavior, only drift. Then the drift bench — a
# 50k-rule backlog drained serial vs pooled over identical scripted
# origin latencies, spliced into BENCH_repro.json as live_refresh.
# repro exits non-zero unless the pool cuts p99 drift >= 5x at equal
# poll counts with zero stale serves.
MUTCON_LIVE_REFRESH_WORKERS=4 MUTCON_LIVE_REACTORS=4 cargo test -q -p mutcon-live \
  --test refresh --test coherence --test admin
MUTCON_LIVE_REFRESH_WORKERS=1 MUTCON_LIVE_REACTORS=4 cargo test -q -p mutcon-live \
  --test refresh --test coherence --test admin
target/release/repro live-refresh > /dev/null

# Overload control: the LIMD admission/pool limiters end to end — the
# flash-crowd shed with preserved miss coalescing and partition
# isolation, the double-death stale-retry regression, and the admin
# round-trip — then the wave bench: doubling flash crowds ramped 16×
# past saturation, spliced into BENCH_repro.json as live_overload.
# repro exits non-zero unless p99 and the non-429 error rate plateau.
cargo test -q -p mutcon-live --test overload
target/release/repro live-overload > /dev/null

echo "--- BENCH_repro.json ---"
cat BENCH_repro.json
