//! Exhaustive split-point tests for the resumable parsers: every
//! smoke-test byte stream, split at every boundary, must parse to
//! exactly what the one-shot parser produces — the property the
//! readiness-driven reactors rely on when reads fragment arbitrarily.
//!
//! These are the dependency-free exhaustive twins of the randomized
//! `--features proptests` suite (which needs the external `proptest`
//! crate and is gated off in offline builds).

use mutcon_http::message::{Request, Response};
use mutcon_http::parse::{parse_request, parse_response, RequestParser, ResponseParser};
use mutcon_http::types::Method;

/// The smoke streams: every request wire shape the workspace exchanges.
fn request_streams() -> Vec<(&'static str, Vec<u8>)> {
    let mut streams = vec![
        ("minimal", Request::get("/x").build().to_bytes()),
        (
            "headers",
            Request::get("/news/story.html")
                .host("example.org")
                .header("X-Thing", "a b c")
                .keep_alive()
                .build()
                .to_bytes(),
        ),
        (
            "conditional-poll",
            Request::get("/obj")
                .host("127.0.0.1:8080")
                .if_modified_since(mutcon_core::time::Timestamp::from_secs(784_111_777))
                .header("x-last-modified-ms", "784111777123")
                .build()
                .to_bytes(),
        ),
        (
            "body",
            Request::builder(Method::Put, "/obj")
                .connection_close()
                .body(&b"0123456789abcdef"[..])
                .build()
                .to_bytes(),
        ),
    ];
    // A pipelined pair in one stream.
    let mut pipelined = Request::get("/a").build().to_bytes();
    pipelined.extend(Request::get("/b").body(&b"zz"[..]).build().to_bytes());
    streams.push(("pipelined", pipelined));
    streams
}

/// The smoke streams on the response side.
fn response_streams() -> Vec<(&'static str, Vec<u8>)> {
    let mut streams = vec![
        ("no-body", Response::not_modified().build().to_bytes()),
        (
            "stamped",
            Response::ok()
                .last_modified(mutcon_core::time::Timestamp::from_secs(784_111_777))
                .header("x-last-modified-ms", "784111777123")
                .header("x-object-version", "17")
                .keep_alive()
                .body(&b"object=/x version=17\n"[..])
                .build()
                .to_bytes(),
        ),
        (
            "close",
            Response::ok()
                .connection_close()
                .body(&b"bye"[..])
                .build()
                .to_bytes(),
        ),
        (
            "history",
            Response::ok()
                .header("x-modification-history", "100,200,300")
                .body(&b"payload-bytes"[..])
                .build()
                .to_bytes(),
        ),
    ];
    let mut pipelined = Response::ok().body(&b"first"[..]).build().to_bytes();
    pipelined.extend(Response::not_modified().build().to_bytes());
    streams.push(("pipelined", pipelined));
    streams
}

#[test]
fn request_parser_agrees_with_one_shot_at_every_split() {
    for (name, wire) in request_streams() {
        let (expected, expected_n) = parse_request(&wire)
            .unwrap_or_else(|e| panic!("{name}: one-shot parse failed: {e}"))
            .unwrap_or_else(|| panic!("{name}: one-shot parse incomplete"));
        for split in 0..=wire.len() {
            let mut parser = RequestParser::new();
            // Feed the prefix; the parser may complete early (the split
            // is past the first message) or ask for more.
            let early = parser
                .advance(&wire[..split])
                .unwrap_or_else(|e| panic!("{name} split {split}: prefix error: {e}"));
            let (parsed, consumed) = match early {
                Some(done) => done,
                None => parser
                    .advance(&wire)
                    .unwrap_or_else(|e| panic!("{name} split {split}: resume error: {e}"))
                    .unwrap_or_else(|| panic!("{name} split {split}: never completed")),
            };
            assert_eq!(consumed, expected_n, "{name} split {split}: consumed");
            assert_eq!(parsed, expected, "{name} split {split}: message");
        }
    }
}

#[test]
fn response_parser_agrees_with_one_shot_at_every_split() {
    for (name, wire) in response_streams() {
        let (expected, expected_n) = parse_response(&wire)
            .unwrap_or_else(|e| panic!("{name}: one-shot parse failed: {e}"))
            .unwrap_or_else(|| panic!("{name}: one-shot parse incomplete"));
        for split in 0..=wire.len() {
            let mut parser = ResponseParser::new();
            let early = parser
                .advance(&wire[..split])
                .unwrap_or_else(|e| panic!("{name} split {split}: prefix error: {e}"));
            let (parsed, consumed) = match early {
                Some(done) => done,
                None => parser
                    .advance(&wire)
                    .unwrap_or_else(|e| panic!("{name} split {split}: resume error: {e}"))
                    .unwrap_or_else(|| panic!("{name} split {split}: never completed")),
            };
            assert_eq!(consumed, expected_n, "{name} split {split}: consumed");
            assert_eq!(parsed, expected, "{name} split {split}: message");
        }
    }
}

/// Byte-at-a-time (the most fragmented read pattern a reactor can see):
/// the parser must complete exactly on the last byte of each message
/// and chain across pipelined messages.
#[test]
fn request_parser_survives_byte_at_a_time_pipelines() {
    for (name, wire) in request_streams() {
        // Collect the one-shot reference sequence.
        let mut expected = Vec::new();
        let mut rest: &[u8] = &wire;
        while !rest.is_empty() {
            let (req, n) = parse_request(rest).unwrap().unwrap();
            expected.push(req);
            rest = &rest[n..];
        }

        // Replay byte-by-byte through one resumable parser.
        let mut parser = RequestParser::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut got = Vec::new();
        for &byte in &wire {
            buf.push(byte);
            if let Some((req, consumed)) = parser.advance(&buf).unwrap() {
                got.push(req);
                buf.drain(..consumed);
            }
        }
        assert_eq!(got, expected, "{name}: byte-at-a-time sequence differs");
        assert!(buf.is_empty(), "{name}: trailing unconsumed bytes");
        assert!(!parser.in_progress(), "{name}: parser not reset at end");
    }
}

#[test]
fn response_parser_survives_byte_at_a_time_pipelines() {
    for (name, wire) in response_streams() {
        let mut expected = Vec::new();
        let mut rest: &[u8] = &wire;
        while !rest.is_empty() {
            let (resp, n) = parse_response(rest).unwrap().unwrap();
            expected.push(resp);
            rest = &rest[n..];
        }

        let mut parser = ResponseParser::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut got = Vec::new();
        for &byte in &wire {
            buf.push(byte);
            if let Some((resp, consumed)) = parser.advance(&buf).unwrap() {
                got.push(resp);
                buf.drain(..consumed);
            }
        }
        assert_eq!(got, expected, "{name}: byte-at-a-time sequence differs");
        assert!(buf.is_empty(), "{name}: trailing unconsumed bytes");
        assert!(!parser.in_progress(), "{name}: parser not reset at end");
    }
}

/// Malformed streams must fail identically no matter where the read
/// fragments: a split can delay the error, never change or suppress it.
#[test]
fn malformed_streams_fail_identically_at_every_split() {
    let bad_requests: &[&[u8]] = &[
        b"GET\r\n\r\n",
        b"GET / HTTP/9.9\r\n\r\n",
        b"GET / HTTP/1.1\r\nno-colon\r\n\r\n",
        b"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
    ];
    for wire in bad_requests {
        let expected = parse_request(wire).expect_err("one-shot must reject");
        for split in 0..=wire.len() {
            let mut parser = RequestParser::new();
            let result = match parser.advance(&wire[..split]) {
                Err(e) => Err(e),
                Ok(Some(_)) => panic!("malformed stream parsed at split {split}"),
                Ok(None) => parser.advance(wire).map(|_| ()),
            };
            assert_eq!(
                result.expect_err("resumable must reject too"),
                expected,
                "split {split} changed the error for {:?}",
                String::from_utf8_lossy(wire)
            );
        }
    }
}
