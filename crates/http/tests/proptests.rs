// Property tests require the external `proptest` crate, which is not
// vendored in this offline workspace; enable with `--features proptests`
// in an environment that can reach a cargo registry.
#![cfg(feature = "proptests")]
//! Property-based tests: the HTTP wire format round-trips and the parser
//! never panics on arbitrary bytes.

use proptest::prelude::*;

use mutcon_core::time::Timestamp;
use mutcon_http::date::{format_http_date, parse_http_date};
use mutcon_http::extensions::{decode_modification_history, encode_modification_history};
use mutcon_http::message::{Request, Response};
use mutcon_http::parse::{parse_request, parse_response};
use mutcon_http::types::{Method, StatusCode};

/// RFC 7230 token characters for header names.
fn header_name_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z][a-zA-Z0-9-]{0,20}")
        .expect("valid regex strategy")
}

/// Header values: printable, no CR/LF, trimmed (serialization adds the
/// delimiters back, parsing trims).
fn header_value_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~&&[^\r\n]]{0,40}")
        .expect("valid regex strategy")
        .prop_map(|s| s.trim().to_owned())
}

fn target_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("/[a-zA-Z0-9_./-]{0,40}").expect("valid regex strategy")
}

proptest! {
    /// serialize ∘ parse = identity for requests.
    #[test]
    fn request_round_trips(
        target in target_strategy(),
        headers in prop::collection::vec(
            (header_name_strategy(), header_value_strategy()), 0..8),
        body in prop::collection::vec(any::<u8>(), 0..256),
        method_idx in 0usize..4,
    ) {
        let method = [Method::Get, Method::Head, Method::Post, Method::Put]
            [method_idx].clone();
        let mut builder = Request::builder(method.clone(), target.clone());
        for (name, value) in &headers {
            // `header` replaces; duplicates collapse, which is fine for
            // round-trip comparison through the map API.
            builder = builder.header(name, value.clone());
        }
        let request = builder.body(body.clone()).build();
        let wire = request.to_bytes();
        let (parsed, consumed) = parse_request(&wire)
            .expect("self-produced bytes parse")
            .expect("complete message");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(parsed.method(), &method);
        prop_assert_eq!(parsed.target(), target.as_str());
        prop_assert_eq!(parsed.body().as_ref(), body.as_slice());
        for (name, value) in &headers {
            prop_assert_eq!(parsed.headers().get(name), Some(value.as_str()));
        }
    }

    /// serialize ∘ parse = identity for responses.
    #[test]
    fn response_round_trips(
        code in 100u16..600,
        headers in prop::collection::vec(
            (header_name_strategy(), header_value_strategy()), 0..8),
        body in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let status = StatusCode::new(code).expect("in range");
        let mut builder = Response::builder(status);
        for (name, value) in &headers {
            builder = builder.header(name, value.clone());
        }
        let response = builder.body(body.clone()).build();
        let wire = response.to_bytes();
        let (parsed, consumed) = parse_response(&wire)
            .expect("self-produced bytes parse")
            .expect("complete message");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(parsed.status(), status);
        prop_assert_eq!(parsed.body().as_ref(), body.as_slice());
    }

    /// The parsers never panic, whatever bytes arrive.
    #[test]
    fn parsers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_request(&bytes);
        let _ = parse_response(&bytes);
    }

    /// HTTP-dates round-trip at second precision for any plausible epoch
    /// second (1970 through ~2318).
    #[test]
    fn http_dates_round_trip(secs in 0u64..11_000_000_000u64) {
        let t = Timestamp::from_secs(secs);
        let text = format_http_date(t);
        prop_assert_eq!(parse_http_date(&text).expect("own output parses"), t);
    }

    /// The date parser never panics on arbitrary short strings.
    #[test]
    fn date_parser_never_panics(s in "\\PC{0,40}") {
        let _ = parse_http_date(&s);
    }

    /// Modification histories round-trip.
    #[test]
    fn history_round_trips(stamps in prop::collection::vec(0u64..u64::MAX / 2, 0..20)) {
        let history: Vec<Timestamp> =
            stamps.iter().copied().map(Timestamp::from_millis).collect();
        let encoded = encode_modification_history(&history);
        prop_assert_eq!(decode_modification_history(&encoded), Some(history));
    }

    /// Random split points: the resumable request parser fed a prefix
    /// then the whole buffer agrees exactly with the one-shot parse
    /// (the exhaustive split suite lives ungated in parser_splits.rs;
    /// this covers randomly generated messages as well).
    #[test]
    fn resumable_request_parse_equals_one_shot_at_random_splits(
        target in target_strategy(),
        headers in prop::collection::vec(
            (header_name_strategy(), header_value_strategy()), 0..6),
        body in prop::collection::vec(any::<u8>(), 0..128),
        split_frac in 0.0f64..1.0,
    ) {
        let mut builder = Request::get(&target);
        for (name, value) in &headers {
            builder = builder.header(name, value.clone());
        }
        let wire = builder.body(body).build().to_bytes();
        let (expected, expected_n) = parse_request(&wire)
            .expect("self-produced bytes parse")
            .expect("complete message");

        let split = ((wire.len() as f64) * split_frac) as usize;
        let mut parser = mutcon_http::parse::RequestParser::new();
        let (parsed, consumed) = match parser.advance(&wire[..split]).expect("prefix ok") {
            Some(done) => done,
            None => parser
                .advance(&wire)
                .expect("resume ok")
                .expect("completes on full buffer"),
        };
        prop_assert_eq!(consumed, expected_n);
        prop_assert_eq!(parsed, expected);
    }

    /// Same property on the response side.
    #[test]
    fn resumable_response_parse_equals_one_shot_at_random_splits(
        code in 100u16..600,
        body in prop::collection::vec(any::<u8>(), 0..128),
        split_frac in 0.0f64..1.0,
    ) {
        let status = StatusCode::new(code).expect("in range");
        let wire = Response::builder(status).body(body).build().to_bytes();
        let (expected, expected_n) = parse_response(&wire)
            .expect("self-produced bytes parse")
            .expect("complete message");

        let split = ((wire.len() as f64) * split_frac) as usize;
        let mut parser = mutcon_http::parse::ResponseParser::new();
        let (parsed, consumed) = match parser.advance(&wire[..split]).expect("prefix ok") {
            Some(done) => done,
            None => parser
                .advance(&wire)
                .expect("resume ok")
                .expect("completes on full buffer"),
        };
        prop_assert_eq!(consumed, expected_n);
        prop_assert_eq!(parsed, expected);
    }
}
