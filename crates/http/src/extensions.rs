//! The paper's proposed HTTP/1.1 extensions (§5.1).
//!
//! Plain HTTP reports only the *most recent* modification time, which
//! makes the Figure 1(b) violation (several updates between polls, the
//! first of them too old) undetectable at the proxy. §5.1 proposes two
//! extensions, both implemented here over standard user-defined headers:
//!
//! * **Modification history** — the origin attaches
//!   `X-Modification-History`, the recent update instants of the object,
//!   letting the proxy compute violations exactly and feed its rate
//!   estimators with real inter-update gaps.
//! * **Tolerance cache-control directives** — clients (or proxies, on
//!   behalf of users) declare their consistency requirements with
//!   `Cache-Control` extension directives: `delta=<ms>` for Δ,
//!   `mutual-delta=<ms>` for δ, and `group="<id>"` to name the related-
//!   object group a request belongs to.
//!
//! History timestamps travel as integer milliseconds since the Unix epoch:
//! unambiguous, compact, and — unlike IMF-fixdate — free of the one-second
//! truncation that would blur closely spaced updates.

use mutcon_core::time::{Duration, Timestamp};

use crate::headers::{HeaderMap, HeaderName};

/// Encodes update instants (milliseconds since the epoch) as an
/// `X-Modification-History` value: `"t1, t2, t3"`, oldest first.
pub fn encode_modification_history(history: &[Timestamp]) -> String {
    let mut out = String::with_capacity(history.len() * 14);
    for (i, t) in history.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&t.as_millis().to_string());
    }
    out
}

/// Decodes an `X-Modification-History` value. Returns `None` if any entry
/// is not a valid integer.
pub fn decode_modification_history(value: &str) -> Option<Vec<Timestamp>> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return Some(Vec::new());
    }
    trimmed
        .split(',')
        .map(|part| part.trim().parse::<u64>().ok().map(Timestamp::from_millis))
        .collect()
}

/// Attaches a modification history to a header map.
pub fn set_modification_history(headers: &mut HeaderMap, history: &[Timestamp]) {
    headers.insert(
        HeaderName::X_MODIFICATION_HISTORY,
        encode_modification_history(history),
    );
}

/// Reads a modification history from a header map, if present and valid.
pub fn modification_history(headers: &HeaderMap) -> Option<Vec<Timestamp>> {
    decode_modification_history(headers.get(HeaderName::X_MODIFICATION_HISTORY)?)
}

/// The consistency requirements a client expresses through `Cache-Control`
/// extension directives (§5.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConsistencyDirectives {
    /// Individual temporal tolerance Δ (`delta=<ms>`).
    pub delta: Option<Duration>,
    /// Mutual tolerance δ (`mutual-delta=<ms>`).
    pub mutual_delta: Option<Duration>,
    /// Related-object group this object belongs to (`group="<id>"`).
    pub group: Option<String>,
}

impl ConsistencyDirectives {
    /// Whether no directive is set.
    pub fn is_empty(&self) -> bool {
        self.delta.is_none() && self.mutual_delta.is_none() && self.group.is_none()
    }

    /// Renders the directives as a `Cache-Control` value (empty string if
    /// no directive is set).
    pub fn to_header_value(&self) -> String {
        let mut parts = Vec::new();
        if let Some(d) = self.delta {
            parts.push(format!("delta={}", d.as_millis()));
        }
        if let Some(d) = self.mutual_delta {
            parts.push(format!("mutual-delta={}", d.as_millis()));
        }
        if let Some(g) = &self.group {
            parts.push(format!("group=\"{g}\""));
        }
        parts.join(", ")
    }

    /// Parses the recognized extension directives out of a `Cache-Control`
    /// value, ignoring standard directives (`max-age`, `no-cache`, …) and
    /// anything malformed — the forward-compatible behaviour HTTP requires
    /// of unknown cache-control extensions.
    pub fn parse(value: &str) -> ConsistencyDirectives {
        let mut out = ConsistencyDirectives::default();
        for directive in value.split(',') {
            let directive = directive.trim();
            let Some((key, val)) = directive.split_once('=') else {
                continue;
            };
            match key.trim() {
                "delta" => {
                    if let Ok(ms) = val.trim().parse::<u64>() {
                        out.delta = Some(Duration::from_millis(ms));
                    }
                }
                "mutual-delta" => {
                    if let Ok(ms) = val.trim().parse::<u64>() {
                        out.mutual_delta = Some(Duration::from_millis(ms));
                    }
                }
                "group" => {
                    let val = val.trim();
                    let unquoted = val
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .unwrap_or(val);
                    if !unquoted.is_empty() {
                        out.group = Some(unquoted.to_owned());
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Reads the directives from a header map's `Cache-Control` field.
    pub fn from_headers(headers: &HeaderMap) -> ConsistencyDirectives {
        match headers.get(HeaderName::CACHE_CONTROL) {
            Some(v) => ConsistencyDirectives::parse(v),
            None => ConsistencyDirectives::default(),
        }
    }

    /// Writes the directives into a header map (replacing `Cache-Control`);
    /// clears the header if no directive is set.
    pub fn apply(&self, headers: &mut HeaderMap) {
        if self.is_empty() {
            headers.remove(HeaderName::CACHE_CONTROL);
        } else {
            headers.insert(HeaderName::CACHE_CONTROL, self.to_header_value());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Timestamp {
        Timestamp::from_millis(v)
    }

    #[test]
    fn history_round_trips() {
        let history = vec![ms(1_000), ms(2_500), ms(99_999_999_999)];
        let encoded = encode_modification_history(&history);
        assert_eq!(encoded, "1000, 2500, 99999999999");
        assert_eq!(decode_modification_history(&encoded).unwrap(), history);
    }

    #[test]
    fn empty_history() {
        assert_eq!(encode_modification_history(&[]), "");
        assert_eq!(decode_modification_history("").unwrap(), Vec::new());
        assert_eq!(decode_modification_history("  ").unwrap(), Vec::new());
    }

    #[test]
    fn bad_history_is_none() {
        assert_eq!(decode_modification_history("12, abc"), None);
        assert_eq!(decode_modification_history("12,,14"), None);
        assert_eq!(decode_modification_history("-5"), None);
    }

    #[test]
    fn history_via_headers() {
        let mut headers = HeaderMap::new();
        assert_eq!(modification_history(&headers), None);
        set_modification_history(&mut headers, &[ms(5), ms(10)]);
        assert_eq!(modification_history(&headers), Some(vec![ms(5), ms(10)]));
    }

    #[test]
    fn directives_round_trip() {
        let d = ConsistencyDirectives {
            delta: Some(Duration::from_mins(10)),
            mutual_delta: Some(Duration::from_mins(5)),
            group: Some("breaking-news".to_owned()),
        };
        let value = d.to_header_value();
        assert_eq!(
            value,
            "delta=600000, mutual-delta=300000, group=\"breaking-news\""
        );
        assert_eq!(ConsistencyDirectives::parse(&value), d);
    }

    #[test]
    fn parse_ignores_standard_and_malformed_directives() {
        let d = ConsistencyDirectives::parse("max-age=60, no-cache, delta=abc, delta=1000");
        assert_eq!(d.delta, Some(Duration::from_secs(1)));
        assert_eq!(d.mutual_delta, None);
        assert_eq!(d.group, None);
    }

    #[test]
    fn parse_group_quoting() {
        assert_eq!(
            ConsistencyDirectives::parse("group=plain").group,
            Some("plain".to_owned())
        );
        assert_eq!(
            ConsistencyDirectives::parse("group=\"quoted\"").group,
            Some("quoted".to_owned())
        );
        assert_eq!(ConsistencyDirectives::parse("group=\"\"").group, None);
    }

    #[test]
    fn apply_and_from_headers() {
        let mut headers = HeaderMap::new();
        let d = ConsistencyDirectives {
            delta: Some(Duration::from_secs(30)),
            ..Default::default()
        };
        d.apply(&mut headers);
        assert_eq!(headers.get(HeaderName::CACHE_CONTROL), Some("delta=30000"));
        assert_eq!(ConsistencyDirectives::from_headers(&headers), d);

        ConsistencyDirectives::default().apply(&mut headers);
        assert!(!headers.contains(HeaderName::CACHE_CONTROL));
        assert!(ConsistencyDirectives::from_headers(&headers).is_empty());
    }
}
