//! HTTP-date (IMF-fixdate) handling, built from scratch.
//!
//! `Last-Modified` and `If-Modified-Since` carry timestamps in the
//! RFC 7231 IMF-fixdate format — `Sun, 06 Nov 1994 08:49:37 GMT` — with
//! one-second resolution. This module converts between that format and
//! the workspace's millisecond [`Timestamp`] (interpreted as milliseconds
//! since the Unix epoch), using Howard Hinnant's `civil_from_days` /
//! `days_from_civil` algorithms for the calendar math.
//!
//! ```
//! use mutcon_http::date::{format_http_date, parse_http_date};
//! use mutcon_core::time::Timestamp;
//!
//! let t = Timestamp::from_secs(784_111_777);
//! let s = format_http_date(t);
//! assert_eq!(s, "Sun, 06 Nov 1994 08:49:37 GMT");
//! assert_eq!(parse_http_date(&s).unwrap(), t);
//! ```

use std::fmt;

use mutcon_core::time::Timestamp;

const DAY_NAMES: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Error returned when a string is not a valid IMF-fixdate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidHttpDate(String);

impl fmt::Display for InvalidHttpDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid HTTP date: {:?}", self.0)
    }
}

impl std::error::Error for InvalidHttpDate {}

/// Days since 1970-01-01 for a civil date (Hinnant's `days_from_civil`).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = ((m + 9) % 12) as u64; // Mar = 0
    let doy = (153 * mp + 2) / 5 + (d as u64 - 1); // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i64 - 719_468
}

/// Civil date `(year, month, day)` for days since 1970-01-01
/// (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Formats a timestamp (milliseconds since the Unix epoch) as an
/// IMF-fixdate. Sub-second precision is truncated, matching the format's
/// resolution.
pub fn format_http_date(t: Timestamp) -> String {
    let secs = t.as_secs() as i64;
    let days = secs.div_euclid(86_400);
    let tod = secs.rem_euclid(86_400);
    let (year, month, day) = civil_from_days(days);
    // 1970-01-01 was a Thursday; DAY_NAMES starts at Monday.
    let weekday = (days + 3).rem_euclid(7) as usize;
    format!(
        "{}, {:02} {} {:04} {:02}:{:02}:{:02} GMT",
        DAY_NAMES[weekday],
        day,
        MONTH_NAMES[(month - 1) as usize],
        year,
        tod / 3_600,
        (tod / 60) % 60,
        tod % 60
    )
}

/// Parses an IMF-fixdate into a timestamp (milliseconds since the Unix
/// epoch).
///
/// # Errors
///
/// Returns [`InvalidHttpDate`] for anything that is not a well-formed
/// IMF-fixdate with a GMT zone and a date on or after the Unix epoch.
pub fn parse_http_date(s: &str) -> Result<Timestamp, InvalidHttpDate> {
    let err = || InvalidHttpDate(s.to_owned());
    // "Sun, 06 Nov 1994 08:49:37 GMT"
    let rest = s.strip_suffix(" GMT").ok_or_else(err)?;
    let (dayname, rest) = rest.split_once(", ").ok_or_else(err)?;
    if !DAY_NAMES.contains(&dayname) {
        return Err(err());
    }
    let mut parts = rest.split(' ');
    let day: u32 = parse_fixed_int(parts.next().ok_or_else(err)?, 2).ok_or_else(err)?;
    let month_name = parts.next().ok_or_else(err)?;
    let month = MONTH_NAMES
        .iter()
        .position(|m| *m == month_name)
        .ok_or_else(err)? as u32
        + 1;
    let year: i64 = parse_fixed_int(parts.next().ok_or_else(err)?, 4).ok_or_else(err)? as i64;
    let time = parts.next().ok_or_else(err)?;
    if parts.next().is_some() {
        return Err(err());
    }
    let mut hms = time.split(':');
    let h: u32 = parse_fixed_int(hms.next().ok_or_else(err)?, 2).ok_or_else(err)?;
    let m: u32 = parse_fixed_int(hms.next().ok_or_else(err)?, 2).ok_or_else(err)?;
    let sec: u32 = parse_fixed_int(hms.next().ok_or_else(err)?, 2).ok_or_else(err)?;
    if hms.next().is_some() || h > 23 || m > 59 || sec > 60 || day == 0 {
        return Err(err());
    }
    if !valid_day(year, month, day) {
        return Err(err());
    }
    // Verify the weekday actually matches the date (RFC says recipients
    // SHOULD ignore it, but round-trip correctness is worth asserting for
    // the dates we emit; tolerate mismatches from other producers).
    let days = days_from_civil(year, month, day);
    let total = days
        .checked_mul(86_400)
        .and_then(|d| d.checked_add((h * 3_600 + m * 60 + sec) as i64))
        .ok_or_else(err)?;
    if total < 0 {
        return Err(err());
    }
    Ok(Timestamp::from_secs(total as u64))
}

fn parse_fixed_int(s: &str, width: usize) -> Option<u32> {
    if s.len() != width || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

fn valid_day(year: i64, month: u32, day: u32) -> bool {
    let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    let dim = match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if leap => 29,
        2 => 28,
        _ => return false,
    };
    (1..=dim).contains(&day)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_core::time::Duration;

    #[test]
    fn formats_rfc_example() {
        // The canonical RFC 7231 example.
        let t = Timestamp::from_secs(784_111_777);
        assert_eq!(format_http_date(t), "Sun, 06 Nov 1994 08:49:37 GMT");
    }

    #[test]
    fn epoch_is_thursday() {
        assert_eq!(format_http_date(Timestamp::ZERO), "Thu, 01 Jan 1970 00:00:00 GMT");
    }

    #[test]
    fn truncates_milliseconds() {
        let t = Timestamp::from_millis(1_500);
        assert_eq!(format_http_date(t), format_http_date(Timestamp::from_secs(1)));
    }

    #[test]
    fn parse_round_trips_many_instants() {
        // Sweep across years, leap days, DST-irrelevant boundaries.
        let starts = [
            0u64,
            951_782_400,   // 2000-02-29
            1_078_012_800, // 2004-02-29
            1_609_459_199, // 2020-12-31 23:59:59
            4_102_444_800, // 2100-01-01 (non-leap century)
        ];
        for s in starts {
            for off in [0u64, 1, 59, 3_600, 86_399, 86_400, 12_345_678] {
                let t = Timestamp::from_secs(s + off);
                let text = format_http_date(t);
                assert_eq!(parse_http_date(&text).unwrap(), t, "failed for {text}");
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "Sun, 06 Nov 1994 08:49:37",       // no zone
            "Sun, 06 Nov 1994 08:49:37 UTC",   // wrong zone
            "Xxx, 06 Nov 1994 08:49:37 GMT",   // bad weekday
            "Sun, 6 Nov 1994 08:49:37 GMT",    // day not 2 digits
            "Sun, 06 Foo 1994 08:49:37 GMT",   // bad month
            "Sun, 06 Nov 94 08:49:37 GMT",     // 2-digit year
            "Sun, 06 Nov 1994 08:49 GMT",      // missing seconds
            "Sun, 06 Nov 1994 24:00:00 GMT",   // hour out of range
            "Sun, 06 Nov 1994 08:49:37 GMT x", // trailing junk
            "Sun, 31 Feb 1994 08:49:37 GMT",   // impossible day
            "Sun, 00 Nov 1994 08:49:37 GMT",   // zero day
        ] {
            assert!(parse_http_date(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(parse_http_date("Tue, 29 Feb 2000 00:00:00 GMT").is_ok()); // 400-year leap
        assert!(parse_http_date("Thu, 29 Feb 1900 00:00:00 GMT").is_err()); // century non-leap
        assert!(parse_http_date("Sun, 29 Feb 2004 00:00:00 GMT").is_ok());
        assert!(parse_http_date("Tue, 29 Feb 2005 00:00:00 GMT").is_err());
    }

    #[test]
    fn weekday_names_follow_calendar() {
        // A full known week: 2023-01-02 (Monday) through 2023-01-08.
        let monday = Timestamp::from_secs(1_672_617_600);
        for (i, name) in DAY_NAMES.iter().enumerate() {
            let t = monday + Duration::from_hours(24 * i as u64);
            assert!(format_http_date(t).starts_with(name), "day {i}");
        }
    }

    #[test]
    fn error_display() {
        let e = parse_http_date("nonsense").unwrap_err();
        assert!(e.to_string().contains("nonsense"));
    }
}
