//! HTTP request and response messages, with builders and wire
//! serialization.

use bytes::Bytes;

use mutcon_core::time::Timestamp;

use crate::date::format_http_date;
use crate::headers::{HeaderMap, HeaderName};
use crate::types::{HttpVersion, Method, StatusCode};

/// An HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    method: Method,
    target: String,
    version: HttpVersion,
    headers: HeaderMap,
    body: Bytes,
}

impl Request {
    /// Starts building a `GET` request for `target`.
    pub fn get(target: impl Into<String>) -> RequestBuilder {
        RequestBuilder::new(Method::Get, target)
    }

    /// Starts building a request with an arbitrary method.
    pub fn builder(method: Method, target: impl Into<String>) -> RequestBuilder {
        RequestBuilder::new(method, target)
    }

    /// Assembles a request from already-parsed parts (used by the parser).
    pub(crate) fn from_parts(
        method: Method,
        target: String,
        version: HttpVersion,
        headers: HeaderMap,
        body: Bytes,
    ) -> Request {
        Request {
            method,
            target,
            version,
            headers,
            body,
        }
    }

    /// The request method.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// The request target (path).
    pub fn target(&self) -> &str {
        &self.target
    }

    /// The protocol version.
    pub fn version(&self) -> HttpVersion {
        self.version
    }

    /// The headers.
    pub fn headers(&self) -> &HeaderMap {
        &self.headers
    }

    /// Mutable access to the headers.
    pub fn headers_mut(&mut self) -> &mut HeaderMap {
        &mut self.headers
    }

    /// The body.
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// Whether the sender will keep the connection open for another
    /// request (see [`crate::connection::wants_keep_alive`]).
    pub fn wants_keep_alive(&self) -> bool {
        crate::connection::wants_keep_alive(self.version, &self.headers)
    }

    /// Serializes the request to its wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(self.method.as_str().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.target.as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.version.as_str().as_bytes());
        out.extend_from_slice(b"\r\n");
        write_headers_and_body(&mut out, &self.headers, &self.body);
        out
    }
}

/// Builder for [`Request`].
#[derive(Debug, Clone)]
pub struct RequestBuilder {
    method: Method,
    target: String,
    version: HttpVersion,
    headers: HeaderMap,
    body: Bytes,
}

impl RequestBuilder {
    fn new(method: Method, target: impl Into<String>) -> Self {
        RequestBuilder {
            method,
            target: target.into(),
            version: HttpVersion::V11,
            headers: HeaderMap::new(),
            body: Bytes::new(),
        }
    }

    /// Sets the protocol version (defaults to HTTP/1.1).
    pub fn version(mut self, version: HttpVersion) -> Self {
        self.version = version;
        self
    }

    /// Sets (replacing) a header.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid header token.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.insert(name, value);
        self
    }

    /// Sets the `Host` header.
    pub fn host(self, host: impl Into<String>) -> Self {
        self.header(HeaderName::HOST, host)
    }

    /// Sets `If-Modified-Since` from a timestamp — the conditional poll at
    /// the heart of the consistency protocol (§5).
    pub fn if_modified_since(self, t: Timestamp) -> Self {
        self.header(HeaderName::IF_MODIFIED_SINCE, format_http_date(t))
    }

    /// Advertises `Connection: keep-alive` (persistent-connection
    /// clients, e.g. the proxy's origin pool).
    pub fn keep_alive(mut self) -> Self {
        crate::connection::set_keep_alive(&mut self.headers);
        self
    }

    /// Advertises `Connection: close` (last request on the connection).
    pub fn connection_close(mut self) -> Self {
        crate::connection::set_close(&mut self.headers);
        self
    }

    /// Sets the body.
    pub fn body(mut self, body: impl Into<Bytes>) -> Self {
        self.body = body.into();
        self
    }

    /// Finishes the request.
    pub fn build(self) -> Request {
        Request {
            method: self.method,
            target: self.target,
            version: self.version,
            headers: self.headers,
            body: self.body,
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    version: HttpVersion,
    status: StatusCode,
    headers: HeaderMap,
    body: Bytes,
}

impl Response {
    /// Starts building a response with the given status.
    pub fn builder(status: StatusCode) -> ResponseBuilder {
        ResponseBuilder {
            version: HttpVersion::V11,
            status,
            headers: HeaderMap::new(),
            body: Bytes::new(),
        }
    }

    /// A ready-made `200 OK` builder.
    pub fn ok() -> ResponseBuilder {
        Response::builder(StatusCode::OK)
    }

    /// A ready-made `304 Not Modified` builder.
    pub fn not_modified() -> ResponseBuilder {
        Response::builder(StatusCode::NOT_MODIFIED)
    }

    /// Assembles a response from already-parsed parts (used by the
    /// parser).
    pub(crate) fn from_parts(
        version: HttpVersion,
        status: StatusCode,
        headers: HeaderMap,
        body: Bytes,
    ) -> Response {
        Response {
            version,
            status,
            headers,
            body,
        }
    }

    /// The protocol version.
    pub fn version(&self) -> HttpVersion {
        self.version
    }

    /// The status code.
    pub fn status(&self) -> StatusCode {
        self.status
    }

    /// The headers.
    pub fn headers(&self) -> &HeaderMap {
        &self.headers
    }

    /// Mutable access to the headers.
    pub fn headers_mut(&mut self) -> &mut HeaderMap {
        &mut self.headers
    }

    /// The body.
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// Whether the sender will keep the connection open for another
    /// exchange (see [`crate::connection::wants_keep_alive`]).
    pub fn wants_keep_alive(&self) -> bool {
        crate::connection::wants_keep_alive(self.version, &self.headers)
    }

    /// The parsed `Last-Modified` header, if present and valid.
    pub fn last_modified(&self) -> Option<Timestamp> {
        crate::date::parse_http_date(self.headers.get(HeaderName::LAST_MODIFIED)?).ok()
    }

    /// Serializes the response to its wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        self.write_head(&mut out);
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes just the head — status line and headers (including the
    /// auto-derived `content-length`), *without* the terminating blank
    /// line or body.
    ///
    /// This is the zero-copy serving hook: a server can append further
    /// per-response headers, the blank line, and then hand the shared
    /// body slice to `writev` untouched. `write_head` + `"\r\n"` + body
    /// is byte-identical to [`Response::to_bytes`].
    pub fn write_head(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.version.as_str().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.status.as_u16().to_string().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.status.reason().as_bytes());
        out.extend_from_slice(b"\r\n");
        write_headers(out, &self.headers, self.body.len());
    }

    /// [`Response::write_head`] into a fresh buffer.
    pub fn head_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        self.write_head(&mut out);
        out
    }
}

/// Builder for [`Response`].
#[derive(Debug, Clone)]
pub struct ResponseBuilder {
    version: HttpVersion,
    status: StatusCode,
    headers: HeaderMap,
    body: Bytes,
}

impl ResponseBuilder {
    /// Sets the protocol version (defaults to HTTP/1.1).
    pub fn version(mut self, version: HttpVersion) -> Self {
        self.version = version;
        self
    }

    /// Sets (replacing) a header.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid header token.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.insert(name, value);
        self
    }

    /// Sets `Last-Modified` from a timestamp.
    pub fn last_modified(self, t: Timestamp) -> Self {
        self.header(HeaderName::LAST_MODIFIED, format_http_date(t))
    }

    /// Advertises `Connection: keep-alive`.
    pub fn keep_alive(mut self) -> Self {
        crate::connection::set_keep_alive(&mut self.headers);
        self
    }

    /// Advertises `Connection: close` (the connection ends after this
    /// response).
    pub fn connection_close(mut self) -> Self {
        crate::connection::set_close(&mut self.headers);
        self
    }

    /// Sets the body.
    pub fn body(mut self, body: impl Into<Bytes>) -> Self {
        self.body = body.into();
        self
    }

    /// Finishes the response.
    pub fn build(self) -> Response {
        Response {
            version: self.version,
            status: self.status,
            headers: self.headers,
            body: self.body,
        }
    }
}

/// Writes headers (adding `Content-Length` when absent), the blank line,
/// and the body.
fn write_headers_and_body(out: &mut Vec<u8>, headers: &HeaderMap, body: &Bytes) {
    write_headers(out, headers, body.len());
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
}

/// Writes the header block, adding `content-length: body_len` when the
/// headers don't carry one and the body is non-empty. No terminating
/// blank line: callers may append more headers first.
fn write_headers(out: &mut Vec<u8>, headers: &HeaderMap, body_len: usize) {
    let mut wrote_length = false;
    for (name, value) in headers.iter() {
        if name.as_str() == HeaderName::CONTENT_LENGTH {
            wrote_length = true;
        }
        out.extend_from_slice(name.as_str().as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    if !wrote_length && body_len > 0 {
        out.extend_from_slice(format!("content-length: {body_len}\r\n").as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_and_accessors() {
        let req = Request::get("/a/b")
            .host("example.org")
            .if_modified_since(Timestamp::from_secs(784_111_777))
            .build();
        assert_eq!(req.method(), &Method::Get);
        assert_eq!(req.target(), "/a/b");
        assert_eq!(req.version(), HttpVersion::V11);
        assert_eq!(req.headers().get("host"), Some("example.org"));
        assert_eq!(
            req.headers().get("if-modified-since"),
            Some("Sun, 06 Nov 1994 08:49:37 GMT")
        );
        assert!(req.body().is_empty());
    }

    #[test]
    fn request_wire_format() {
        let req = Request::get("/x").host("h").build();
        let wire = String::from_utf8(req.to_bytes()).unwrap();
        assert!(wire.starts_with("GET /x HTTP/1.1\r\n"));
        assert!(wire.contains("host: h\r\n"));
        assert!(wire.ends_with("\r\n\r\n"));
    }

    #[test]
    fn body_gets_content_length() {
        let req = Request::builder(Method::Put, "/obj")
            .body(&b"hello"[..])
            .build();
        let wire = String::from_utf8(req.to_bytes()).unwrap();
        assert!(wire.contains("content-length: 5\r\n"));
        assert!(wire.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn explicit_content_length_not_duplicated() {
        let resp = Response::ok()
            .header("Content-Length", "3")
            .body(&b"abc"[..])
            .build();
        let wire = String::from_utf8(resp.to_bytes()).unwrap();
        assert_eq!(wire.matches("content-length").count(), 1);
    }

    #[test]
    fn response_builder_and_accessors() {
        let t = Timestamp::from_secs(784_111_777);
        let resp = Response::ok()
            .last_modified(t)
            .body(&b"data"[..])
            .build();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.last_modified(), Some(t));
        assert_eq!(&resp.body()[..], b"data");
        let wire = String::from_utf8(resp.to_bytes()).unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK\r\n"));
    }

    #[test]
    fn not_modified_is_bodyless() {
        let resp = Response::not_modified().build();
        assert_eq!(resp.status(), StatusCode::NOT_MODIFIED);
        let wire = String::from_utf8(resp.to_bytes()).unwrap();
        assert!(wire.starts_with("HTTP/1.1 304 Not Modified\r\n"));
        assert!(!wire.contains("content-length"));
    }

    #[test]
    fn last_modified_absent_or_invalid() {
        let resp = Response::ok().build();
        assert_eq!(resp.last_modified(), None);
        let resp = Response::ok().header("Last-Modified", "garbage").build();
        assert_eq!(resp.last_modified(), None);
    }

    #[test]
    fn head_plus_body_matches_to_bytes() {
        let resp = Response::ok()
            .last_modified(Timestamp::from_secs(784_111_777))
            .header("x-object-value", "2.5")
            .body(&b"payload"[..])
            .build();
        let mut rebuilt = resp.head_bytes();
        rebuilt.extend_from_slice(b"\r\n");
        rebuilt.extend_from_slice(resp.body());
        assert_eq!(rebuilt, resp.to_bytes());
        // The head carries the derived content-length but no terminator.
        let head = String::from_utf8(resp.head_bytes()).unwrap();
        assert!(head.contains("content-length: 7\r\n"));
        assert!(!head.ends_with("\r\n\r\n"));
    }

    #[test]
    fn head_of_bodyless_response_omits_length() {
        let head = String::from_utf8(Response::not_modified().build().head_bytes()).unwrap();
        assert_eq!(head, "HTTP/1.1 304 Not Modified\r\n");
    }

    #[test]
    fn headers_mut_allows_in_place_edits() {
        let mut req = Request::get("/").build();
        req.headers_mut().insert("x-extra", "1");
        assert_eq!(req.headers().get("x-extra"), Some("1"));
        let mut resp = Response::ok().build();
        resp.headers_mut().insert("x-extra", "2");
        assert_eq!(resp.headers().get("x-extra"), Some("2"));
    }
}
