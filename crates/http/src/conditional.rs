//! Conditional-request logic: `If-Modified-Since` versus `Last-Modified`.
//!
//! A TTR expiry turns into an `If-Modified-Since` poll (§5): the proxy
//! sends the modification time of its cached copy, and the origin answers
//! `304 Not Modified` (cheap) or `200 OK` with a fresh copy. IMF-fixdates
//! have one-second resolution, so all comparisons here are performed at
//! second granularity — a sub-second update is only visible on the *next*
//! poll, exactly as with real HTTP.

use mutcon_core::time::Timestamp;

use crate::headers::HeaderName;
use crate::message::Request;

/// Does a resource last modified at `last_modified` count as modified for
/// a client that validated at `if_modified_since`?
///
/// Comparison is at second granularity (the resolution of HTTP dates).
pub fn is_modified_since(last_modified: Timestamp, if_modified_since: Timestamp) -> bool {
    last_modified.as_secs() > if_modified_since.as_secs()
}

/// Extracts and parses the `If-Modified-Since` header of a request.
///
/// Returns `None` when the header is absent *or* unparseable — RFC 7232
/// instructs servers to ignore invalid dates, which degrades the request
/// to an unconditional fetch.
pub fn if_modified_since(request: &Request) -> Option<Timestamp> {
    crate::date::parse_http_date(request.headers().get(HeaderName::IF_MODIFIED_SINCE)?).ok()
}

/// Decides whether a conditional request should receive a full response.
///
/// `true` → respond `200 OK` with the current copy; `false` → `304 Not
/// Modified`. Unconditional requests (no valid `If-Modified-Since`) always
/// get the full response.
pub fn wants_full_response(request: &Request, last_modified: Timestamp) -> bool {
    match if_modified_since(request) {
        None => true,
        Some(since) => is_modified_since(last_modified, since),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_core::time::Duration;

    #[test]
    fn second_granularity_comparison() {
        let base = Timestamp::from_secs(1_000);
        assert!(!is_modified_since(base, base));
        assert!(is_modified_since(base + Duration::from_secs(1), base));
        // Sub-second updates are invisible at HTTP-date resolution.
        assert!(!is_modified_since(base + Duration::from_millis(500), base));
        assert!(!is_modified_since(base, base + Duration::from_secs(5)));
    }

    #[test]
    fn extracts_header() {
        let t = Timestamp::from_secs(784_111_777);
        let req = Request::get("/x").if_modified_since(t).build();
        assert_eq!(if_modified_since(&req), Some(t));
    }

    #[test]
    fn missing_or_invalid_header_is_none() {
        let req = Request::get("/x").build();
        assert_eq!(if_modified_since(&req), None);
        let req = Request::get("/x")
            .header(HeaderName::IF_MODIFIED_SINCE, "not a date")
            .build();
        assert_eq!(if_modified_since(&req), None);
    }

    #[test]
    fn full_response_decisions() {
        let lm = Timestamp::from_secs(2_000);
        // Unconditional → full response.
        let req = Request::get("/x").build();
        assert!(wants_full_response(&req, lm));
        // Validated before the update → full response.
        let req = Request::get("/x")
            .if_modified_since(Timestamp::from_secs(1_000))
            .build();
        assert!(wants_full_response(&req, lm));
        // Validated at/after the update → 304.
        let req = Request::get("/x").if_modified_since(lm).build();
        assert!(!wants_full_response(&req, lm));
        // Invalid date → treated as unconditional.
        let req = Request::get("/x")
            .header(HeaderName::IF_MODIFIED_SINCE, "garbage")
            .build();
        assert!(wants_full_response(&req, lm));
    }
}
