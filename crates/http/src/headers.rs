//! Case-insensitive HTTP header storage.
//!
//! [`HeaderMap`] is an insertion-ordered multi-map: repeated `append`s of
//! the same name are preserved (as HTTP allows), `insert` replaces all
//! occurrences, and lookups are case-insensitive via the normalized
//! [`HeaderName`].

use std::fmt;
use std::str::FromStr;

use crate::types::is_token_byte;

/// A validated, lowercase-normalized header name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HeaderName(String);

impl HeaderName {
    /// Standard names used throughout the workspace.
    pub const HOST: &'static str = "host";
    /// `Last-Modified`.
    pub const LAST_MODIFIED: &'static str = "last-modified";
    /// `If-Modified-Since`.
    pub const IF_MODIFIED_SINCE: &'static str = "if-modified-since";
    /// `Content-Length`.
    pub const CONTENT_LENGTH: &'static str = "content-length";
    /// `Content-Type`.
    pub const CONTENT_TYPE: &'static str = "content-type";
    /// `Cache-Control`.
    pub const CACHE_CONTROL: &'static str = "cache-control";
    /// `Date`.
    pub const DATE: &'static str = "date";
    /// `Connection`.
    pub const CONNECTION: &'static str = "connection";
    /// The paper's §5.1 modification-history extension header.
    pub const X_MODIFICATION_HISTORY: &'static str = "x-modification-history";
    /// Extension header carrying the object's numeric value (for
    /// value-domain objects served by the live origin).
    pub const X_OBJECT_VALUE: &'static str = "x-object-value";
    /// Extension header carrying the origin's version counter.
    pub const X_OBJECT_VERSION: &'static str = "x-object-version";

    /// Creates a header name, validating RFC 7230 token syntax and
    /// normalizing to lowercase.
    pub fn new(name: &str) -> Result<HeaderName, InvalidHeaderName> {
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(InvalidHeaderName(name.to_owned()));
        }
        Ok(HeaderName(name.to_ascii_lowercase()))
    }

    /// The normalized (lowercase) name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for HeaderName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for HeaderName {
    type Err = InvalidHeaderName;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        HeaderName::new(s)
    }
}

/// Error returned for malformed header names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidHeaderName(String);

impl fmt::Display for InvalidHeaderName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid header name: {:?}", self.0)
    }
}

impl std::error::Error for InvalidHeaderName {}

/// An insertion-ordered, case-insensitive header multi-map.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeaderMap {
    entries: Vec<(HeaderName, String)>,
}

impl HeaderMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        HeaderMap::default()
    }

    /// Number of header fields (counting repeats).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no fields.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First value for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.entries
            .iter()
            .find(|(n, _)| n.0 == name)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in insertion order.
    pub fn get_all<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a str> + 'a {
        let name = name.to_ascii_lowercase();
        self.entries
            .iter()
            .filter(move |(n, _)| n.0 == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether any field named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Replaces all occurrences of `name` with a single field.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid header token; use
    /// [`HeaderName::new`] + [`HeaderMap::insert_name`] for fallible
    /// insertion of untrusted names.
    pub fn insert(&mut self, name: &str, value: impl Into<String>) {
        let name = HeaderName::new(name)
            .unwrap_or_else(|e| panic!("{e} (use insert_name for untrusted input)"));
        self.insert_name(name, value);
    }

    /// Replaces all occurrences of a pre-validated name.
    pub fn insert_name(&mut self, name: HeaderName, value: impl Into<String>) {
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, value.into()));
    }

    /// Appends a field without touching existing ones with the same name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid header token.
    pub fn append(&mut self, name: &str, value: impl Into<String>) {
        let name = HeaderName::new(name)
            .unwrap_or_else(|e| panic!("{e} (use append_name for untrusted input)"));
        self.append_name(name, value);
    }

    /// Appends a field with a pre-validated name.
    pub fn append_name(&mut self, name: HeaderName, value: impl Into<String>) {
        self.entries.push((name, value.into()));
    }

    /// Removes all occurrences of `name`; returns how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let name = name.to_ascii_lowercase();
        let before = self.entries.len();
        self.entries.retain(|(n, _)| n.0 != name);
        before - self.entries.len()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&HeaderName, &str)> + '_ {
        self.entries.iter().map(|(n, v)| (n, v.as_str()))
    }
}

impl<'a> IntoIterator for &'a HeaderMap {
    type Item = (&'a HeaderName, &'a str);
    type IntoIter = std::vec::IntoIter<(&'a HeaderName, &'a str)>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

impl FromIterator<(HeaderName, String)> for HeaderMap {
    fn from_iter<I: IntoIterator<Item = (HeaderName, String)>>(iter: I) -> Self {
        HeaderMap {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_normalize_case() {
        let a = HeaderName::new("Last-Modified").unwrap();
        let b = HeaderName::new("LAST-MODIFIED").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "last-modified");
        assert_eq!(a.to_string(), "last-modified");
        assert_eq!("X-Foo".parse::<HeaderName>().unwrap().as_str(), "x-foo");
    }

    #[test]
    fn names_reject_invalid() {
        assert!(HeaderName::new("").is_err());
        assert!(HeaderName::new("bad header").is_err());
        assert!(HeaderName::new("bad:header").is_err());
        assert!(HeaderName::new("bad\r\nheader").is_err());
        let e = HeaderName::new("no good").unwrap_err();
        assert!(e.to_string().contains("no good"));
    }

    #[test]
    fn insert_replaces_append_accumulates() {
        let mut h = HeaderMap::new();
        h.append("Set-Thing", "a");
        h.append("set-thing", "b");
        assert_eq!(h.get_all("SET-THING").collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(h.len(), 2);
        h.insert("Set-Thing", "c");
        assert_eq!(h.get_all("set-thing").collect::<Vec<_>>(), vec!["c"]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn get_is_case_insensitive() {
        let mut h = HeaderMap::new();
        h.insert("Content-Length", "42");
        assert_eq!(h.get("content-length"), Some("42"));
        assert_eq!(h.get("CONTENT-LENGTH"), Some("42"));
        assert_eq!(h.get("missing"), None);
        assert!(h.contains("Content-Length"));
        assert!(!h.contains("nope"));
    }

    #[test]
    fn remove_reports_count() {
        let mut h = HeaderMap::new();
        h.append("a", "1");
        h.append("A", "2");
        h.append("b", "3");
        assert_eq!(h.remove("a"), 2);
        assert_eq!(h.remove("a"), 0);
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
    }

    #[test]
    fn iteration_preserves_order() {
        let mut h = HeaderMap::new();
        h.append("b", "2");
        h.append("a", "1");
        let names: Vec<_> = h.iter().map(|(n, _)| n.as_str().to_owned()).collect();
        assert_eq!(names, vec!["b", "a"]);
        let pairs: Vec<_> = (&h).into_iter().collect();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid header name")]
    fn insert_panics_on_bad_name() {
        let mut h = HeaderMap::new();
        h.insert("bad name", "v");
    }

    #[test]
    fn collect_from_pairs() {
        let h: HeaderMap = [(HeaderName::new("x").unwrap(), String::from("1"))]
            .into_iter()
            .collect();
        assert_eq!(h.get("x"), Some("1"));
    }
}
