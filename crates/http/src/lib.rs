//! # mutcon-http — a from-scratch HTTP/1.1 subset
//!
//! Every consistency mechanism in the paper rides on HTTP: the proxy
//! refreshes objects with `If-Modified-Since` requests, servers answer
//! `304 Not Modified` or `200 OK` with a `Last-Modified` stamp, and §5.1
//! proposes protocol extensions (a modification history and tolerance
//! cache-control directives) that make violation detection exact. This
//! crate implements exactly that subset, with no external HTTP
//! dependencies:
//!
//! * [`types`] — methods, status codes, protocol versions.
//! * [`date`] — IMF-fixdate (`Sun, 06 Nov 1994 08:49:37 GMT`) parsing and
//!   formatting, mapped onto the workspace's [`Timestamp`].
//! * [`headers`] — a case-insensitive multi-map with typed accessors.
//! * [`message`] — request/response types with builders.
//! * [`parse`] — an incremental wire-format parser.
//! * [`conditional`] — `If-Modified-Since` / `Last-Modified` logic.
//! * [`connection`] — `Connection` header semantics (keep-alive vs
//!   close), used by the live proxy's persistent origin pool.
//! * [`extensions`] — the paper's §5.1 extensions:
//!   `X-Modification-History` and the `delta`/`mutual-delta`/`group`
//!   cache-control directives.
//!
//! ```
//! use mutcon_http::message::Request;
//! use mutcon_http::parse::parse_request;
//! use mutcon_core::time::Timestamp;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let req = Request::get("/news/story.html")
//!     .if_modified_since(Timestamp::from_secs(1_000_000_000))
//!     .build();
//! let wire = req.to_bytes();
//! let (parsed, consumed) = parse_request(&wire)?.expect("complete");
//! assert_eq!(consumed, wire.len());
//! assert_eq!(parsed.target(), "/news/story.html");
//! # Ok(())
//! # }
//! ```
//!
//! [`Timestamp`]: mutcon_core::time::Timestamp

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conditional;
pub mod connection;
pub mod date;
pub mod extensions;
pub mod headers;
pub mod message;
pub mod parse;
pub mod types;

pub use headers::{HeaderMap, HeaderName};
pub use message::{Request, Response};
pub use parse::ParseError;
pub use types::{Method, StatusCode};
