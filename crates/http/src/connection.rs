//! `Connection` header semantics: connection persistence (keep-alive).
//!
//! HTTP/1.1 connections are persistent unless a `Connection: close` is
//! present; HTTP/1.0 connections close unless `Connection: keep-alive`
//! is present (RFC 7230 §6.3). The header value is a comma-separated,
//! case-insensitive token list, possibly spread across repeated fields —
//! `Connection: keep-alive, x-extension` and two separate `Connection`
//! lines mean the same thing.
//!
//! The 2001-era upstream client opened one socket per request
//! (`Connection: close` semantics); the live proxy's keep-alive origin
//! pool relies on these helpers to decide, per message, whether the
//! peer will keep the socket open for the next request.

use crate::headers::{HeaderMap, HeaderName};
use crate::types::HttpVersion;

/// The `Connection` token requesting persistence.
pub const KEEP_ALIVE: &str = "keep-alive";
/// The `Connection` token requesting teardown after this message.
pub const CLOSE: &str = "close";

/// Whether any `Connection` field contains `token` (case-insensitive,
/// comma-separated lists across repeated fields per RFC 7230 §6.1).
pub fn connection_has_token(headers: &HeaderMap, token: &str) -> bool {
    headers
        .get_all(HeaderName::CONNECTION)
        .flat_map(|value| value.split(','))
        .any(|t| t.trim().eq_ignore_ascii_case(token))
}

/// Whether the peer that sent a message with these `version` + `headers`
/// will keep the connection open for another message.
///
/// * HTTP/1.1 — persistent unless `Connection: close`.
/// * HTTP/1.0 — closes unless `Connection: keep-alive`.
pub fn wants_keep_alive(version: HttpVersion, headers: &HeaderMap) -> bool {
    match version {
        HttpVersion::V11 => !connection_has_token(headers, CLOSE),
        HttpVersion::V10 => connection_has_token(headers, KEEP_ALIVE),
    }
}

/// Marks a message as keep-alive: replaces any `Connection` field with
/// `keep-alive`. Explicit even on HTTP/1.1 (where it is the default) so
/// 2001-era HTTP/1.0 intermediaries hold the socket open too.
pub fn set_keep_alive(headers: &mut HeaderMap) {
    headers.insert(HeaderName::CONNECTION, KEEP_ALIVE);
}

/// Marks a message as the last on its connection: replaces any
/// `Connection` field with `close`.
pub fn set_close(headers: &mut HeaderMap) {
    headers.insert(HeaderName::CONNECTION, CLOSE);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Request, Response};
    use crate::parse::{parse_request, parse_response};

    #[test]
    fn http11_defaults_to_keep_alive() {
        let req = Request::get("/x").build();
        assert!(wants_keep_alive(req.version(), req.headers()));
        let resp = Response::ok().build();
        assert!(wants_keep_alive(resp.version(), resp.headers()));
    }

    #[test]
    fn http11_close_token_closes() {
        let req = Request::get("/x").connection_close().build();
        assert!(!wants_keep_alive(req.version(), req.headers()));
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = Request::get("/x").version(HttpVersion::V10).build();
        assert!(!wants_keep_alive(req.version(), req.headers()));
        let kept = Request::get("/x")
            .version(HttpVersion::V10)
            .keep_alive()
            .build();
        assert!(wants_keep_alive(kept.version(), kept.headers()));
    }

    #[test]
    fn token_matching_is_case_insensitive_and_list_aware() {
        let mut headers = HeaderMap::new();
        headers.insert(HeaderName::CONNECTION, "Keep-Alive, X-Extension");
        assert!(connection_has_token(&headers, "keep-alive"));
        assert!(connection_has_token(&headers, "x-extension"));
        assert!(!connection_has_token(&headers, "close"));

        // Tokens spread across repeated fields count too.
        let mut headers = HeaderMap::new();
        headers.append(HeaderName::CONNECTION, "x-extension");
        headers.append(HeaderName::CONNECTION, " CLOSE ");
        assert!(connection_has_token(&headers, "close"));
    }

    #[test]
    fn set_helpers_replace_existing_fields() {
        let mut headers = HeaderMap::new();
        headers.append(HeaderName::CONNECTION, "close");
        headers.append(HeaderName::CONNECTION, "x-old");
        set_keep_alive(&mut headers);
        assert_eq!(
            headers.get_all(HeaderName::CONNECTION).collect::<Vec<_>>(),
            vec![KEEP_ALIVE]
        );
        set_close(&mut headers);
        assert_eq!(
            headers.get_all(HeaderName::CONNECTION).collect::<Vec<_>>(),
            vec![CLOSE]
        );
    }

    #[test]
    fn keep_alive_round_trips_on_the_wire() {
        // Request: builder → bytes → parser preserves the semantics.
        let req = Request::get("/pool").keep_alive().build();
        let (parsed, _) = parse_request(&req.to_bytes()).unwrap().unwrap();
        assert_eq!(parsed.headers().get(HeaderName::CONNECTION), Some(KEEP_ALIVE));
        assert!(wants_keep_alive(parsed.version(), parsed.headers()));

        let req = Request::get("/last").connection_close().build();
        let (parsed, _) = parse_request(&req.to_bytes()).unwrap().unwrap();
        assert!(!wants_keep_alive(parsed.version(), parsed.headers()));

        // Response: same round trip.
        let resp = Response::ok().keep_alive().body(&b"x"[..]).build();
        let (parsed, _) = parse_response(&resp.to_bytes()).unwrap().unwrap();
        assert!(wants_keep_alive(parsed.version(), parsed.headers()));

        let resp = Response::ok().connection_close().build();
        let (parsed, _) = parse_response(&resp.to_bytes()).unwrap().unwrap();
        assert!(!wants_keep_alive(parsed.version(), parsed.headers()));
    }
}
