//! Basic HTTP protocol types: methods, status codes, versions.

use std::fmt;
use std::str::FromStr;

/// An HTTP request method (the subset the consistency protocol uses, plus
/// an escape hatch for anything else).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Method {
    /// `GET` — fetches and polls (`If-Modified-Since`) use this.
    Get,
    /// `HEAD` — metadata-only polls.
    Head,
    /// `POST`.
    Post,
    /// `PUT` — the live origin accepts updates through this.
    Put,
    /// Any other token.
    Other(String),
}

impl Method {
    /// The method token as it appears on the wire.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Other(s) => s,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Method {
    type Err = InvalidToken;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(is_token_byte) {
            return Err(InvalidToken);
        }
        Ok(match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            other => Method::Other(other.to_owned()),
        })
    }
}

/// Error returned when a string is not a valid HTTP token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidToken;

impl fmt::Display for InvalidToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid HTTP token")
    }
}

impl std::error::Error for InvalidToken {}

/// RFC 7230 `tchar`.
pub(crate) fn is_token_byte(b: u8) -> bool {
    matches!(b,
        b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-' | b'.'
        | b'^' | b'_' | b'`' | b'|' | b'~'
        | b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z')
}

/// An HTTP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StatusCode(u16);

impl StatusCode {
    /// `200 OK`.
    pub const OK: StatusCode = StatusCode(200);
    /// `304 Not Modified` — the backbone of `If-Modified-Since` polling.
    pub const NOT_MODIFIED: StatusCode = StatusCode(304);
    /// `400 Bad Request`.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// `401 Unauthorized` — the admin plane's bearer-token gate.
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// `404 Not Found`.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// `405 Method Not Allowed`.
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// `429 Too Many Requests` — overload admission shedding.
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// `500 Internal Server Error`.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// `503 Service Unavailable` — parked past the accept deadline.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// Creates a status code, rejecting values outside `100..=599`.
    pub fn new(code: u16) -> Option<StatusCode> {
        (100..=599).contains(&code).then_some(StatusCode(code))
    }

    /// The numeric code.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// `true` for `2xx`.
    pub const fn is_success(self) -> bool {
        self.0 >= 200 && self.0 < 300
    }

    /// The canonical reason phrase for the codes this crate uses.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            404 => "Not Found",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// The HTTP protocol version; only 1.0 and 1.1 are representable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HttpVersion {
    /// HTTP/1.0.
    V10,
    /// HTTP/1.1 (default).
    #[default]
    V11,
}

impl HttpVersion {
    /// The version string as it appears on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            HttpVersion::V10 => "HTTP/1.0",
            HttpVersion::V11 => "HTTP/1.1",
        }
    }
}

impl fmt::Display for HttpVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for HttpVersion {
    type Err = InvalidToken;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "HTTP/1.0" => Ok(HttpVersion::V10),
            "HTTP/1.1" => Ok(HttpVersion::V11),
            _ => Err(InvalidToken),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_round_trips() {
        for (s, m) in [
            ("GET", Method::Get),
            ("HEAD", Method::Head),
            ("POST", Method::Post),
            ("PUT", Method::Put),
        ] {
            assert_eq!(s.parse::<Method>().unwrap(), m);
            assert_eq!(m.as_str(), s);
            assert_eq!(m.to_string(), s);
        }
        let custom = "PATCH".parse::<Method>().unwrap();
        assert_eq!(custom, Method::Other("PATCH".into()));
    }

    #[test]
    fn method_rejects_invalid_tokens() {
        assert!("".parse::<Method>().is_err());
        assert!("GE T".parse::<Method>().is_err());
        assert!("GET\r".parse::<Method>().is_err());
    }

    #[test]
    fn status_codes() {
        assert_eq!(StatusCode::OK.as_u16(), 200);
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::NOT_MODIFIED.is_success());
        assert_eq!(StatusCode::NOT_MODIFIED.reason(), "Not Modified");
        assert_eq!(StatusCode::new(299).unwrap().reason(), "Unknown");
        assert!(StatusCode::new(42).is_none());
        assert!(StatusCode::new(600).is_none());
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
    }

    #[test]
    fn versions() {
        assert_eq!("HTTP/1.1".parse::<HttpVersion>().unwrap(), HttpVersion::V11);
        assert_eq!("HTTP/1.0".parse::<HttpVersion>().unwrap(), HttpVersion::V10);
        assert!("HTTP/2".parse::<HttpVersion>().is_err());
        assert_eq!(HttpVersion::default(), HttpVersion::V11);
        assert_eq!(HttpVersion::V10.to_string(), "HTTP/1.0");
    }

    #[test]
    fn errors_display() {
        assert!(!InvalidToken.to_string().is_empty());
    }
}
