//! Incremental parsing of HTTP/1.1 messages from raw bytes.
//!
//! Both parsers follow the same contract: given a buffer that may hold a
//! partial message, they return
//!
//! * `Ok(Some((message, consumed)))` — a complete message was parsed from
//!   the first `consumed` bytes (a connection loop drains those bytes and
//!   tries again for pipelined messages),
//! * `Ok(None)` — the buffer holds a valid prefix; read more bytes,
//! * `Err(ParseError)` — the bytes can never become a valid message.
//!
//! Bodies are delimited by `Content-Length` only (the consistency protocol
//! never needs chunked transfer), and an absent `Content-Length` means an
//! empty body — all messages the workspace exchanges are self-delimiting,
//! keeping connections reusable.
//!
//! For readiness-driven connection loops that feed bytes in as the socket
//! produces them, the stateful [`RequestParser`]/[`ResponseParser`] carry
//! the same contract *resumably*: the header-terminator scan picks up
//! where the previous partial read left off and a parsed header section
//! is cached while body bytes trickle in, so each byte is examined once
//! no matter how fragmented the reads are.

use std::fmt;

use bytes::Bytes;

use crate::headers::{HeaderMap, HeaderName};
use crate::message::{Request, Response};
use crate::types::{HttpVersion, Method, StatusCode};

/// Maximum accepted header-section size; guards against unbounded buffering.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Maximum accepted body size.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Error returned when bytes cannot form a valid HTTP message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The request/status line is malformed.
    InvalidStartLine,
    /// A header line is malformed.
    InvalidHeader,
    /// The HTTP version is unsupported.
    InvalidVersion,
    /// The status code is not a number in `100..=599`.
    InvalidStatus,
    /// `Content-Length` is not a valid number.
    InvalidContentLength,
    /// The header section exceeds [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParseError::InvalidStartLine => "invalid start line",
            ParseError::InvalidHeader => "invalid header line",
            ParseError::InvalidVersion => "unsupported HTTP version",
            ParseError::InvalidStatus => "invalid status code",
            ParseError::InvalidContentLength => "invalid content-length",
            ParseError::HeadTooLarge => "header section too large",
            ParseError::BodyTooLarge => "body too large",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// Locates the end of the header section (the `\r\n\r\n`), returning the
/// offset just past it. `from` is how far a previous scan got without
/// finding it, so resumed scans are O(new bytes), not O(buffer).
fn find_head_end(buf: &[u8], from: usize) -> Result<Option<usize>, ParseError> {
    // Back up 3 bytes: the terminator may straddle the old buffer end.
    let start = from.saturating_sub(3).min(buf.len());
    match buf[start..].windows(4).position(|w| w == b"\r\n\r\n") {
        Some(pos) => {
            let end = start + pos + 4;
            if end > MAX_HEAD_BYTES {
                Err(ParseError::HeadTooLarge)
            } else {
                Ok(Some(end))
            }
        }
        None => {
            if buf.len() > MAX_HEAD_BYTES {
                Err(ParseError::HeadTooLarge)
            } else {
                Ok(None)
            }
        }
    }
}

/// Parses the header block (everything between the start line and the
/// blank line).
fn parse_headers(block: &str) -> Result<HeaderMap, ParseError> {
    let mut headers = HeaderMap::new();
    for line in block.split("\r\n").filter(|l| !l.is_empty()) {
        let (name, value) = line.split_once(':').ok_or(ParseError::InvalidHeader)?;
        let name = HeaderName::new(name).map_err(|_| ParseError::InvalidHeader)?;
        headers.append_name(name, value.trim().to_owned());
    }
    Ok(headers)
}

fn body_length(headers: &HeaderMap) -> Result<usize, ParseError> {
    match headers.get(HeaderName::CONTENT_LENGTH) {
        None => Ok(0),
        Some(v) => {
            let len: usize = v.trim().parse().map_err(|_| ParseError::InvalidContentLength)?;
            if len > MAX_BODY_BYTES {
                Err(ParseError::BodyTooLarge)
            } else {
                Ok(len)
            }
        }
    }
}

/// Splits the decoded header section into start line and header block.
fn split_head(buf: &[u8], head_end: usize) -> Result<(&str, &str), ParseError> {
    let head =
        std::str::from_utf8(&buf[..head_end - 4]).map_err(|_| ParseError::InvalidHeader)?;
    Ok(head.split_once("\r\n").unwrap_or((head, "")))
}

/// Parses `"GET /path HTTP/1.1"`.
fn parse_request_line(start_line: &str) -> Result<(Method, String, HttpVersion), ParseError> {
    let mut parts = start_line.split(' ');
    let method: Method = parts
        .next()
        .ok_or(ParseError::InvalidStartLine)?
        .parse()
        .map_err(|_| ParseError::InvalidStartLine)?;
    let target = parts.next().ok_or(ParseError::InvalidStartLine)?;
    if target.is_empty() || target.contains(|c: char| c.is_ascii_whitespace()) {
        return Err(ParseError::InvalidStartLine);
    }
    let version: HttpVersion = parts
        .next()
        .ok_or(ParseError::InvalidStartLine)?
        .parse()
        .map_err(|_| ParseError::InvalidVersion)?;
    if parts.next().is_some() {
        return Err(ParseError::InvalidStartLine);
    }
    Ok((method, target.to_owned(), version))
}

/// Parses `"HTTP/1.1 200 OK"` — the reason phrase may contain spaces or
/// be absent.
fn parse_status_line(start_line: &str) -> Result<(HttpVersion, StatusCode), ParseError> {
    let mut parts = start_line.splitn(3, ' ');
    let version: HttpVersion = parts
        .next()
        .ok_or(ParseError::InvalidStartLine)?
        .parse()
        .map_err(|_| ParseError::InvalidVersion)?;
    let code: u16 = parts
        .next()
        .ok_or(ParseError::InvalidStartLine)?
        .parse()
        .map_err(|_| ParseError::InvalidStatus)?;
    let status = StatusCode::new(code).ok_or(ParseError::InvalidStatus)?;
    Ok((version, status))
}

/// A fully parsed header section waiting for its body bytes.
#[derive(Debug)]
struct PendingRequest {
    method: Method,
    target: String,
    version: HttpVersion,
    headers: HeaderMap,
    head_end: usize,
    body_len: usize,
}

/// A resumable request parser for readiness-driven connection loops.
///
/// Feed it the connection's accumulated read buffer after every partial
/// read. Between calls that return `Ok(None)` the buffer must only grow
/// (append-only); once a message is returned, drain the `consumed` bytes
/// from the front — the parser has already reset itself for the next
/// message. Unlike re-running [`parse_request`] from scratch, progress is
/// remembered: the `\r\n\r\n` scan resumes where it left off and a parsed
/// header section is never re-parsed while body bytes trickle in.
#[derive(Debug, Default)]
pub struct RequestParser {
    /// How far the head-terminator scan got without finding `\r\n\r\n`.
    scanned: usize,
    /// Parsed head awaiting `body_len` bytes.
    head: Option<PendingRequest>,
}

impl RequestParser {
    /// A parser at the start of a message.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Whether the parser is mid-message (bytes seen, no message yet) —
    /// distinguishes a clean idle EOF from a truncated message.
    pub fn in_progress(&self) -> bool {
        self.scanned > 0 || self.head.is_some()
    }

    /// Tries to complete one request from the front of `buf`.
    ///
    /// # Errors
    ///
    /// See [`ParseError`]; after an error the connection (and parser) are
    /// beyond recovery. `Ok(None)` means "incomplete, read more".
    pub fn advance(&mut self, buf: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
        if self.head.is_none() {
            let Some(head_end) = find_head_end(buf, self.scanned)? else {
                self.scanned = buf.len();
                return Ok(None);
            };
            let (start_line, header_block) = split_head(buf, head_end)?;
            let (method, target, version) = parse_request_line(start_line)?;
            let headers = parse_headers(header_block)?;
            let body_len = body_length(&headers)?;
            self.head = Some(PendingRequest {
                method,
                target,
                version,
                headers,
                head_end,
                body_len,
            });
        }
        let pending = self.head.as_ref().expect("head parsed above");
        let total = pending.head_end + pending.body_len;
        if buf.len() < total {
            return Ok(None);
        }
        let pending = self.head.take().expect("head parsed above");
        let body = Bytes::copy_from_slice(&buf[pending.head_end..total]);
        self.scanned = 0;
        Ok(Some((
            Request::from_parts(pending.method, pending.target, pending.version, pending.headers, body),
            total,
        )))
    }
}

/// A fully parsed response head waiting for its body bytes.
#[derive(Debug)]
struct PendingResponse {
    version: HttpVersion,
    status: StatusCode,
    headers: HeaderMap,
    head_end: usize,
    body_len: usize,
}

/// The response-side twin of [`RequestParser`]; same contract.
#[derive(Debug, Default)]
pub struct ResponseParser {
    scanned: usize,
    head: Option<PendingResponse>,
}

impl ResponseParser {
    /// A parser at the start of a message.
    pub fn new() -> ResponseParser {
        ResponseParser::default()
    }

    /// Whether the parser is mid-message (bytes seen, no message yet).
    pub fn in_progress(&self) -> bool {
        self.scanned > 0 || self.head.is_some()
    }

    /// Tries to complete one response from the front of `buf`.
    ///
    /// # Errors
    ///
    /// See [`ParseError`]; `Ok(None)` means "incomplete, read more".
    pub fn advance(&mut self, buf: &[u8]) -> Result<Option<(Response, usize)>, ParseError> {
        if self.head.is_none() {
            let Some(head_end) = find_head_end(buf, self.scanned)? else {
                self.scanned = buf.len();
                return Ok(None);
            };
            let (start_line, header_block) = split_head(buf, head_end)?;
            let (version, status) = parse_status_line(start_line)?;
            let headers = parse_headers(header_block)?;
            let body_len = body_length(&headers)?;
            self.head = Some(PendingResponse {
                version,
                status,
                headers,
                head_end,
                body_len,
            });
        }
        let pending = self.head.as_ref().expect("head parsed above");
        let total = pending.head_end + pending.body_len;
        if buf.len() < total {
            return Ok(None);
        }
        let pending = self.head.take().expect("head parsed above");
        let body = Bytes::copy_from_slice(&buf[pending.head_end..total]);
        self.scanned = 0;
        Ok(Some((
            Response::from_parts(pending.version, pending.status, pending.headers, body),
            total,
        )))
    }
}

/// Attempts to parse one [`Request`] from the front of `buf` (stateless
/// one-shot form of [`RequestParser`]).
///
/// # Errors
///
/// See [`ParseError`]; `Ok(None)` means "incomplete, read more".
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
    RequestParser::new().advance(buf)
}

/// Attempts to parse one [`Response`] from the front of `buf` (stateless
/// one-shot form of [`ResponseParser`]).
///
/// # Errors
///
/// See [`ParseError`]; `Ok(None)` means "incomplete, read more".
pub fn parse_response(buf: &[u8]) -> Result<Option<(Response, usize)>, ParseError> {
    ResponseParser::new().advance(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_request() {
        let wire = b"GET /x HTTP/1.1\r\n\r\n";
        let (req, n) = parse_request(wire).unwrap().unwrap();
        assert_eq!(n, wire.len());
        assert_eq!(req.method(), &Method::Get);
        assert_eq!(req.target(), "/x");
        assert!(req.headers().is_empty());
    }

    #[test]
    fn parses_request_with_headers_and_body() {
        let wire = b"PUT /obj HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello";
        let (req, n) = parse_request(wire).unwrap().unwrap();
        assert_eq!(n, wire.len());
        assert_eq!(req.method(), &Method::Put);
        assert_eq!(req.headers().get("host"), Some("h"));
        assert_eq!(&req.body()[..], b"hello");
    }

    #[test]
    fn incomplete_head_returns_none() {
        assert_eq!(parse_request(b"GET / HT").unwrap(), None);
        assert_eq!(parse_request(b"GET / HTTP/1.1\r\nHost: h\r\n").unwrap(), None);
    }

    #[test]
    fn incomplete_body_returns_none() {
        let wire = b"PUT /o HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert_eq!(parse_request(wire).unwrap(), None);
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let one = b"GET /a HTTP/1.1\r\n\r\n";
        let mut wire = one.to_vec();
        wire.extend_from_slice(b"GET /b HTTP/1.1\r\n\r\n");
        let (req, n) = parse_request(&wire).unwrap().unwrap();
        assert_eq!(req.target(), "/a");
        assert_eq!(n, one.len());
        let (req2, _) = parse_request(&wire[n..]).unwrap().unwrap();
        assert_eq!(req2.target(), "/b");
    }

    #[test]
    fn request_round_trips() {
        let req = Request::get("/news")
            .host("example.org")
            .header("X-Thing", "a b c")
            .body(&b"xyz"[..])
            .build();
        let wire = req.to_bytes();
        let (parsed, n) = parse_request(&wire).unwrap().unwrap();
        assert_eq!(n, wire.len());
        assert_eq!(parsed.target(), req.target());
        assert_eq!(parsed.headers().get("x-thing"), Some("a b c"));
        assert_eq!(parsed.body(), req.body());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert_eq!(
            parse_request(b"GET\r\n\r\n").unwrap_err(),
            ParseError::InvalidStartLine
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.1 extra\r\n\r\n").unwrap_err(),
            ParseError::InvalidStartLine
        );
        assert_eq!(
            parse_request(b"GET / HTTP/9.9\r\n\r\n").unwrap_err(),
            ParseError::InvalidVersion
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nno-colon\r\n\r\n").unwrap_err(),
            ParseError::InvalidHeader
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n").unwrap_err(),
            ParseError::InvalidContentLength
        );
    }

    #[test]
    fn rejects_oversized_head_and_body() {
        let mut huge = b"GET / HTTP/1.1\r\n".to_vec();
        huge.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert_eq!(parse_request(&huge).unwrap_err(), ParseError::HeadTooLarge);

        let wire = format!(
            "PUT /o HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(
            parse_request(wire.as_bytes()).unwrap_err(),
            ParseError::BodyTooLarge
        );
    }

    #[test]
    fn parses_minimal_response() {
        let wire = b"HTTP/1.1 304 Not Modified\r\n\r\n";
        let (resp, n) = parse_response(wire).unwrap().unwrap();
        assert_eq!(n, wire.len());
        assert_eq!(resp.status(), StatusCode::NOT_MODIFIED);
        assert!(resp.body().is_empty());
    }

    #[test]
    fn parses_response_without_reason_phrase_gracefully() {
        // splitn(3) tolerates a missing reason phrase.
        let wire = b"HTTP/1.1 200\r\ncontent-length: 2\r\n\r\nok";
        let (resp, _) = parse_response(wire).unwrap().unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(&resp.body()[..], b"ok");
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::ok()
            .last_modified(mutcon_core::time::Timestamp::from_secs(784_111_777))
            .header("Cache-Control", "max-age=0, delta=600000")
            .body(&b"payload"[..])
            .build();
        let wire = resp.to_bytes();
        let (parsed, n) = parse_response(&wire).unwrap().unwrap();
        assert_eq!(n, wire.len());
        assert_eq!(parsed.status(), StatusCode::OK);
        assert_eq!(parsed.last_modified(), resp.last_modified());
        assert_eq!(parsed.body(), resp.body());
    }

    #[test]
    fn rejects_malformed_responses() {
        assert_eq!(
            parse_response(b"HTTP/1.1 9999 Bad\r\n\r\n").unwrap_err(),
            ParseError::InvalidStatus
        );
        assert_eq!(
            parse_response(b"HTTP/1.1 abc OK\r\n\r\n").unwrap_err(),
            ParseError::InvalidStatus
        );
        assert_eq!(
            parse_response(b"HTTQ/1.1 200 OK\r\n\r\n").unwrap_err(),
            ParseError::InvalidVersion
        );
    }

    #[test]
    fn resumable_request_parser_handles_byte_at_a_time() {
        let req = Request::get("/incremental")
            .host("example.org")
            .header("X-Thing", "a b c")
            .body(&b"body-bytes"[..])
            .build();
        let wire = req.to_bytes();

        let mut parser = RequestParser::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut parsed = None;
        for (i, &byte) in wire.iter().enumerate() {
            buf.push(byte);
            match parser.advance(&buf).unwrap() {
                Some((req, consumed)) => {
                    assert_eq!(i + 1, wire.len(), "completed only on the last byte");
                    assert_eq!(consumed, wire.len());
                    parsed = Some(req);
                }
                None => {
                    assert!(parser.in_progress());
                    assert!(i + 1 < wire.len());
                }
            }
        }
        let parsed = parsed.expect("message completed");
        assert_eq!(parsed.target(), "/incremental");
        assert_eq!(&parsed.body()[..], b"body-bytes");
        assert!(!parser.in_progress(), "parser reset after completion");
    }

    #[test]
    fn resumable_parser_survives_split_terminator() {
        // The \r\n\r\n straddles two reads; the resumed scan must back up
        // far enough to see it.
        let wire = b"GET /x HTTP/1.1\r\n\r\n";
        let mut parser = RequestParser::new();
        assert!(parser.advance(&wire[..17]).unwrap().is_none()); // ends mid-terminator
        let (req, n) = parser.advance(wire).unwrap().expect("complete");
        assert_eq!(req.target(), "/x");
        assert_eq!(n, wire.len());
    }

    #[test]
    fn resumable_parser_chains_pipelined_messages() {
        let mut wire = Request::get("/a").build().to_bytes();
        wire.extend(Request::get("/b").body(&b"zz"[..]).build().to_bytes());
        let mut parser = RequestParser::new();
        let (first, n1) = parser.advance(&wire).unwrap().unwrap();
        assert_eq!(first.target(), "/a");
        let rest = &wire[n1..];
        let (second, n2) = parser.advance(rest).unwrap().unwrap();
        assert_eq!(second.target(), "/b");
        assert_eq!(n1 + n2, wire.len());
    }

    #[test]
    fn resumable_response_parser_handles_partial_body() {
        let resp = Response::ok().body(&b"0123456789"[..]).build();
        let wire = resp.to_bytes();
        let head_len = wire.len() - 10;

        let mut parser = ResponseParser::new();
        // Head complete, body partial: header section parsed once, held.
        assert!(parser.advance(&wire[..head_len + 4]).unwrap().is_none());
        assert!(parser.in_progress());
        let (parsed, n) = parser.advance(&wire).unwrap().expect("complete");
        assert_eq!(n, wire.len());
        assert_eq!(&parsed.body()[..], b"0123456789");
        assert!(!parser.in_progress());
    }

    #[test]
    fn resumable_parser_propagates_errors() {
        let mut parser = RequestParser::new();
        assert!(parser.advance(b"junk start line\r\n\r\n").is_err());
        let mut parser = ResponseParser::new();
        assert_eq!(
            parser.advance(b"HTTP/1.1 abc OK\r\n\r\n").unwrap_err(),
            ParseError::InvalidStatus
        );
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(ParseError::InvalidHeader.to_string(), "invalid header line");
        assert!(!ParseError::BodyTooLarge.to_string().is_empty());
    }
}
