//! Incremental parsing of HTTP/1.1 messages from raw bytes.
//!
//! Both parsers follow the same contract: given a buffer that may hold a
//! partial message, they return
//!
//! * `Ok(Some((message, consumed)))` — a complete message was parsed from
//!   the first `consumed` bytes (a connection loop drains those bytes and
//!   tries again for pipelined messages),
//! * `Ok(None)` — the buffer holds a valid prefix; read more bytes,
//! * `Err(ParseError)` — the bytes can never become a valid message.
//!
//! Bodies are delimited by `Content-Length` only (the consistency protocol
//! never needs chunked transfer), and an absent `Content-Length` means an
//! empty body — all messages the workspace exchanges are self-delimiting,
//! keeping connections reusable.

use std::fmt;

use bytes::Bytes;

use crate::headers::{HeaderMap, HeaderName};
use crate::message::{Request, Response};
use crate::types::{HttpVersion, Method, StatusCode};

/// Maximum accepted header-section size; guards against unbounded buffering.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Maximum accepted body size.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Error returned when bytes cannot form a valid HTTP message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The request/status line is malformed.
    InvalidStartLine,
    /// A header line is malformed.
    InvalidHeader,
    /// The HTTP version is unsupported.
    InvalidVersion,
    /// The status code is not a number in `100..=599`.
    InvalidStatus,
    /// `Content-Length` is not a valid number.
    InvalidContentLength,
    /// The header section exceeds [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParseError::InvalidStartLine => "invalid start line",
            ParseError::InvalidHeader => "invalid header line",
            ParseError::InvalidVersion => "unsupported HTTP version",
            ParseError::InvalidStatus => "invalid status code",
            ParseError::InvalidContentLength => "invalid content-length",
            ParseError::HeadTooLarge => "header section too large",
            ParseError::BodyTooLarge => "body too large",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// Locates the end of the header section (the `\r\n\r\n`), returning the
/// offset just past it.
fn find_head_end(buf: &[u8]) -> Result<Option<usize>, ParseError> {
    match buf.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(pos) => {
            if pos + 4 > MAX_HEAD_BYTES {
                Err(ParseError::HeadTooLarge)
            } else {
                Ok(Some(pos + 4))
            }
        }
        None => {
            if buf.len() > MAX_HEAD_BYTES {
                Err(ParseError::HeadTooLarge)
            } else {
                Ok(None)
            }
        }
    }
}

/// Parses the header block (everything between the start line and the
/// blank line).
fn parse_headers(block: &str) -> Result<HeaderMap, ParseError> {
    let mut headers = HeaderMap::new();
    for line in block.split("\r\n").filter(|l| !l.is_empty()) {
        let (name, value) = line.split_once(':').ok_or(ParseError::InvalidHeader)?;
        let name = HeaderName::new(name).map_err(|_| ParseError::InvalidHeader)?;
        headers.append_name(name, value.trim().to_owned());
    }
    Ok(headers)
}

fn body_length(headers: &HeaderMap) -> Result<usize, ParseError> {
    match headers.get(HeaderName::CONTENT_LENGTH) {
        None => Ok(0),
        Some(v) => {
            let len: usize = v.trim().parse().map_err(|_| ParseError::InvalidContentLength)?;
            if len > MAX_BODY_BYTES {
                Err(ParseError::BodyTooLarge)
            } else {
                Ok(len)
            }
        }
    }
}

/// Attempts to parse one [`Request`] from the front of `buf`.
///
/// # Errors
///
/// See [`ParseError`]; `Ok(None)` means "incomplete, read more".
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
    let Some(head_end) = find_head_end(buf)? else {
        return Ok(None);
    };
    let head =
        std::str::from_utf8(&buf[..head_end - 4]).map_err(|_| ParseError::InvalidHeader)?;
    let (start_line, header_block) = head.split_once("\r\n").unwrap_or((head, ""));

    let mut parts = start_line.split(' ');
    let method: Method = parts
        .next()
        .ok_or(ParseError::InvalidStartLine)?
        .parse()
        .map_err(|_| ParseError::InvalidStartLine)?;
    let target = parts.next().ok_or(ParseError::InvalidStartLine)?;
    if target.is_empty() || target.contains(|c: char| c.is_ascii_whitespace()) {
        return Err(ParseError::InvalidStartLine);
    }
    let version: HttpVersion = parts
        .next()
        .ok_or(ParseError::InvalidStartLine)?
        .parse()
        .map_err(|_| ParseError::InvalidVersion)?;
    if parts.next().is_some() {
        return Err(ParseError::InvalidStartLine);
    }

    let headers = parse_headers(header_block)?;
    let body_len = body_length(&headers)?;
    let total = head_end + body_len;
    if buf.len() < total {
        return Ok(None);
    }
    let body = Bytes::copy_from_slice(&buf[head_end..total]);
    Ok(Some((
        Request::from_parts(method, target.to_owned(), version, headers, body),
        total,
    )))
}

/// Attempts to parse one [`Response`] from the front of `buf`.
///
/// # Errors
///
/// See [`ParseError`]; `Ok(None)` means "incomplete, read more".
pub fn parse_response(buf: &[u8]) -> Result<Option<(Response, usize)>, ParseError> {
    let Some(head_end) = find_head_end(buf)? else {
        return Ok(None);
    };
    let head =
        std::str::from_utf8(&buf[..head_end - 4]).map_err(|_| ParseError::InvalidHeader)?;
    let (start_line, header_block) = head.split_once("\r\n").unwrap_or((head, ""));

    // "HTTP/1.1 200 OK" — the reason phrase may contain spaces or be absent.
    let mut parts = start_line.splitn(3, ' ');
    let version: HttpVersion = parts
        .next()
        .ok_or(ParseError::InvalidStartLine)?
        .parse()
        .map_err(|_| ParseError::InvalidVersion)?;
    let code: u16 = parts
        .next()
        .ok_or(ParseError::InvalidStartLine)?
        .parse()
        .map_err(|_| ParseError::InvalidStatus)?;
    let status = StatusCode::new(code).ok_or(ParseError::InvalidStatus)?;

    let headers = parse_headers(header_block)?;
    let body_len = body_length(&headers)?;
    let total = head_end + body_len;
    if buf.len() < total {
        return Ok(None);
    }
    let body = Bytes::copy_from_slice(&buf[head_end..total]);
    Ok(Some((
        Response::from_parts(version, status, headers, body),
        total,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_request() {
        let wire = b"GET /x HTTP/1.1\r\n\r\n";
        let (req, n) = parse_request(wire).unwrap().unwrap();
        assert_eq!(n, wire.len());
        assert_eq!(req.method(), &Method::Get);
        assert_eq!(req.target(), "/x");
        assert!(req.headers().is_empty());
    }

    #[test]
    fn parses_request_with_headers_and_body() {
        let wire = b"PUT /obj HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello";
        let (req, n) = parse_request(wire).unwrap().unwrap();
        assert_eq!(n, wire.len());
        assert_eq!(req.method(), &Method::Put);
        assert_eq!(req.headers().get("host"), Some("h"));
        assert_eq!(&req.body()[..], b"hello");
    }

    #[test]
    fn incomplete_head_returns_none() {
        assert_eq!(parse_request(b"GET / HT").unwrap(), None);
        assert_eq!(parse_request(b"GET / HTTP/1.1\r\nHost: h\r\n").unwrap(), None);
    }

    #[test]
    fn incomplete_body_returns_none() {
        let wire = b"PUT /o HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert_eq!(parse_request(wire).unwrap(), None);
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let one = b"GET /a HTTP/1.1\r\n\r\n";
        let mut wire = one.to_vec();
        wire.extend_from_slice(b"GET /b HTTP/1.1\r\n\r\n");
        let (req, n) = parse_request(&wire).unwrap().unwrap();
        assert_eq!(req.target(), "/a");
        assert_eq!(n, one.len());
        let (req2, _) = parse_request(&wire[n..]).unwrap().unwrap();
        assert_eq!(req2.target(), "/b");
    }

    #[test]
    fn request_round_trips() {
        let req = Request::get("/news")
            .host("example.org")
            .header("X-Thing", "a b c")
            .body(&b"xyz"[..])
            .build();
        let wire = req.to_bytes();
        let (parsed, n) = parse_request(&wire).unwrap().unwrap();
        assert_eq!(n, wire.len());
        assert_eq!(parsed.target(), req.target());
        assert_eq!(parsed.headers().get("x-thing"), Some("a b c"));
        assert_eq!(parsed.body(), req.body());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert_eq!(
            parse_request(b"GET\r\n\r\n").unwrap_err(),
            ParseError::InvalidStartLine
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.1 extra\r\n\r\n").unwrap_err(),
            ParseError::InvalidStartLine
        );
        assert_eq!(
            parse_request(b"GET / HTTP/9.9\r\n\r\n").unwrap_err(),
            ParseError::InvalidVersion
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nno-colon\r\n\r\n").unwrap_err(),
            ParseError::InvalidHeader
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n").unwrap_err(),
            ParseError::InvalidContentLength
        );
    }

    #[test]
    fn rejects_oversized_head_and_body() {
        let mut huge = b"GET / HTTP/1.1\r\n".to_vec();
        huge.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert_eq!(parse_request(&huge).unwrap_err(), ParseError::HeadTooLarge);

        let wire = format!(
            "PUT /o HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(
            parse_request(wire.as_bytes()).unwrap_err(),
            ParseError::BodyTooLarge
        );
    }

    #[test]
    fn parses_minimal_response() {
        let wire = b"HTTP/1.1 304 Not Modified\r\n\r\n";
        let (resp, n) = parse_response(wire).unwrap().unwrap();
        assert_eq!(n, wire.len());
        assert_eq!(resp.status(), StatusCode::NOT_MODIFIED);
        assert!(resp.body().is_empty());
    }

    #[test]
    fn parses_response_without_reason_phrase_gracefully() {
        // splitn(3) tolerates a missing reason phrase.
        let wire = b"HTTP/1.1 200\r\ncontent-length: 2\r\n\r\nok";
        let (resp, _) = parse_response(wire).unwrap().unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(&resp.body()[..], b"ok");
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::ok()
            .last_modified(mutcon_core::time::Timestamp::from_secs(784_111_777))
            .header("Cache-Control", "max-age=0, delta=600000")
            .body(&b"payload"[..])
            .build();
        let wire = resp.to_bytes();
        let (parsed, n) = parse_response(&wire).unwrap().unwrap();
        assert_eq!(n, wire.len());
        assert_eq!(parsed.status(), StatusCode::OK);
        assert_eq!(parsed.last_modified(), resp.last_modified());
        assert_eq!(parsed.body(), resp.body());
    }

    #[test]
    fn rejects_malformed_responses() {
        assert_eq!(
            parse_response(b"HTTP/1.1 9999 Bad\r\n\r\n").unwrap_err(),
            ParseError::InvalidStatus
        );
        assert_eq!(
            parse_response(b"HTTP/1.1 abc OK\r\n\r\n").unwrap_err(),
            ParseError::InvalidStatus
        );
        assert_eq!(
            parse_response(b"HTTQ/1.1 200 OK\r\n\r\n").unwrap_err(),
            ParseError::InvalidVersion
        );
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(ParseError::InvalidHeader.to_string(), "invalid header line");
        assert!(!ParseError::BodyTooLarge.to_string().is_empty());
    }
}
