//! # mutcon-live — the consistency algorithms over real sockets
//!
//! The paper closes with "we plan to implement our techniques in the
//! Squid proxy cache". This crate is that step in miniature: a real TCP
//! **origin server** that replays update traces in wall-clock time, and a
//! real caching **proxy daemon** that maintains Δt and Mt consistency for
//! its cached objects with the very same `mutcon-core` algorithms the
//! simulator uses — LIMD-scheduled `If-Modified-Since` polls, triggered
//! polls across related objects, and the §5.1 protocol extensions on the
//! wire.
//!
//! Both daemons serve their connections from **one reactor thread per
//! core** (`MUTCON_LIVE_REACTORS`, see [`server::num_reactors`]) over
//! the hand-rolled `epoll` poller in [`mutcon_sim::reactor`]: each
//! reactor owns an `SO_REUSEPORT` listener shard on the shared port,
//! per-connection state machines instead of a thread per connection,
//! and a keep-alive origin connection pool ([`upstream`]) that
//! coalesces identical concurrent misses into one fetch. One process
//! sustains hundreds of concurrent sockets (bounded by
//! `MUTCON_LIVE_CONNS`, see [`server::max_conns`]). The proxy's cache
//! is sharded 16 ways by key hash ([`cache::ShardedCache`]), shared
//! across all reactors, so background refreshes don't serialize
//! concurrent hits.
//!
//! Multi-day traces replay in seconds through
//! [`mutcon_traces::transform::scale_time`]; millisecond-precise
//! modification times travel in the `x-last-modified-ms` extension header
//! (IMF-fixdates only resolve seconds).
//!
//! * [`server`] — the shared readiness-driven connection engine
//!   (multi-reactor event loop, connection state machines, pooled
//!   nonblocking upstream fetches).
//! * [`upstream`] — the keep-alive origin pool's bookkeeping (miss
//!   coalescing, idle reuse, stale-socket retry).
//! * [`vectored`] — the zero-copy send path: per-connection write plans
//!   (contiguous head + shared body flushed via `writev`) and the
//!   per-reactor buffer pool that recycles read/write buffers across
//!   connections.
//! * [`cache`] — the 16-way sharded, recency-indexed object cache;
//!   entries pre-render their serving head so a hit is two shared
//!   slices, not a serialization.
//! * [`wire`] — blocking socket I/O for the `mutcon-http` types
//!   (clients and tests; the server path is nonblocking).
//! * [`client`] — blocking HTTP clients: one-shot ([`client::HttpClient`])
//!   and keep-alive ([`client::PersistentClient`], used by the proxy's
//!   background refresher).
//! * [`overload`] — adaptive overload control: per-partition admission
//!   shedding (`429` + `Retry-After`), the adaptive origin fan-out cap,
//!   and the versioned, hot-swappable [`overload::OverloadConfig`].
//! * [`origin`] — the trace-replaying origin server, with fault
//!   injection for resilience tests.
//! * [`proxy`] — the caching proxy daemon with a background refresher
//!   running LIMD + mutual-consistency coordination, plus the
//!   `/admin/*` HTTP control plane.
//! * [`runtime`] — the hot-swappable consistency runtime: a versioned
//!   rules epoch swapped atomically, so Δ/TTR/group changes land
//!   without dropping the cache or any connection.
//!
//! ```no_run
//! use mutcon_core::time::Duration;
//! use mutcon_live::origin::LiveOrigin;
//! use mutcon_live::proxy::{LiveProxy, ProxyConfig, RefreshRule};
//! use mutcon_traces::NamedTrace;
//! use mutcon_traces::transform::scale_time;
//!
//! # fn main() -> std::io::Result<()> {
//! // Replay the CNN/FN trace 100_000× faster than 2000-era reality.
//! let trace = scale_time(&NamedTrace::CnnFn.generate(), 1e-5).unwrap();
//! let origin = LiveOrigin::builder()
//!     .object("/news/cnn-fn.html", trace)
//!     .start()?;
//!
//! let proxy = LiveProxy::start(ProxyConfig {
//!     rules: vec![RefreshRule::new("/news/cnn-fn.html", Duration::from_millis(50))],
//!     ..ProxyConfig::new(origin.local_addr())
//! })?;
//! println!("proxy listening on {}", proxy.local_addr());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod client;
pub mod origin;
pub mod overload;
pub mod proxy;
pub mod runtime;
pub mod server;
pub mod upstream;
pub mod vectored;
pub mod wire;

pub use origin::LiveOrigin;
pub use proxy::{LiveProxy, ProxyConfig, RefreshRule};
pub use runtime::ConsistencyRuntime;
