//! A minimal blocking HTTP client.
//!
//! One connection per request (`Connection: close` semantics) — exactly
//! what a 2001-era proxy's refresher would do, and simple enough to be
//! obviously correct. Timeouts guard every socket operation so a stalled
//! origin cannot wedge the refresher thread.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration as StdDuration;

use bytes::BytesMut;

use mutcon_core::time::Timestamp;
use mutcon_http::headers::HeaderName;
use mutcon_http::message::{Request, Response};

use crate::wire::{read_response, write_request};

/// Extension header carrying millisecond-precise modification times (the
/// IMF-fixdate in `Last-Modified` only resolves seconds, too coarse for
/// compressed trace replay).
pub const X_LAST_MODIFIED_MS: &str = "x-last-modified-ms";

/// A blocking HTTP client with per-operation timeouts.
#[derive(Debug, Clone)]
pub struct HttpClient {
    timeout: StdDuration,
}

impl Default for HttpClient {
    fn default() -> Self {
        HttpClient {
            timeout: StdDuration::from_secs(5),
        }
    }
}

impl HttpClient {
    /// Creates a client with the default 5-second timeout.
    pub fn new() -> Self {
        HttpClient::default()
    }

    /// Overrides the connect/read/write timeout.
    pub fn with_timeout(timeout: StdDuration) -> Self {
        HttpClient { timeout }
    }

    /// Sends `request` to `addr` and reads the response.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and malformed responses.
    pub fn send(&self, addr: SocketAddr, request: &Request) -> io::Result<Response> {
        let mut stream = TcpStream::connect_timeout(&addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        write_request(&mut stream, request)?;
        let mut buf = BytesMut::new();
        read_response(&mut stream, &mut buf)
    }

    /// Convenience `GET`, optionally conditional on a millisecond
    /// validator (sent both as `If-Modified-Since` and as the
    /// millisecond-precise extension header).
    ///
    /// # Errors
    ///
    /// See [`HttpClient::send`].
    pub fn get(
        &self,
        addr: SocketAddr,
        path: &str,
        validator_ms: Option<Timestamp>,
    ) -> io::Result<Response> {
        let mut builder = Request::get(path).host(addr.to_string());
        if let Some(v) = validator_ms {
            builder = builder
                .if_modified_since(v)
                .header(X_LAST_MODIFIED_MS, v.as_millis().to_string());
        }
        self.send(addr, &builder.build())
    }
}

/// Reads the millisecond-precise modification time from a response,
/// falling back to `Last-Modified` when the extension is absent.
pub fn last_modified_ms(response: &Response) -> Option<Timestamp> {
    if let Some(v) = response.headers().get(X_LAST_MODIFIED_MS) {
        if let Ok(ms) = v.trim().parse::<u64>() {
            return Some(Timestamp::from_millis(ms));
        }
    }
    response.last_modified()
}

/// Reads the millisecond validator from a request (the extension header,
/// falling back to `If-Modified-Since`).
pub fn validator_ms(request: &Request) -> Option<Timestamp> {
    if let Some(v) = request.headers().get(X_LAST_MODIFIED_MS) {
        if let Ok(ms) = v.trim().parse::<u64>() {
            return Some(Timestamp::from_millis(ms));
        }
    }
    mutcon_http::conditional::if_modified_since(request)
}

/// Reads the `x-object-value` header (value-bearing objects).
pub fn object_value(response: &Response) -> Option<f64> {
    response
        .headers()
        .get(HeaderName::X_OBJECT_VALUE)?
        .trim()
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_http::types::StatusCode;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// A one-shot server answering a canned response.
    fn one_shot_server(response: Vec<u8>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf);
            stream.write_all(&response).unwrap();
        });
        addr
    }

    #[test]
    fn get_round_trip() {
        let canned = Response::ok()
            .header(X_LAST_MODIFIED_MS, "123456")
            .body(&b"hello"[..])
            .build()
            .to_bytes();
        let addr = one_shot_server(canned);
        let client = HttpClient::new();
        let resp = client
            .get(addr, "/x", Some(Timestamp::from_millis(1_000)))
            .unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(&resp.body()[..], b"hello");
        assert_eq!(last_modified_ms(&resp), Some(Timestamp::from_millis(123_456)));
    }

    #[test]
    fn connect_failure_surfaces() {
        // A port nobody listens on (bind, learn the port, drop).
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let client = HttpClient::with_timeout(StdDuration::from_millis(300));
        assert!(client.get(addr, "/x", None).is_err());
    }

    #[test]
    fn header_fallbacks() {
        // Extension absent → fall back to Last-Modified (second-precise).
        let resp = Response::ok()
            .last_modified(Timestamp::from_secs(784_111_777))
            .build();
        assert_eq!(last_modified_ms(&resp), Some(Timestamp::from_secs(784_111_777)));
        // Garbage extension → fall back too.
        let resp = Response::ok()
            .header(X_LAST_MODIFIED_MS, "junk")
            .last_modified(Timestamp::from_secs(1_000))
            .build();
        assert_eq!(last_modified_ms(&resp), Some(Timestamp::from_secs(1_000)));
        // Value header.
        let resp = Response::ok()
            .header(HeaderName::X_OBJECT_VALUE, "36.25")
            .build();
        assert_eq!(object_value(&resp), Some(36.25));
        assert_eq!(object_value(&Response::ok().build()), None);
    }

    #[test]
    fn request_validator_parsing() {
        let req = Request::get("/x")
            .header(X_LAST_MODIFIED_MS, "999")
            .build();
        assert_eq!(validator_ms(&req), Some(Timestamp::from_millis(999)));
        let req = Request::get("/x")
            .if_modified_since(Timestamp::from_secs(5))
            .build();
        assert_eq!(validator_ms(&req), Some(Timestamp::from_secs(5)));
        assert_eq!(validator_ms(&Request::get("/x").build()), None);
    }
}
