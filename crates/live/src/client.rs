//! Blocking HTTP clients.
//!
//! [`HttpClient`] is the minimal one-connection-per-request client
//! (`Connection: close` semantics) kept for tests and load generators,
//! where a fresh socket per request is exactly the point.
//! [`PersistentClient`] is its keep-alive successor: it advertises
//! `Connection: keep-alive`, reuses one socket across requests, and —
//! because a pooled socket may have been closed by the server while
//! idle — retries a failed send once on a fresh connection before
//! reporting an error. The proxy's background refresher polls through a
//! `PersistentClient`, so LIMD's frequent `If-Modified-Since` probes
//! stop paying a TCP handshake each. Timeouts guard every socket
//! operation so a stalled origin cannot wedge the refresher thread.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration as StdDuration;

use bytes::BytesMut;

use mutcon_core::time::Timestamp;
use mutcon_http::headers::HeaderName;
use mutcon_http::message::{Request, RequestBuilder, Response};

use crate::wire::{read_response, write_request};

/// Extension header carrying millisecond-precise modification times (the
/// IMF-fixdate in `Last-Modified` only resolves seconds, too coarse for
/// compressed trace replay).
pub const X_LAST_MODIFIED_MS: &str = "x-last-modified-ms";

/// A blocking HTTP client with per-operation timeouts.
#[derive(Debug, Clone)]
pub struct HttpClient {
    timeout: StdDuration,
}

impl Default for HttpClient {
    fn default() -> Self {
        HttpClient {
            timeout: StdDuration::from_secs(5),
        }
    }
}

impl HttpClient {
    /// Creates a client with the default 5-second timeout.
    pub fn new() -> Self {
        HttpClient::default()
    }

    /// Overrides the connect/read/write timeout.
    pub fn with_timeout(timeout: StdDuration) -> Self {
        HttpClient { timeout }
    }

    /// Sends `request` to `addr` and reads the response.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and malformed responses.
    pub fn send(&self, addr: SocketAddr, request: &Request) -> io::Result<Response> {
        let mut stream = TcpStream::connect_timeout(&addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        write_request(&mut stream, request)?;
        let mut buf = BytesMut::new();
        read_response(&mut stream, &mut buf)
    }

    /// Convenience `GET`, optionally conditional on a millisecond
    /// validator (sent both as `If-Modified-Since` and as the
    /// millisecond-precise extension header).
    ///
    /// # Errors
    ///
    /// See [`HttpClient::send`].
    pub fn get(
        &self,
        addr: SocketAddr,
        path: &str,
        validator_ms: Option<Timestamp>,
    ) -> io::Result<Response> {
        let mut builder = Request::get(path).host(addr.to_string());
        if let Some(v) = validator_ms {
            builder = builder
                .if_modified_since(v)
                .header(X_LAST_MODIFIED_MS, v.as_millis().to_string());
        }
        self.send(addr, &builder.build())
    }

    /// Convenience `PUT` with a body (the proxy's admin control plane
    /// and the origin's update endpoint speak this).
    ///
    /// # Errors
    ///
    /// See [`HttpClient::send`].
    pub fn put(
        &self,
        addr: SocketAddr,
        path: &str,
        body: impl Into<bytes::Bytes>,
    ) -> io::Result<Response> {
        let request = Request::builder(mutcon_http::types::Method::Put, path)
            .host(addr.to_string())
            .body(body)
            .build();
        self.send(addr, &request)
    }
}

/// A blocking keep-alive client pinned to one server address.
///
/// Reuses a single connection across requests; a send that fails on a
/// *reused* socket (the server closed it while idle) is retried once on
/// a fresh connection. Requests advertise `Connection: keep-alive`; a
/// response carrying `Connection: close` drops the socket so the next
/// request reconnects.
#[derive(Debug)]
pub struct PersistentClient {
    addr: SocketAddr,
    /// `addr` rendered once at construction: every request carries a
    /// `Host` header, and the refresh plane issues requests at poll
    /// rate — no reason to re-format the address each time.
    host: String,
    timeout: StdDuration,
    stream: Option<TcpStream>,
    buf: BytesMut,
    /// Responses served over the current socket (0 = fresh).
    served_on_socket: u64,
    reconnects: u64,
}

impl PersistentClient {
    /// A keep-alive client for `addr` with per-operation `timeout`.
    pub fn new(addr: SocketAddr, timeout: StdDuration) -> PersistentClient {
        PersistentClient {
            addr,
            host: addr.to_string(),
            timeout,
            stream: None,
            buf: BytesMut::new(),
            served_on_socket: 0,
            reconnects: 0,
        }
    }

    /// How often a stale pooled socket forced a fresh connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Whether a connection is currently held open.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn connect(&mut self) -> io::Result<()> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            self.buf.clear();
            self.served_on_socket = 0;
            self.stream = Some(stream);
        }
        Ok(())
    }

    fn drop_socket(&mut self) {
        self.stream = None;
        self.buf.clear();
        self.served_on_socket = 0;
    }

    /// Sends `request` (forced to advertise keep-alive) and reads the
    /// response, transparently reconnecting once if a reused socket
    /// turns out stale.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and malformed responses
    /// (after the single stale-socket retry, where applicable).
    pub fn send(&mut self, request: &Request) -> io::Result<Response> {
        let mut request = request.clone();
        mutcon_http::connection::set_keep_alive(request.headers_mut());
        loop {
            let reused = self.stream.is_some() && self.served_on_socket > 0;
            let result = (|| {
                self.connect()?;
                let PersistentClient { stream, buf, .. } = self;
                let stream = stream.as_mut().expect("connect ensured a socket");
                write_request(stream, &request)?;
                read_response(stream, buf)
            })();
            match result {
                Ok(response) => {
                    self.served_on_socket += 1;
                    if !response.wants_keep_alive() {
                        self.drop_socket();
                    }
                    return Ok(response);
                }
                Err(e) => {
                    self.drop_socket();
                    if reused {
                        // The server closed the idle socket between
                        // requests; one fresh attempt.
                        self.reconnects += 1;
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Convenience `PUT` with a body over the persistent connection —
    /// how a reload driver ships `PUT /admin/rules` without disturbing
    /// its keep-alive session.
    ///
    /// # Errors
    ///
    /// See [`PersistentClient::send`].
    pub fn put(&mut self, path: &str, body: impl Into<bytes::Bytes>) -> io::Result<Response> {
        let request = Request::builder(mutcon_http::types::Method::Put, path)
            .host(self.host.as_str())
            .body(body)
            .build();
        self.send(&request)
    }

    /// Convenience conditional `GET` (see [`HttpClient::get`]).
    ///
    /// # Errors
    ///
    /// See [`PersistentClient::send`].
    pub fn get(&mut self, path: &str, validator_ms: Option<Timestamp>) -> io::Result<Response> {
        let mut builder: RequestBuilder = Request::get(path).host(self.host.as_str());
        if let Some(v) = validator_ms {
            builder = builder
                .if_modified_since(v)
                .header(X_LAST_MODIFIED_MS, v.as_millis().to_string());
        }
        self.send(&builder.build())
    }
}

/// Reads the millisecond-precise modification time from a response,
/// falling back to `Last-Modified` when the extension is absent.
pub fn last_modified_ms(response: &Response) -> Option<Timestamp> {
    if let Some(v) = response.headers().get(X_LAST_MODIFIED_MS) {
        if let Ok(ms) = v.trim().parse::<u64>() {
            return Some(Timestamp::from_millis(ms));
        }
    }
    response.last_modified()
}

/// Reads the millisecond validator from a request (the extension header,
/// falling back to `If-Modified-Since`).
pub fn validator_ms(request: &Request) -> Option<Timestamp> {
    if let Some(v) = request.headers().get(X_LAST_MODIFIED_MS) {
        if let Ok(ms) = v.trim().parse::<u64>() {
            return Some(Timestamp::from_millis(ms));
        }
    }
    mutcon_http::conditional::if_modified_since(request)
}

/// Reads the `x-object-value` header (value-bearing objects).
pub fn object_value(response: &Response) -> Option<f64> {
    response
        .headers()
        .get(HeaderName::X_OBJECT_VALUE)?
        .trim()
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_http::types::StatusCode;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// A one-shot server answering a canned response.
    fn one_shot_server(response: Vec<u8>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf);
            stream.write_all(&response).unwrap();
        });
        addr
    }

    #[test]
    fn get_round_trip() {
        let canned = Response::ok()
            .header(X_LAST_MODIFIED_MS, "123456")
            .body(&b"hello"[..])
            .build()
            .to_bytes();
        let addr = one_shot_server(canned);
        let client = HttpClient::new();
        let resp = client
            .get(addr, "/x", Some(Timestamp::from_millis(1_000)))
            .unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(&resp.body()[..], b"hello");
        assert_eq!(last_modified_ms(&resp), Some(Timestamp::from_millis(123_456)));
    }

    #[test]
    fn connect_failure_surfaces() {
        // A port nobody listens on (bind, learn the port, drop).
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let client = HttpClient::with_timeout(StdDuration::from_millis(300));
        assert!(client.get(addr, "/x", None).is_err());
    }

    #[test]
    fn header_fallbacks() {
        // Extension absent → fall back to Last-Modified (second-precise).
        let resp = Response::ok()
            .last_modified(Timestamp::from_secs(784_111_777))
            .build();
        assert_eq!(last_modified_ms(&resp), Some(Timestamp::from_secs(784_111_777)));
        // Garbage extension → fall back too.
        let resp = Response::ok()
            .header(X_LAST_MODIFIED_MS, "junk")
            .last_modified(Timestamp::from_secs(1_000))
            .build();
        assert_eq!(last_modified_ms(&resp), Some(Timestamp::from_secs(1_000)));
        // Value header.
        let resp = Response::ok()
            .header(HeaderName::X_OBJECT_VALUE, "36.25")
            .build();
        assert_eq!(object_value(&resp), Some(36.25));
        assert_eq!(object_value(&Response::ok().build()), None);
    }

    /// A keep-alive server thread that serves `per_conn` requests per
    /// connection before closing it, forever. Returns (addr, accepted
    /// connection counter).
    fn keep_alive_server(per_conn: usize) -> (SocketAddr, std::sync::Arc<std::sync::atomic::AtomicU64>) {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&accepted);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { break };
                counter.fetch_add(1, Ordering::SeqCst);
                let mut buf = BytesMut::new();
                for _ in 0..per_conn {
                    let Ok(Some(req)) = crate::wire::read_request(&mut stream, &mut buf) else {
                        break;
                    };
                    let resp = Response::ok()
                        .keep_alive()
                        .body(req.target().as_bytes().to_vec())
                        .build();
                    if crate::wire::write_response(&mut stream, &resp).is_err() {
                        break;
                    }
                }
                // Dropping the stream closes the (possibly idle) socket.
            }
        });
        (addr, accepted)
    }

    #[test]
    fn persistent_client_reuses_one_connection() {
        let (addr, accepted) = keep_alive_server(usize::MAX);
        let mut client = PersistentClient::new(addr, StdDuration::from_secs(5));
        for i in 0..5 {
            let resp = client.get(&format!("/r/{i}"), None).unwrap();
            assert_eq!(resp.status(), StatusCode::OK);
            assert_eq!(&resp.body()[..], format!("/r/{i}").as_bytes());
        }
        assert!(client.is_connected());
        assert_eq!(
            accepted.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "five requests must share one connection"
        );
        assert_eq!(client.reconnects(), 0);
    }

    #[test]
    fn persistent_client_recovers_from_stale_sockets() {
        // The server hangs up after every 2 responses; the client must
        // ride through the stale-socket failures transparently.
        let (addr, accepted) = keep_alive_server(2);
        let mut client = PersistentClient::new(addr, StdDuration::from_secs(5));
        for i in 0..6 {
            let resp = client.get(&format!("/r/{i}"), None).unwrap();
            assert_eq!(resp.status(), StatusCode::OK, "request {i}");
        }
        let conns = accepted.load(std::sync::atomic::Ordering::SeqCst);
        assert!(conns >= 3, "server closes every 2 requests: {conns} conns");
        assert!(client.reconnects() >= 1, "stale sockets must be retried");
    }

    #[test]
    fn persistent_client_honors_connection_close_responses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { break };
                let mut buf = BytesMut::new();
                if let Ok(Some(_)) = crate::wire::read_request(&mut stream, &mut buf) {
                    let resp = Response::ok().connection_close().body(&b"bye"[..]).build();
                    let _ = crate::wire::write_response(&mut stream, &resp);
                }
            }
        });
        let mut client = PersistentClient::new(addr, StdDuration::from_secs(5));
        let resp = client.get("/x", None).unwrap();
        assert_eq!(&resp.body()[..], b"bye");
        assert!(
            !client.is_connected(),
            "a close response must drop the pooled socket"
        );
        // And the next request simply reconnects.
        assert_eq!(client.get("/y", None).unwrap().status(), StatusCode::OK);
    }

    #[test]
    fn persistent_client_surfaces_dead_server() {
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let mut client = PersistentClient::new(addr, StdDuration::from_millis(300));
        assert!(client.get("/x", None).is_err());
        assert_eq!(client.reconnects(), 0, "a fresh-socket failure is final");
    }

    #[test]
    fn request_validator_parsing() {
        let req = Request::get("/x")
            .header(X_LAST_MODIFIED_MS, "999")
            .build();
        assert_eq!(validator_ms(&req), Some(Timestamp::from_millis(999)));
        let req = Request::get("/x")
            .if_modified_since(Timestamp::from_secs(5))
            .build();
        assert_eq!(validator_ms(&req), Some(Timestamp::from_secs(5)));
        assert_eq!(validator_ms(&Request::get("/x").build()), None);
    }
}
