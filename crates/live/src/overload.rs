//! Adaptive overload control shared between the reactors and the admin
//! plane.
//!
//! The engine has two adaptive limiters, both driven by the
//! [`mutcon_core::limit`] algorithms (the LIMD/AIMD shape applied to
//! concurrency instead of poll intervals):
//!
//! * **admission** — per path-partition: once a partition's in-flight
//!   work exceeds its limiter's current limit, further requests are shed
//!   with `429 Too Many Requests` + `Retry-After` (optionally paced by a
//!   bounded delay) instead of queueing without bound. Partitions are the
//!   first path segment, so one hot object cannot starve the rest.
//! * **origin pool** — the per-reactor fan-out cap in
//!   [`crate::upstream::PoolCore`] follows observed per-fetch latency and
//!   errors instead of staying frozen at
//!   [`crate::upstream::MAX_CONNS_PER_ORIGIN`].
//!
//! [`OverloadControl`] is the shared handle: the admin plane installs a
//! validated [`OverloadConfig`] (versioned, same install discipline as
//! the rules epochs in [`crate::runtime`]), each reactor notices the
//! version bump on its next loop turn and reconfigures its local
//! limiters without dropping learned state, and the reactors push
//! per-reactor snapshots back so `GET /admin/stats` can report live
//! limits, recent samples and shed counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use mutcon_core::error::ConfigError;
use mutcon_core::limit::LimiterConfig;
use parking_lot::Mutex;

use crate::server::MAX_REACTORS;
use crate::upstream::LimitSnapshot;

/// Default `Retry-After` advertised on shed responses, in seconds.
pub const DEFAULT_RETRY_AFTER_SECS: u32 = 1;

/// Default deadline after which clients parked in the kernel backlog (a
/// reactor at its connection bound stops accepting) are given a clean
/// `503` instead of waiting forever.
pub const DEFAULT_PARK_DEADLINE: Duration = Duration::from_secs(1);

/// Default starting limit for a fresh admission partition.
pub const DEFAULT_ADMISSION_INITIAL: usize = 32;

/// The overload-control policy, installed as one unit.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadConfig {
    /// Admission limiter per path-partition; `None` disables shedding.
    pub admission: Option<LimiterConfig>,
    /// Origin-pool fan-out limiter; `None` keeps the static cap.
    pub pool: Option<LimiterConfig>,
    /// `Retry-After` value (seconds) on `429`/`503` responses.
    pub retry_after_secs: u32,
    /// Bounded delay before a shed `429` is delivered (pacing retry
    /// storms); zero sheds immediately.
    pub shed_delay: Duration,
    /// How long accepting may stay paused at the connection bound before
    /// the parked backlog is drained with `503`s.
    pub park_deadline: Duration,
    /// Starting limit for a newly seen admission partition.
    pub admission_initial: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            admission: None,
            pool: None,
            retry_after_secs: DEFAULT_RETRY_AFTER_SECS,
            shed_delay: Duration::ZERO,
            park_deadline: DEFAULT_PARK_DEADLINE,
            admission_initial: DEFAULT_ADMISSION_INITIAL,
        }
    }
}

impl OverloadConfig {
    /// Validates the configuration the way the rules runtime validates
    /// an epoch: every embedded limiter spec must build, and the scalar
    /// knobs must be sane.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(admission) = &self.admission {
            admission.build()?;
        }
        if let Some(pool) = &self.pool {
            pool.build()?;
        }
        if self.retry_after_secs == 0 {
            return Err(ConfigError::InvalidSpec {
                message: "`retry_after_secs` must be >= 1".into(),
            });
        }
        if self.park_deadline < Duration::from_millis(10) {
            return Err(ConfigError::InvalidSpec {
                message: "`park_deadline_ms` must be >= 10".into(),
            });
        }
        if self.admission_initial == 0 {
            return Err(ConfigError::InvalidSpec {
                message: "`admission_initial` must be >= 1".into(),
            });
        }
        Ok(())
    }
}

/// One admission partition's state as a reactor reported it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSnap {
    /// Partition key (first path segment, e.g. `/stocks`).
    pub partition: String,
    /// The partition's current admission limit on that reactor.
    pub limit: usize,
    /// Requests in flight on that reactor when the snapshot was taken.
    pub in_flight: usize,
    /// Requests shed from the partition on that reactor, ever.
    pub shed: u64,
}

/// Everything one reactor reports between loop turns.
#[derive(Debug, Clone, Default)]
pub struct ReactorOverloadSnap {
    /// Origin-pool limit state (cap, algorithm, recent samples).
    pub pool: Option<LimitSnapshot>,
    /// Admission partitions, in first-seen order.
    pub partitions: Vec<PartitionSnap>,
}

/// Aggregated overload state for `GET /admin/stats`.
#[derive(Debug, Clone)]
pub struct OverloadSnapshot {
    /// Installed-config version (0 = never reconfigured).
    pub version: u64,
    /// The installed configuration.
    pub config: OverloadConfig,
    /// Requests shed with `429`, across all reactors.
    pub shed: u64,
    /// Shed responses that were delivered after the pacing delay.
    pub shed_delayed: u64,
    /// Parked backlog connections drained with `503`.
    pub parked_shed: u64,
    /// Per-reactor state, indexed by reactor.
    pub reactors: Vec<ReactorOverloadSnap>,
}

/// The shared overload-control handle. One per event loop; the proxy
/// also hands it to its admin plane.
#[derive(Debug)]
pub struct OverloadControl {
    /// Bumped by [`OverloadControl::install`]; reactors reload lazily
    /// when their cached version falls behind.
    version: AtomicU64,
    config: Mutex<OverloadConfig>,
    shed: AtomicU64,
    shed_delayed: AtomicU64,
    parked_shed: AtomicU64,
    /// One slot per reactor (no cross-reactor lock contention).
    slots: Vec<Mutex<ReactorOverloadSnap>>,
}

impl Default for OverloadControl {
    fn default() -> Self {
        OverloadControl::new(OverloadConfig::default())
    }
}

impl OverloadControl {
    /// A handle starting from `config` (version 0; reactors adopt the
    /// initial config at startup without an install).
    pub fn new(config: OverloadConfig) -> OverloadControl {
        OverloadControl {
            version: AtomicU64::new(0),
            config: Mutex::new(config),
            shed: AtomicU64::new(0),
            shed_delayed: AtomicU64::new(0),
            parked_shed: AtomicU64::new(0),
            slots: (0..MAX_REACTORS).map(|_| Mutex::new(ReactorOverloadSnap::default())).collect(),
        }
    }

    /// Validates and installs a new configuration, returning the new
    /// version. Reactors reconfigure on their next loop turn; learned
    /// limits are carried over, not reset.
    ///
    /// # Errors
    ///
    /// Returns the validation failure; on error nothing changes.
    pub fn install(&self, config: OverloadConfig) -> Result<u64, ConfigError> {
        config.validate()?;
        let mut slot = self.config.lock();
        *slot = config;
        // Bump under the lock so a reactor that reads (version, config)
        // in that order can never pair a new version with an old config.
        Ok(self.version.fetch_add(1, Ordering::Release) + 1)
    }

    /// The installed-config version.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// A clone of the installed configuration.
    pub fn config(&self) -> OverloadConfig {
        self.config.lock().clone()
    }

    /// Counts `n` requests shed with an immediate `429`.
    pub(crate) fn note_shed(&self, n: u64) {
        self.shed.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` requests shed with a delay-paced `429`.
    pub(crate) fn note_shed_delayed(&self, n: u64) {
        self.shed.fetch_add(n, Ordering::Relaxed);
        self.shed_delayed.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` parked backlog connections drained with `503`.
    pub(crate) fn note_parked_shed(&self, n: u64) {
        self.parked_shed.fetch_add(n, Ordering::Relaxed);
    }

    /// Requests shed with `429` so far (tests/stats).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Parked backlog connections drained with `503` so far.
    pub fn parked_shed(&self) -> u64 {
        self.parked_shed.load(Ordering::Relaxed)
    }

    /// Stores reactor `index`'s snapshot (called from its thread).
    pub(crate) fn publish(&self, index: usize, snap: ReactorOverloadSnap) {
        if let Some(slot) = self.slots.get(index) {
            *slot.lock() = snap;
        }
    }

    /// Aggregates the current state across `reactors` reactors.
    pub fn snapshot(&self, reactors: usize) -> OverloadSnapshot {
        OverloadSnapshot {
            version: self.version(),
            config: self.config(),
            shed: self.shed.load(Ordering::Relaxed),
            shed_delayed: self.shed_delayed.load(Ordering::Relaxed),
            parked_shed: self.parked_shed.load(Ordering::Relaxed),
            reactors: self.slots[..reactors.min(self.slots.len())]
                .iter()
                .map(|slot| slot.lock().clone())
                .collect(),
        }
    }
}

/// The admission partition of a request path: its first segment
/// (`/stocks/ibm?q=1` → `/stocks`), the whole path when it has no second
/// segment. Admission tracks in-flight work and limits per partition.
pub fn partition_of(path: &str) -> &str {
    let path = path.split('?').next().unwrap_or(path);
    if let Some(rest) = path.strip_prefix('/') {
        if let Some(i) = rest.find('/') {
            return &path[..i + 1];
        }
    }
    path
}

/// Serializes a config to the admin-plane text form (one `key=value` per
/// line), round-tripped exactly by [`parse_overload_body`].
pub fn render_overload(config: &OverloadConfig) -> String {
    let mut out = String::new();
    let limiter = |spec: &Option<LimiterConfig>| match spec {
        Some(c) => c.to_spec(),
        None => "off".to_owned(),
    };
    out.push_str(&format!("admission={}\n", limiter(&config.admission)));
    out.push_str(&format!("pool={}\n", limiter(&config.pool)));
    out.push_str(&format!("retry_after_secs={}\n", config.retry_after_secs));
    out.push_str(&format!("shed_delay_ms={}\n", config.shed_delay.as_millis()));
    out.push_str(&format!("park_deadline_ms={}\n", config.park_deadline.as_millis()));
    out.push_str(&format!("admission_initial={}\n", config.admission_initial));
    out
}

/// Parses the admin-plane text form written by [`render_overload`].
/// Omitted keys keep their defaults; unknown or duplicate keys are
/// rejected (a typo must not silently fall back to a default). `#`
/// starts a comment.
///
/// # Errors
///
/// Returns [`ConfigError::InvalidSpec`] for malformed text and the
/// embedded limiter specs' validation errors.
pub fn parse_overload_body(body: &str) -> Result<OverloadConfig, ConfigError> {
    fn bad(message: impl Into<String>) -> ConfigError {
        ConfigError::InvalidSpec { message: message.into() }
    }
    let mut config = OverloadConfig::default();
    let mut seen: Vec<&str> = Vec::new();
    for raw in body.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| bad(format!("`{line}` is not a key=value line")))?;
        let (key, value) = (key.trim(), value.trim());
        if seen.contains(&key) {
            return Err(bad(format!("duplicate key `{key}`")));
        }
        seen.push(key);
        let limiter = |value: &str| -> Result<Option<LimiterConfig>, ConfigError> {
            if value.eq_ignore_ascii_case("off") {
                Ok(None)
            } else {
                LimiterConfig::from_spec(value).map(Some)
            }
        };
        let ms = |value: &str, key: &str| -> Result<Duration, ConfigError> {
            value
                .parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| bad(format!("`{key}` must be an integer millisecond count")))
        };
        match key {
            "admission" => config.admission = limiter(value)?,
            "pool" => config.pool = limiter(value)?,
            "retry_after_secs" => {
                config.retry_after_secs = value
                    .parse::<u32>()
                    .map_err(|_| bad("`retry_after_secs` must be an integer second count"))?;
            }
            "shed_delay_ms" => config.shed_delay = ms(value, key)?,
            "park_deadline_ms" => config.park_deadline = ms(value, key)?,
            "admission_initial" => {
                config.admission_initial = value
                    .parse::<usize>()
                    .map_err(|_| bad("`admission_initial` must be an integer"))?;
            }
            other => return Err(bad(format!("unknown key `{other}`"))),
        }
    }
    config.validate()?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_core::limit::{AimdConfig, VegasConfig};

    #[test]
    fn partitions_are_first_segments() {
        assert_eq!(partition_of("/stocks/ibm"), "/stocks");
        assert_eq!(partition_of("/stocks/msft?fast=1"), "/stocks");
        assert_eq!(partition_of("/news"), "/news");
        assert_eq!(partition_of("/news?page=2"), "/news");
        assert_eq!(partition_of("/"), "/");
        assert_eq!(partition_of("/a/b/c"), "/a");
    }

    #[test]
    fn overload_body_round_trips() {
        let config = OverloadConfig {
            admission: Some(LimiterConfig::Aimd(AimdConfig { max: 128, ..AimdConfig::default() })),
            pool: Some(LimiterConfig::Vegas(VegasConfig::default())),
            retry_after_secs: 2,
            shed_delay: Duration::from_millis(25),
            park_deadline: Duration::from_millis(750),
            admission_initial: 16,
        };
        let text = render_overload(&config);
        let back = parse_overload_body(&text).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn defaults_and_comments_parse() {
        let config = parse_overload_body("# nothing set\n").unwrap();
        assert_eq!(config, OverloadConfig::default());
        let config = parse_overload_body("admission=aimd # shed hot paths\n").unwrap();
        assert_eq!(
            config.admission,
            Some(LimiterConfig::Aimd(AimdConfig::default()))
        );
    }

    #[test]
    fn bad_bodies_are_rejected() {
        for bad in [
            "admission=tcp",
            "nonsense",
            "admission=aimd\nadmission=off",
            "unknown_key=1",
            "retry_after_secs=0",
            "park_deadline_ms=1",
            "admission_initial=0",
            "shed_delay_ms=soon",
        ] {
            assert!(parse_overload_body(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn install_versions_and_validates() {
        let control = OverloadControl::default();
        assert_eq!(control.version(), 0);
        let v = control
            .install(OverloadConfig {
                admission: Some(LimiterConfig::Aimd(AimdConfig::default())),
                ..OverloadConfig::default()
            })
            .unwrap();
        assert_eq!(v, 1);
        assert!(control.config().admission.is_some());
        let rejected = control.install(OverloadConfig {
            retry_after_secs: 0,
            ..OverloadConfig::default()
        });
        assert!(rejected.is_err());
        assert_eq!(control.version(), 1, "a rejected install changes nothing");
        assert!(control.config().admission.is_some());
    }

    #[test]
    fn snapshots_aggregate_reactor_slots() {
        let control = OverloadControl::default();
        control.note_shed(3);
        control.note_shed_delayed(2);
        control.note_parked_shed(1);
        control.publish(
            1,
            ReactorOverloadSnap {
                pool: None,
                partitions: vec![PartitionSnap {
                    partition: "/x".into(),
                    limit: 8,
                    in_flight: 2,
                    shed: 5,
                }],
            },
        );
        let snap = control.snapshot(2);
        assert_eq!(snap.shed, 5);
        assert_eq!(snap.shed_delayed, 2);
        assert_eq!(snap.parked_shed, 1);
        assert_eq!(snap.reactors.len(), 2);
        assert_eq!(snap.reactors[1].partitions[0].partition, "/x");
    }
}
