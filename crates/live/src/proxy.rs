//! The live caching proxy daemon.
//!
//! Serves client `GET`s from its cache while a background *refresher*
//! thread keeps configured objects Δt-consistent with the origin by
//! LIMD-scheduled `If-Modified-Since` polls — and, when a group rule is
//! set, Mt-consistent with one another via triggered polls, exactly as in
//! the simulator. One binary-ready struct, ephemeral ports, clean
//! shutdown on drop: the "implement it in a real proxy" future work of
//! §7, in miniature.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant, SystemTime, UNIX_EPOCH};

use bytes::{Bytes, BytesMut};
use parking_lot::RwLock;

use mutcon_core::limd::{Limd, LimdConfig, PollResult};
use mutcon_core::mutual::temporal::{MtCoordinator, MtPolicy};
use mutcon_core::object::ObjectId;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_http::headers::HeaderName;
use mutcon_http::message::{Request, Response};
use mutcon_http::types::{Method, StatusCode};

use crate::client::{last_modified_ms, object_value, HttpClient, X_LAST_MODIFIED_MS};
use crate::threadpool::ThreadPool;
use crate::wire::{read_request, write_response};

/// Consistency requirements for one cached object.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshRule {
    /// Object path at the origin (and at this proxy).
    pub path: String,
    /// The Δt tolerance.
    pub delta: Duration,
    /// Upper TTR bound (defaults to 64·Δ).
    pub ttr_max: Duration,
}

impl RefreshRule {
    /// A rule with the default TTR ceiling.
    pub fn new(path: impl Into<String>, delta: Duration) -> Self {
        RefreshRule {
            path: path.into(),
            delta,
            ttr_max: delta * 64,
        }
    }

    /// Overrides the TTR ceiling.
    pub fn ttr_max(mut self, ttr_max: Duration) -> Self {
        self.ttr_max = ttr_max;
        self
    }
}

/// Mutual-consistency requirements across all rule paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupRule {
    /// The Mt tolerance δ.
    pub delta: Duration,
    /// Triggered polls or the rate heuristic.
    pub policy: MtPolicy,
}

/// Proxy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyConfig {
    /// Where the origin listens.
    pub origin_addr: SocketAddr,
    /// Objects to keep fresh.
    pub rules: Vec<RefreshRule>,
    /// Optional Mt coordination across all rule paths.
    pub group: Option<GroupRule>,
}

/// A snapshot of the proxy's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProxyStats {
    /// Refresher polls sent to the origin.
    pub polls: u64,
    /// Polls initiated by the mutual-consistency coordinator.
    pub triggered: u64,
    /// Polls that brought back a fresh copy.
    pub refreshes: u64,
    /// Client requests served from cache.
    pub hits: u64,
    /// Client requests that had to fetch from the origin.
    pub misses: u64,
    /// Failed origin polls (timeouts, resets).
    pub errors: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    body: Bytes,
    last_modified: Timestamp,
    value: Option<f64>,
    version: Option<String>,
}

#[derive(Debug, Default)]
struct Counters {
    polls: AtomicU64,
    triggered: AtomicU64,
    refreshes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
}

struct Shared {
    origin: SocketAddr,
    cache: RwLock<HashMap<String, CacheEntry>>,
    counters: Counters,
    client: HttpClient,
}

/// The running proxy; shuts down (and joins its threads) on drop.
pub struct LiveProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl LiveProxy {
    /// Binds a localhost listener on an ephemeral port and starts the
    /// accept loop and the background refresher.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; returns [`io::ErrorKind::InvalidInput`]
    /// for invalid rules (zero Δ).
    pub fn start(config: ProxyConfig) -> io::Result<LiveProxy> {
        for rule in &config.rules {
            if rule.delta.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("rule for {} has zero delta", rule.path),
                ));
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            origin: config.origin_addr,
            cache: RwLock::new(HashMap::new()),
            counters: Counters::default(),
            client: HttpClient::with_timeout(StdDuration::from_secs(2)),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        // Accept loop.
        {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            let pool = ThreadPool::new(4);
            threads.push(
                std::thread::Builder::new()
                    .name("mutcon-live-proxy-accept".into())
                    .spawn(move || {
                        for conn in listener.incoming() {
                            if shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(stream) = conn else { continue };
                            let shared = Arc::clone(&shared);
                            pool.execute(move || handle_client(stream, &shared));
                        }
                    })
                    .expect("spawning the proxy accept thread"),
            );
        }

        // Refresher.
        if !config.rules.is_empty() {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            let rules = config.rules.clone();
            let group = config.group;
            threads.push(
                std::thread::Builder::new()
                    .name("mutcon-live-proxy-refresher".into())
                    .spawn(move || refresher(&shared, &shutdown, &rules, group))
                    .expect("spawning the refresher thread"),
            );
        }

        Ok(LiveProxy {
            addr,
            shared,
            shutdown,
            threads,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> ProxyStats {
        let c = &self.shared.counters;
        ProxyStats {
            polls: c.polls.load(Ordering::SeqCst),
            triggered: c.triggered.load(Ordering::SeqCst),
            refreshes: c.refreshes.load(Ordering::SeqCst),
            hits: c.hits.load(Ordering::SeqCst),
            misses: c.misses.load(Ordering::SeqCst),
            errors: c.errors.load(Ordering::SeqCst),
        }
    }
}

impl Drop for LiveProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for LiveProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveProxy")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish()
    }
}

fn unix_now() -> Timestamp {
    Timestamp::from_millis(
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock before the Unix epoch")
            .as_millis() as u64,
    )
}

fn std_duration(d: Duration) -> StdDuration {
    StdDuration::from_millis(d.as_millis())
}

/// Stores a 200 response in the cache; returns its modification time.
fn store_response(shared: &Shared, path: &str, response: &Response) -> Option<Timestamp> {
    let lm = last_modified_ms(response)?;
    let entry = CacheEntry {
        body: response.body().clone(),
        last_modified: lm,
        value: object_value(response),
        version: response
            .headers()
            .get(HeaderName::X_OBJECT_VERSION)
            .map(str::to_owned),
    };
    shared.cache.write().insert(path.to_owned(), entry);
    shared.counters.refreshes.fetch_add(1, Ordering::SeqCst);
    Some(lm)
}

/// One refresher poll. Returns the poll result for the adaptation layers,
/// or `None` on a network error.
fn poll_origin(shared: &Shared, path: &str) -> Option<PollResult> {
    let validator = shared.cache.read().get(path).map(|e| e.last_modified);
    shared.counters.polls.fetch_add(1, Ordering::SeqCst);
    match shared.client.get(shared.origin, path, validator) {
        Ok(response) if response.status() == StatusCode::NOT_MODIFIED => {
            Some(PollResult::NotModified)
        }
        Ok(response) if response.status() == StatusCode::OK => {
            let lm = store_response(shared, path, &response)?;
            let history = mutcon_http::extensions::modification_history(response.headers());
            Some(PollResult::Modified {
                last_modified: lm,
                history,
            })
        }
        Ok(_) | Err(_) => {
            shared.counters.errors.fetch_add(1, Ordering::SeqCst);
            None
        }
    }
}

fn refresher(
    shared: &Shared,
    shutdown: &AtomicBool,
    rules: &[RefreshRule],
    group: Option<GroupRule>,
) {
    let mut limds: HashMap<String, Limd> = rules
        .iter()
        .map(|r| {
            let config = LimdConfig::builder(r.delta)
                .ttr_max(r.ttr_max.max(r.delta))
                .build()
                .expect("rule validated at startup");
            (r.path.clone(), Limd::new(config))
        })
        .collect();
    let mut due: HashMap<String, Instant> = rules
        .iter()
        .map(|r| (r.path.clone(), Instant::now()))
        .collect();
    let mut coordinator = group.map(|g| {
        MtCoordinator::new(
            g.delta,
            g.policy,
            rules.iter().map(|r| ObjectId::new(&r.path)),
        )
    });

    while !shutdown.load(Ordering::SeqCst) {
        let Some((path, at)) = due
            .iter()
            .min_by_key(|(_, at)| **at)
            .map(|(p, at)| (p.clone(), *at))
        else {
            return;
        };
        let now = Instant::now();
        if at > now {
            // Sleep in short slices so shutdown stays responsive.
            std::thread::sleep((at - now).min(StdDuration::from_millis(20)));
            continue;
        }

        let now_ts = unix_now();
        match poll_origin(shared, &path) {
            Some(result) => {
                let limd = limds.get_mut(&path).expect("rule path");
                let decision = limd.on_poll(now_ts, &result);
                due.insert(path.clone(), Instant::now() + std_duration(decision.ttr));
                if let Some(coord) = coordinator.as_mut() {
                    let id = ObjectId::new(&path);
                    let triggers = coord.on_poll(&id, now_ts, &result);
                    coord.record_scheduled_poll(&id, now_ts + decision.ttr);
                    for target in triggers {
                        shared.counters.triggered.fetch_add(1, Ordering::SeqCst);
                        // Triggered polls are additional: refresh the
                        // cache and tell the coordinator, but leave the
                        // target's LIMD schedule alone.
                        if let Some(result) = poll_origin(shared, target.as_str()) {
                            coord.on_poll(&target, unix_now(), &result);
                        }
                    }
                }
            }
            None => {
                // Back off briefly on errors; the rule's Δ governs how
                // aggressive a retry is sensible.
                let retry = std_duration(
                    limds[&path].config().delta().min(Duration::from_millis(200)),
                );
                due.insert(path.clone(), Instant::now() + retry.max(StdDuration::from_millis(20)));
            }
        }
    }
}

fn handle_client(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(StdDuration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(StdDuration::from_secs(10)));
    let mut buf = BytesMut::new();
    while let Ok(Some(request)) = read_request(&mut stream, &mut buf) {
        let response = respond(shared, &request);
        if write_response(&mut stream, &response).is_err() {
            break;
        }
    }
}

fn respond(shared: &Shared, request: &Request) -> Response {
    if request.method() != &Method::Get {
        return Response::builder(StatusCode::METHOD_NOT_ALLOWED).build();
    }
    let path = request.target();
    if path == "/__stats" {
        let c = &shared.counters;
        let body = format!(
            "polls={}\ntriggered={}\nrefreshes={}\nhits={}\nmisses={}\nerrors={}\n",
            c.polls.load(Ordering::SeqCst),
            c.triggered.load(Ordering::SeqCst),
            c.refreshes.load(Ordering::SeqCst),
            c.hits.load(Ordering::SeqCst),
            c.misses.load(Ordering::SeqCst),
            c.errors.load(Ordering::SeqCst),
        );
        return Response::ok().body(body.into_bytes()).build();
    }

    // Cache hit?
    if let Some(entry) = shared.cache.read().get(path).cloned() {
        shared.counters.hits.fetch_add(1, Ordering::SeqCst);
        return entry_response(&entry, true);
    }

    // Miss: fetch from the origin, cache, serve.
    shared.counters.misses.fetch_add(1, Ordering::SeqCst);
    match shared.client.get(shared.origin, path, None) {
        Ok(response) if response.status() == StatusCode::OK => {
            store_response(shared, path, &response);
            match shared.cache.read().get(path).cloned() {
                Some(entry) => entry_response(&entry, false),
                // Origin 200 without a modification stamp: pass through.
                None => response,
            }
        }
        Ok(response) => response, // 404 etc. pass through
        Err(_) => Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
            .body(&b"origin unreachable\n"[..])
            .build(),
    }
}

fn entry_response(entry: &CacheEntry, hit: bool) -> Response {
    let mut builder = Response::ok()
        .last_modified(entry.last_modified)
        .header(X_LAST_MODIFIED_MS, entry.last_modified.as_millis().to_string())
        .header("x-cache", if hit { "hit" } else { "miss" });
    if let Some(v) = entry.value {
        builder = builder.header(HeaderName::X_OBJECT_VALUE, v.to_string());
    }
    if let Some(version) = &entry.version {
        builder = builder.header(HeaderName::X_OBJECT_VERSION, version.clone());
    }
    builder.body(entry.body.clone()).build()
}
