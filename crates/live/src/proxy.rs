//! The live caching proxy daemon.
//!
//! Serves client `GET`s from its cache while a background *refresh
//! plane* — one scheduler thread dispatching due paths to a pool of
//! poll workers ([`ProxyConfig::refresh_workers`], each with its own
//! keep-alive origin connection) — keeps configured objects
//! Δt-consistent with the origin by LIMD-scheduled `If-Modified-Since`
//! polls, and, when a group rule is set, Mt-consistent with one another
//! via triggered polls, exactly as in the simulator. One binary-ready
//! struct, ephemeral ports, clean shutdown on drop: the "implement it
//! in a real proxy" future work of §7, in miniature.
//!
//! Connections are served by the shared readiness-driven engine
//! ([`crate::server`]): one reactor per core (`MUTCON_LIVE_REACTORS`,
//! or [`ProxyConfig::reactors`]), each with its own `SO_REUSEPORT`
//! listener shard and its own keep-alive origin pool — cache misses
//! ride pooled persistent connections, and identical concurrent misses
//! coalesce into a single origin fetch. There is no thread pool and no
//! thread per connection. The cache is the 16-way sharded
//! [`crate::cache::ShardedCache`], shared by every reactor, so the
//! refresher's write locks stall only 1/16th of concurrent hits instead
//! of all of them. Entries pre-render their serving head at store time,
//! so a hit is two shared slices handed to `writev` — no serialization
//! and no body copy on the hot path, however many clients share the
//! entry. Concurrency is bounded by `MUTCON_LIVE_CONNS` (see
//! [`crate::server::max_conns`]) or [`ProxyConfig::max_conns`].
//!
//! # The admin control plane
//!
//! The refresh rules live in the hot-swappable
//! [`crate::runtime::ConsistencyRuntime`] and are operable at runtime
//! through three endpoints the reactors serve **locally** (no cache, no
//! upstream):
//!
//! * `GET /admin/rules` — the current epoch, group rule and per-path
//!   live state (Δ, TTR bounds, current adaptive TTR, last poll) as
//!   JSON.
//! * `PUT /admin/rules` — validate → epoch bump → atomic swap. Bad
//!   rules (duplicate paths, zero Δ, inverted TTR bounds) are rejected
//!   with `400` and a reason; nothing changes. A successful swap keeps
//!   the cache and every established connection: unchanged paths keep
//!   their adaptive-TTR state, changed paths rebuild, removed paths
//!   stop polling and their cache entries are evicted.
//! * `GET /admin/stats` — per-shard cache occupancy and evictions,
//!   per-reactor connection counts, origin-pool reuse/coalesce
//!   counters, wire-path syscall/copy counters (`writev` vs `write`
//!   calls, accept batches, body copies, buffer-pool traffic, interest
//!   coalescing and ring submissions, plus the per-reactor active
//!   backend), the refresh plane's worker/in-flight/drift figures, and
//!   the proxy's poll/hit/miss counters.
//!
//! When a bearer token is configured ([`ProxyConfig::admin_token`] or
//! `MUTCON_ADMIN_TOKEN`), every `/admin/*` request must carry
//! `Authorization: Bearer <token>` or it is refused with `401`. A
//! configured [`ProxyConfig::rules_file`] is re-read on `SIGHUP`,
//! feeding the same install path as `PUT /admin/rules`.
//!
//! The legacy plain-text `/__stats` endpoint remains for scripts.

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration as StdDuration;

use mutcon_core::limd::PollResult;
use mutcon_core::mutual::temporal::MtPolicy;
use mutcon_core::time::Duration;
use mutcon_sim::reactor::BackendKind;
use mutcon_http::headers::HeaderName;
use mutcon_http::message::{Request, Response};
use mutcon_http::types::{Method, StatusCode};
use mutcon_traces::json::Json;

use crate::cache::{CacheEntry, ShardedCache};
use crate::client::{last_modified_ms, object_value, PersistentClient};
use crate::overload::{parse_overload_body, render_overload, OverloadControl};
use crate::runtime::{ConsistencyRuntime, InstallReport, PollKind};
use crate::server::{
    EngineMetrics, EventLoop, PreparedResponse, Reply, Service, ServiceResult,
};

/// Consistency requirements for one cached object.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshRule {
    /// Object path at the origin (and at this proxy).
    pub path: String,
    /// The Δt tolerance.
    pub delta: Duration,
    /// Upper TTR bound (defaults to 64·Δ).
    pub ttr_max: Duration,
}

impl RefreshRule {
    /// A rule with the default TTR ceiling.
    pub fn new(path: impl Into<String>, delta: Duration) -> Self {
        RefreshRule {
            path: path.into(),
            delta,
            ttr_max: delta * 64,
        }
    }

    /// Overrides the TTR ceiling.
    pub fn ttr_max(mut self, ttr_max: Duration) -> Self {
        self.ttr_max = ttr_max;
        self
    }
}

/// Mutual-consistency requirements across all rule paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupRule {
    /// The Mt tolerance δ.
    pub delta: Duration,
    /// Triggered polls or the rate heuristic.
    pub policy: MtPolicy,
}

/// Proxy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyConfig {
    /// Where the origin listens.
    pub origin_addr: SocketAddr,
    /// Objects to keep fresh.
    pub rules: Vec<RefreshRule>,
    /// Optional Mt coordination across all rule paths.
    pub group: Option<GroupRule>,
    /// Cache bound in objects (`None` = unbounded, the paper's model);
    /// enforced per shard with LRU eviction.
    pub cache_objects: Option<usize>,
    /// Reactor threads for the connection engine (`None` = the
    /// `MUTCON_LIVE_REACTORS` / one-per-core default, see
    /// [`crate::server::num_reactors`]).
    pub reactors: Option<usize>,
    /// Concurrent-connection bound across all reactors (`None` = the
    /// `MUTCON_LIVE_CONNS` default, see [`crate::server::max_conns`]).
    /// Load tests past the default raise this directly instead of
    /// through the environment.
    pub max_conns: Option<usize>,
    /// Reactor I/O backend (`None` = the `MUTCON_LIVE_BACKEND`
    /// environment selection, defaulting to coalesced-interest epoll).
    /// `Some(BackendKind::IoUring)` still falls back to epoll when the
    /// kernel refuses rings — see `/admin/stats`'s `wire.backends` for
    /// what each reactor actually runs.
    pub backend: Option<BackendKind>,
    /// Per-reactor L1 hot-object cache capacity in objects (`None` = the
    /// `MUTCON_LIVE_L1` / [`crate::server::DEFAULT_L1_OBJECTS`] default;
    /// `Some(0)` disables the L1 entirely). A validated L1 hit is served
    /// without touching any shared shard lock; coherence comes from the
    /// per-path version stamps in [`crate::cache::ShardedCache`].
    pub l1_objects: Option<usize>,
    /// Poll workers for the refresh plane (`None` = the
    /// `MUTCON_LIVE_REFRESH_WORKERS` /
    /// [`crate::server::DEFAULT_REFRESH_WORKERS`] default). Each worker
    /// owns one persistent keep-alive origin connection; the scheduler
    /// thread dispatches due paths to them over a bounded queue so
    /// in-flight polls overlap origin latency.
    pub refresh_workers: Option<usize>,
    /// Bearer token gating the `/admin/*` plane (`None` = the
    /// `MUTCON_ADMIN_TOKEN` environment value, or no auth when that is
    /// unset/empty). When set, admin requests without
    /// `Authorization: Bearer <token>` get `401`.
    pub admin_token: Option<String>,
    /// Rules file re-read on `SIGHUP` (`None` = no signal hook). The
    /// file holds the same JSON body `PUT /admin/rules` accepts; a
    /// successful re-read feeds [`ConsistencyRuntime::install`] exactly
    /// as the HTTP handler does, a failed one bumps `reload_errors` and
    /// changes nothing.
    pub rules_file: Option<PathBuf>,
}

impl ProxyConfig {
    /// A configuration with no rules, no group, an unbounded cache and
    /// the default reactor and connection counts.
    pub fn new(origin_addr: SocketAddr) -> ProxyConfig {
        ProxyConfig {
            origin_addr,
            rules: Vec::new(),
            group: None,
            cache_objects: None,
            reactors: None,
            max_conns: None,
            backend: None,
            l1_objects: None,
            refresh_workers: None,
            admin_token: None,
            rules_file: None,
        }
    }
}

/// A snapshot of the proxy's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProxyStats {
    /// Refresher polls sent to the origin.
    pub polls: u64,
    /// Polls initiated by the mutual-consistency coordinator.
    pub triggered: u64,
    /// Polls that brought back a fresh copy.
    pub refreshes: u64,
    /// Client requests served from cache.
    pub hits: u64,
    /// Client requests that had to fetch from the origin.
    pub misses: u64,
    /// Failed origin polls (timeouts, resets).
    pub errors: u64,
    /// Rule reloads applied through `PUT /admin/rules` or `SIGHUP`.
    pub reloads: u64,
    /// `SIGHUP` re-reads that failed (unreadable file, bad JSON,
    /// invalid rules) and therefore changed nothing.
    pub reload_errors: u64,
}

#[derive(Debug, Default)]
struct Counters {
    polls: AtomicU64,
    triggered: AtomicU64,
    refreshes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    reloads: AtomicU64,
    reload_errors: AtomicU64,
}

struct Shared {
    origin: SocketAddr,
    cache: ShardedCache,
    counters: Counters,
    runtime: Arc<ConsistencyRuntime>,
    /// Bearer token gating `/admin/*`; `None` leaves the plane open.
    admin_token: Option<String>,
}

/// The running proxy; shuts down (and joins its threads) on drop.
pub struct LiveProxy {
    server: EventLoop,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    refresher: Option<JoinHandle<()>>,
    /// Keeps the `SIGHUP` → rules-file reload listener registered for
    /// the proxy's lifetime (dropped, and thus unregistered, with it).
    _sighup: Option<mutcon_sim::signal::SighupGuard>,
}

impl LiveProxy {
    /// Binds a localhost listener on an ephemeral port and starts the
    /// reactor and the background refresher. The refresher thread runs
    /// even with an empty rule set, so rules installed later through
    /// `PUT /admin/rules` start polling without a restart.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; returns [`io::ErrorKind::InvalidInput`]
    /// for invalid rules (zero Δ, duplicate paths, inverted TTR bounds —
    /// the same validation `PUT /admin/rules` applies).
    pub fn start(config: ProxyConfig) -> io::Result<LiveProxy> {
        let runtime = ConsistencyRuntime::new(config.rules, config.group)
            .map_err(|reason| io::Error::new(io::ErrorKind::InvalidInput, reason))?;
        let shared = Arc::new(Shared {
            origin: config.origin_addr,
            cache: ShardedCache::new(config.cache_objects),
            counters: Counters::default(),
            runtime: Arc::clone(&runtime),
            admin_token: config
                .admin_token
                .clone()
                .filter(|t| !t.is_empty())
                .or_else(crate::server::admin_token),
        });
        let shutdown = Arc::new(AtomicBool::new(false));

        let metrics = Arc::new(EngineMetrics::new());
        let overload = Arc::new(OverloadControl::default());
        let server = EventLoop::with_overload(
            "mutcon-live-proxy-reactor",
            Arc::new(ProxyService {
                shared: Arc::clone(&shared),
                metrics: Arc::clone(&metrics),
                overload: Arc::clone(&overload),
                l1_objects: config.l1_objects.unwrap_or_else(crate::server::l1_objects),
            }),
            config.max_conns.unwrap_or_else(crate::server::max_conns),
            config.reactors.unwrap_or_else(crate::server::num_reactors),
            metrics,
            config.backend,
            overload,
        )?;

        let refresher = {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            let workers = config
                .refresh_workers
                .unwrap_or_else(crate::server::refresh_workers);
            Some(
                std::thread::Builder::new()
                    .name("mutcon-live-refresh-scheduler".into())
                    .spawn(move || {
                        let runtime = Arc::clone(&shared.runtime);
                        let shared = &shared;
                        runtime.run(
                            &shutdown,
                            workers,
                            // Each poll worker owns one persistent
                            // keep-alive origin connection; a stale
                            // socket reconnects transparently inside
                            // the client.
                            |_worker| {
                                let mut client = PersistentClient::new(
                                    shared.origin,
                                    StdDuration::from_secs(2),
                                );
                                move |kind: PollKind, path: &str| {
                                    if kind == PollKind::Triggered {
                                        shared
                                            .counters
                                            .triggered
                                            .fetch_add(1, Ordering::SeqCst);
                                    }
                                    poll_origin(shared, &mut client, path)
                                }
                            },
                            // Un-ruled paths lose their cached copy when
                            // the scheduler adopts the swap — this fires
                            // for every install, including direct
                            // `runtime().install()` callers that never
                            // touch the HTTP handler.
                            |removed| {
                                shared.cache.remove(removed);
                            },
                            // Every adopted swap — HTTP PUT or direct
                            // install — bulk-invalidates the reactors'
                            // L1s. (The PUT handler also bumps at
                            // install time; the double bump is harmless
                            // and closes the adoption lag.)
                            |_version| {
                                shared.cache.bump_generation();
                            },
                        );
                    })?,
            )
        };

        // SIGHUP → re-read the rules file, when one is configured. The
        // guard unregisters on drop, so the listener dies with the
        // proxy; the reload itself is the same validate → install →
        // evict/bump path `PUT /admin/rules` takes.
        let sighup = match config.rules_file {
            Some(path) => {
                let shared = Arc::clone(&shared);
                Some(
                    mutcon_sim::signal::on_sighup(move || {
                        reload_rules_file(&shared, &path);
                    })?,
                )
            }
            None => None,
        };

        Ok(LiveProxy {
            server,
            shared,
            shutdown,
            refresher,
            _sighup: sighup,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> ProxyStats {
        let c = &self.shared.counters;
        ProxyStats {
            polls: c.polls.load(Ordering::SeqCst),
            triggered: c.triggered.load(Ordering::SeqCst),
            refreshes: c.refreshes.load(Ordering::SeqCst),
            hits: c.hits.load(Ordering::SeqCst),
            misses: c.misses.load(Ordering::SeqCst),
            errors: c.errors.load(Ordering::SeqCst),
            reloads: c.reloads.load(Ordering::SeqCst),
            reload_errors: c.reload_errors.load(Ordering::SeqCst),
        }
    }

    /// Number of objects currently cached (across all shards).
    pub fn cached_objects(&self) -> usize {
        self.shared.cache.len()
    }

    /// How many reactor threads serve this proxy.
    pub fn reactor_count(&self) -> usize {
        self.server.reactor_count()
    }

    /// The hot-swappable consistency runtime (rules epoch + live state).
    /// The HTTP admin plane is a thin layer over this.
    pub fn runtime(&self) -> &Arc<ConsistencyRuntime> {
        &self.shared.runtime
    }

    /// The connection engine's always-on counters — syscall and copy
    /// tallies included, so tests can assert the hit path stays
    /// zero-copy without scraping `/admin/stats`.
    pub fn engine_metrics(&self) -> &Arc<EngineMetrics> {
        self.server.metrics()
    }

    /// The hot-swappable overload control (admission shedding + adaptive
    /// origin fan-out). `GET`/`PUT /admin/overload` is a thin layer over
    /// this, like the rules admin over [`LiveProxy::runtime`].
    pub fn overload(&self) -> &Arc<OverloadControl> {
        self.server.overload()
    }
}

impl Drop for LiveProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The scheduler may be parked on its condvar with nothing due;
        // the wake makes it observe the flag now instead of at the next
        // poll deadline.
        self.shared.runtime.wake();
        if let Some(handle) = self.refresher.take() {
            let _ = handle.join();
        }
        // The EventLoop field's own Drop wakes and joins the reactor.
    }
}

impl std::fmt::Debug for LiveProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveProxy")
            .field("addr", &self.local_addr())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The request handler running on the reactor thread.
struct ProxyService {
    shared: Arc<Shared>,
    metrics: Arc<EngineMetrics>,
    overload: Arc<OverloadControl>,
    /// Per-reactor L1 capacity (resolved from config/environment at
    /// start; 0 disables).
    l1_objects: usize,
}

impl Service for ProxyService {
    fn respond(&self, request: &Request) -> ServiceResult {
        let path = request.target();
        // The admin prefix is dispatched locally on the reactor — it
        // never touches the cache-miss/upstream machinery. When a
        // bearer token is configured, it gates every admin endpoint.
        if path.starts_with("/admin/") {
            if let Some(denied) = self.check_admin_auth(request) {
                return ServiceResult::Respond(denied);
            }
            return ServiceResult::Respond(self.admin(request));
        }
        if request.method() != &Method::Get {
            return ServiceResult::Respond(
                Response::builder(StatusCode::METHOD_NOT_ALLOWED).build(),
            );
        }
        if path == "/__stats" {
            let c = &self.shared.counters;
            let body = format!(
                "polls={}\ntriggered={}\nrefreshes={}\nhits={}\nmisses={}\nerrors={}\nreloads={}\n",
                c.polls.load(Ordering::SeqCst),
                c.triggered.load(Ordering::SeqCst),
                c.refreshes.load(Ordering::SeqCst),
                c.hits.load(Ordering::SeqCst),
                c.misses.load(Ordering::SeqCst),
                c.errors.load(Ordering::SeqCst),
                c.reloads.load(Ordering::SeqCst),
            );
            return ServiceResult::Respond(Response::ok().body(body.into_bytes()).build());
        }

        // Cache hit: the entry's pre-rendered head and shared body go
        // out as-is — no serialization, no body copy, one writev. The
        // versioned capture rides along so the reactor refills its L1
        // and the *next* request for this path skips the shard lock
        // entirely.
        if let Some(hit) = self.shared.cache.get_versioned(path) {
            self.shared.counters.hits.fetch_add(1, Ordering::SeqCst);
            let response = prepared(&hit.entry, true);
            return ServiceResult::RespondCacheable(response, hit);
        }

        // Miss: fetch from the origin through the reactor (its own
        // nonblocking state machine), cache, serve.
        self.shared.counters.misses.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&self.shared);
        let path = path.to_owned();
        ServiceResult::Upstream {
            addr: self.shared.origin,
            // `Connection: keep-alive` advertised explicitly: the fetch
            // rides a pooled persistent origin connection, and identical
            // request bytes are the pool's coalescing key.
            request: Request::get(&path)
                .host(self.shared.origin.to_string())
                .keep_alive()
                .build(),
            finish: Box::new(move |result| match result {
                Ok(mut response) => {
                    // `Connection` is hop-by-hop (RFC 7230 §6.1): the
                    // origin's choice governs the pooled origin socket,
                    // not the client connection — strip it before
                    // forwarding (the engine re-adds `close` when the
                    // *client* asked for it).
                    response.headers_mut().remove(HeaderName::CONNECTION);
                    if response.status() == StatusCode::OK {
                        match store_response(&shared, &path, &response) {
                            // Serve the freshly stored entry the same
                            // zero-copy way a hit would.
                            Some(entry) => Reply::Prepared(prepared(&entry, false)),
                            // Origin 200 without a modification stamp:
                            // pass through uncached.
                            None => Reply::Full(response),
                        }
                    } else {
                        Reply::Full(response) // 404 etc. pass through
                    }
                }
                Err(_) => Reply::Full(
                    Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
                        .body(&b"origin unreachable\n"[..])
                        .build(),
                ),
            }),
        }
    }

    fn l1_capacity(&self) -> usize {
        self.l1_objects
    }

    fn l1_generation(&self) -> u64 {
        self.shared.cache.generation()
    }

    /// Only plain `GET`s for cacheable paths may be answered from a
    /// reactor's L1; the admin plane and the stats endpoints always run
    /// their handlers.
    fn l1_key<'r>(&self, request: &'r Request) -> Option<&'r str> {
        let path = request.target();
        if request.method() != &Method::Get
            || path.starts_with("/admin/")
            || path == "/__stats"
        {
            return None;
        }
        Some(path)
    }

    /// An L1-validated hit serves the same zero-copy way an L2 hit
    /// does, and counts as a cache hit.
    fn l1_serve(
        &self,
        _request: &Request,
        hit: &crate::cache::VersionedEntry,
    ) -> Option<PreparedResponse> {
        self.shared.counters.hits.fetch_add(1, Ordering::SeqCst);
        Some(prepared(&hit.entry, true))
    }
}

fn json_response(status: StatusCode, value: &Json) -> Response {
    Response::builder(status)
        .header(HeaderName::CONTENT_TYPE, "application/json")
        .body(format!("{value}\n").into_bytes())
        .build()
}

fn error_response(status: StatusCode, reason: &str) -> Response {
    let mut body = std::collections::BTreeMap::new();
    body.insert("error".to_owned(), Json::String(reason.to_owned()));
    json_response(status, &Json::Object(body))
}

fn obj(entries: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

impl ProxyService {
    /// Returns the `401` response when a bearer token is configured and
    /// the request doesn't carry it; `None` admits the request. Uses
    /// the standard `Authorization: Bearer <token>` scheme
    /// (case-sensitive token, scheme per RFC 6750).
    fn check_admin_auth(&self, request: &Request) -> Option<Response> {
        let expected = self.shared.admin_token.as_deref()?;
        let authorized = request
            .headers()
            .get("authorization")
            .and_then(|value| value.trim().strip_prefix("Bearer "))
            .is_some_and(|token| token.trim() == expected);
        if authorized {
            None
        } else {
            let mut response =
                error_response(StatusCode::UNAUTHORIZED, "missing or invalid bearer token");
            response
                .headers_mut()
                .insert("www-authenticate", "Bearer");
            Some(response)
        }
    }

    /// Dispatches one `/admin/…` request locally.
    fn admin(&self, request: &Request) -> Response {
        match (request.method(), request.target()) {
            (Method::Get, "/admin/rules") => self.rules_json(),
            (Method::Put, "/admin/rules") => self.apply_rules(request.body()),
            (Method::Get, "/admin/stats") => self.stats_json(),
            (Method::Get, "/admin/overload") => self.overload_text(),
            (Method::Put, "/admin/overload") => self.apply_overload(request.body()),
            (_, "/admin/rules" | "/admin/stats" | "/admin/overload") => {
                Response::builder(StatusCode::METHOD_NOT_ALLOWED).build()
            }
            _ => error_response(StatusCode::NOT_FOUND, "unknown admin endpoint"),
        }
    }

    /// `GET /admin/overload`: the installed config in the same
    /// `key=value` text form `PUT` accepts, so a round trip is
    /// copy-paste.
    fn overload_text(&self) -> Response {
        Response::ok()
            .header(HeaderName::CONTENT_TYPE, "text/plain")
            .body(render_overload(&self.overload.config()).into_bytes())
            .build()
    }

    /// `PUT /admin/overload`: parse → validate → versioned install; the
    /// reactors adopt the new limiters on their next loop turn, carrying
    /// learned limits over. Bad bodies change nothing.
    fn apply_overload(&self, body: &[u8]) -> Response {
        let Ok(text) = std::str::from_utf8(body) else {
            return error_response(StatusCode::BAD_REQUEST, "body is not UTF-8");
        };
        match parse_overload_body(text).map(|config| self.overload.install(config)) {
            Ok(Ok(version)) => {
                json_response(StatusCode::OK, &obj([("version", Json::Number(version as f64))]))
            }
            Ok(Err(reason)) | Err(reason) => {
                error_response(StatusCode::BAD_REQUEST, &reason.to_string())
            }
        }
    }

    /// `GET /admin/rules`: current epoch + per-path live state.
    fn rules_json(&self) -> Response {
        let runtime = &self.shared.runtime;
        let epoch = runtime.current();
        let status: HashMap<String, _> = runtime
            .status()
            .into_iter()
            .map(|s| (s.path.clone(), s))
            .collect();
        let rules: Vec<Json> = epoch
            .rules
            .iter()
            .map(|rule| {
                let live = status.get(&rule.path);
                let spec = crate::runtime::limd_config(rule)
                    .map(|c| Json::String(c.to_spec()))
                    .unwrap_or(Json::Null);
                obj([
                    ("path", Json::String(rule.path.clone())),
                    ("delta_ms", Json::Number(rule.delta.as_millis() as f64)),
                    ("ttr_max_ms", Json::Number(rule.ttr_max.as_millis() as f64)),
                    ("limd", spec),
                    (
                        "ttr_ms",
                        live.map_or(Json::Null, |s| Json::Number(s.ttr.as_millis() as f64)),
                    ),
                    (
                        "last_poll_unix_ms",
                        live.and_then(|s| s.last_poll_unix_ms)
                            .map_or(Json::Null, |ms| Json::Number(ms as f64)),
                    ),
                    (
                        "polls",
                        live.map_or(Json::Null, |s| Json::Number(s.polls as f64)),
                    ),
                    (
                        "rule_epoch",
                        live.map_or(Json::Null, |s| Json::Number(s.rule_epoch as f64)),
                    ),
                ])
            })
            .collect();
        let group = epoch.group.map_or(Json::Null, |g| {
            obj([
                ("delta_ms", Json::Number(g.delta.as_millis() as f64)),
                ("policy", Json::String(g.policy.to_string())),
            ])
        });
        let doc = obj([
            ("epoch", Json::Number(epoch.version as f64)),
            ("group", group),
            ("rules", Json::Array(rules)),
        ]);
        json_response(StatusCode::OK, &doc)
    }

    /// `PUT /admin/rules`: parse → validate → epoch bump → atomic swap.
    fn apply_rules(&self, body: &[u8]) -> Response {
        match parse_rules_body(body) {
            Err(reason) => error_response(StatusCode::BAD_REQUEST, &reason),
            Ok((rules, group)) => match self.shared.runtime.install(rules, group) {
                Err(reason) => error_response(StatusCode::BAD_REQUEST, &reason),
                Ok(report) => {
                    apply_install_effects(&self.shared, &report);
                    let doc = obj([
                        ("epoch", Json::Number(report.version as f64)),
                        (
                            "added",
                            Json::Array(report.added.iter().cloned().map(Json::String).collect()),
                        ),
                        (
                            "changed",
                            Json::Array(
                                report.changed.iter().cloned().map(Json::String).collect(),
                            ),
                        ),
                        (
                            "removed",
                            Json::Array(
                                report.removed.iter().cloned().map(Json::String).collect(),
                            ),
                        ),
                    ]);
                    json_response(StatusCode::OK, &doc)
                }
            },
        }
    }

    /// `GET /admin/stats`: cache shards, reactors, origin pool, proxy
    /// counters.
    fn stats_json(&self) -> Response {
        let shards: Vec<Json> = self
            .shared
            .cache
            .shard_stats()
            .iter()
            .map(|s| {
                obj([
                    ("len", Json::Number(s.len as f64)),
                    ("evictions", Json::Number(s.evictions as f64)),
                    ("version_bumps", Json::Number(s.version_bumps as f64)),
                ])
            })
            .collect();
        let reactors: Vec<Json> = self
            .metrics
            .reactor_connections()
            .into_iter()
            .zip(self.metrics.reactor_accepted())
            .map(|(open, accepted)| {
                obj([
                    ("connections", Json::Number(open as f64)),
                    ("accepted", Json::Number(accepted as f64)),
                ])
            })
            .collect();
        let c = &self.shared.counters;
        let doc = obj([
            (
                "cache",
                obj([
                    ("objects", Json::Number(self.shared.cache.len() as f64)),
                    ("evictions", Json::Number(self.shared.cache.evictions() as f64)),
                    ("generation", Json::Number(self.shared.cache.generation() as f64)),
                    (
                        "version_bumps",
                        Json::Number(self.shared.cache.version_bumps() as f64),
                    ),
                    // Hit-path touches skipped because the entry was
                    // already most-recent — reads that never queued on
                    // a shard write lock.
                    ("touch_skips", Json::Number(self.shared.cache.touch_skips() as f64)),
                    (
                        "l1",
                        obj([
                            ("capacity", Json::Number(self.l1_objects as f64)),
                            ("hits", Json::Number(self.metrics.l1_hits() as f64)),
                            (
                                "stale_rejects",
                                Json::Number(self.metrics.l1_stale_rejects() as f64),
                            ),
                            (
                                "stale_serves",
                                Json::Number(self.metrics.l1_stale_serves() as f64),
                            ),
                            ("refills", Json::Number(self.metrics.l1_refills() as f64)),
                            ("evictions", Json::Number(self.metrics.l1_evictions() as f64)),
                        ]),
                    ),
                    ("shards", Json::Array(shards)),
                ]),
            ),
            ("reactors", Json::Array(reactors)),
            (
                "origin_pool",
                obj([
                    ("reuses", Json::Number(self.metrics.pool_reuses() as f64)),
                    ("coalesced", Json::Number(self.metrics.pool_coalesced() as f64)),
                    ("opened", Json::Number(self.metrics.pool_opened() as f64)),
                    ("retries", Json::Number(self.metrics.pool_retries() as f64)),
                ]),
            ),
            (
                "wire",
                obj([
                    ("write_calls", Json::Number(self.metrics.write_calls() as f64)),
                    ("writev_calls", Json::Number(self.metrics.writev_calls() as f64)),
                    ("accept_batches", Json::Number(self.metrics.accept_batches() as f64)),
                    ("body_copies", Json::Number(self.metrics.body_copies() as f64)),
                    ("buf_reuses", Json::Number(self.metrics.buf_reuses() as f64)),
                    ("buf_allocs", Json::Number(self.metrics.buf_allocs() as f64)),
                    (
                        "buf_pool_high_water",
                        Json::Number(self.metrics.buf_pool_high_water() as f64),
                    ),
                    (
                        "epoll_ctl_calls",
                        Json::Number(self.metrics.epoll_ctl_calls() as f64),
                    ),
                    (
                        "interest_coalesced",
                        Json::Number(self.metrics.interest_coalesced() as f64),
                    ),
                    (
                        "sqe_submitted",
                        Json::Number(self.metrics.sqe_submitted() as f64),
                    ),
                    (
                        "cqe_completed",
                        Json::Number(self.metrics.cqe_completed() as f64),
                    ),
                    ("l1_hits", Json::Number(self.metrics.l1_hits() as f64)),
                    (
                        "l1_stale_rejects",
                        Json::Number(self.metrics.l1_stale_rejects() as f64),
                    ),
                    (
                        "l1_stale_serves",
                        Json::Number(self.metrics.l1_stale_serves() as f64),
                    ),
                    (
                        "write_stalls",
                        Json::Number(self.metrics.write_stalls() as f64),
                    ),
                    // What each reactor actually runs after any
                    // io_uring → epoll construction fallback.
                    (
                        "backends",
                        Json::Array(
                            self.metrics
                                .reactor_backends()
                                .into_iter()
                                .map(|label| Json::String(label.to_owned()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("overload", self.overload_json()),
            ("refresh", self.refresh_json()),
            (
                "proxy",
                obj([
                    ("polls", Json::Number(c.polls.load(Ordering::SeqCst) as f64)),
                    ("triggered", Json::Number(c.triggered.load(Ordering::SeqCst) as f64)),
                    ("refreshes", Json::Number(c.refreshes.load(Ordering::SeqCst) as f64)),
                    ("hits", Json::Number(c.hits.load(Ordering::SeqCst) as f64)),
                    ("misses", Json::Number(c.misses.load(Ordering::SeqCst) as f64)),
                    ("errors", Json::Number(c.errors.load(Ordering::SeqCst) as f64)),
                    ("reloads", Json::Number(c.reloads.load(Ordering::SeqCst) as f64)),
                    (
                        "reload_errors",
                        Json::Number(c.reload_errors.load(Ordering::SeqCst) as f64),
                    ),
                ]),
            ),
        ]);
        json_response(StatusCode::OK, &doc)
    }

    /// The `refresh` section of `GET /admin/stats`: the refresh plane's
    /// worker count, in-flight polls, totals, trigger coalescing, and
    /// the scheduled-due-vs-actual-send drift histogram's quantiles.
    fn refresh_json(&self) -> Json {
        let m = self.shared.runtime.refresh_metrics();
        let drift = m.drift();
        obj([
            ("workers", Json::Number(m.workers() as f64)),
            ("in_flight", Json::Number(m.in_flight() as f64)),
            ("polls", Json::Number(m.polls() as f64)),
            ("errors", Json::Number(m.errors() as f64)),
            (
                "triggered_coalesced",
                Json::Number(m.triggered_coalesced() as f64),
            ),
            (
                "drift",
                obj([
                    ("count", Json::Number(drift.count as f64)),
                    ("p50_ms", Json::Number(drift.p50_ms)),
                    ("p99_ms", Json::Number(drift.p99_ms)),
                    ("max_ms", Json::Number(drift.max_ms)),
                ]),
            ),
        ])
    }

    /// The `overload` section of `GET /admin/stats`: installed config,
    /// aggregate shed counters, and each reactor's live pool limit,
    /// recent fetch samples and admission partitions.
    fn overload_json(&self) -> Json {
        let snap = self.overload.snapshot(self.metrics.reactor_count());
        let spec = |c: &Option<mutcon_core::limit::LimiterConfig>| {
            c.as_ref().map_or(Json::Null, |c| Json::String(c.to_spec()))
        };
        let reactors: Vec<Json> = snap
            .reactors
            .iter()
            .map(|r| {
                let pool = r.pool.as_ref().map_or(Json::Null, |p| {
                    obj([
                        ("limit", Json::Number(p.limit as f64)),
                        (
                            "algorithm",
                            p.algorithm.clone().map_or(Json::Null, Json::String),
                        ),
                        ("samples_ok", Json::Number(p.samples_ok as f64)),
                        ("samples_overload", Json::Number(p.samples_overload as f64)),
                        (
                            "recent",
                            Json::Array(
                                p.recent
                                    .iter()
                                    .map(|s| {
                                        obj([
                                            ("latency_ms", Json::Number(s.latency_ms as f64)),
                                            ("ok", Json::Bool(s.ok)),
                                            ("limit_after", Json::Number(s.limit_after as f64)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                });
                let partitions = Json::Array(
                    r.partitions
                        .iter()
                        .map(|p| {
                            obj([
                                ("partition", Json::String(p.partition.clone())),
                                ("limit", Json::Number(p.limit as f64)),
                                ("in_flight", Json::Number(p.in_flight as f64)),
                                ("shed", Json::Number(p.shed as f64)),
                            ])
                        })
                        .collect(),
                );
                obj([("pool", pool), ("partitions", partitions)])
            })
            .collect();
        obj([
            ("version", Json::Number(snap.version as f64)),
            ("admission", spec(&snap.config.admission)),
            ("pool", spec(&snap.config.pool)),
            (
                "retry_after_secs",
                Json::Number(f64::from(snap.config.retry_after_secs)),
            ),
            (
                "shed_delay_ms",
                Json::Number(snap.config.shed_delay.as_millis() as f64),
            ),
            (
                "park_deadline_ms",
                Json::Number(snap.config.park_deadline.as_millis() as f64),
            ),
            (
                "admission_initial",
                Json::Number(snap.config.admission_initial as f64),
            ),
            ("shed", Json::Number(snap.shed as f64)),
            ("shed_delayed", Json::Number(snap.shed_delayed as f64)),
            ("parked_shed", Json::Number(snap.parked_shed as f64)),
            ("reactors", Json::Array(reactors)),
        ])
    }
}

/// Parses a `PUT /admin/rules` body:
///
/// ```json
/// {"rules": [{"path": "/obj", "delta_ms": 50, "ttr_max_ms": 3200}],
///  "group": {"delta_ms": 100, "policy": "triggered"}}
/// ```
///
/// `ttr_max_ms` defaults to 64·Δ (as [`RefreshRule::new`] does); `group`
/// may be absent or `null`; the policy string is the canonical
/// [`MtPolicy`] wire form (`baseline`, `triggered`, `rate:T`).
fn parse_rules_body(body: &[u8]) -> Result<(Vec<RefreshRule>, Option<GroupRule>), String> {
    // A typo'd key must not silently fall back to a default (the same
    // stance `LimdConfig::from_spec` takes).
    fn known_keys_only(value: &Json, allowed: &[&str], what: &str) -> Result<(), String> {
        let Json::Object(map) = value else {
            return Err(format!("{what} must be a JSON object"));
        };
        for key in map.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("{what}: unknown key `{key}`"));
            }
        }
        Ok(())
    }

    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let doc = mutcon_traces::json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    known_keys_only(&doc, &["rules", "group"], "rules document")?;
    let rules_json = doc
        .get("rules")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing `rules` array".to_owned())?;
    let mut rules = Vec::with_capacity(rules_json.len());
    for (i, r) in rules_json.iter().enumerate() {
        known_keys_only(r, &["path", "delta_ms", "ttr_max_ms"], &format!("rule #{i}"))?;
        let path = r
            .get("path")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("rule #{i}: missing `path` string"))?;
        let delta_ms = r
            .get("delta_ms")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("rule for {path}: `delta_ms` must be a non-negative integer"))?;
        let mut rule = RefreshRule::new(path, Duration::from_millis(delta_ms));
        if let Some(ttr) = r.get("ttr_max_ms") {
            let ttr_max = ttr
                .as_u64()
                .ok_or_else(|| format!("rule for {path}: `ttr_max_ms` must be a non-negative integer"))?;
            rule = rule.ttr_max(Duration::from_millis(ttr_max));
        }
        rules.push(rule);
    }
    let group = match doc.get("group") {
        None => None,
        Some(g) if g.is_null() => None,
        Some(g) => {
            known_keys_only(g, &["delta_ms", "policy"], "group")?;
            let delta_ms = g
                .get("delta_ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| "group: `delta_ms` must be a non-negative integer".to_owned())?;
            let policy = g
                .get("policy")
                .and_then(Json::as_str)
                .unwrap_or("triggered")
                .parse::<MtPolicy>()
                .map_err(|e| format!("group: {e}"))?;
            Some(GroupRule {
                delta: Duration::from_millis(delta_ms),
                policy,
            })
        }
    };
    Ok((rules, group))
}

/// The cache-and-counter side effects of an adopted rules install,
/// shared by the `PUT /admin/rules` handler and the `SIGHUP` file
/// reload.
///
/// Paths whose rule is gone lose their cached copy: nothing refreshes
/// them anymore, and the refresher's epoch gate keeps an in-flight poll
/// from putting one back. (The refresher also evicts on adoption — see
/// the `on_removed` hook — but that lags by up to one scheduler wake;
/// evicting here too makes the install's effect immediate. A later
/// client miss may re-cache the path like any unruled object: a fresh
/// copy at fetch time, just never refreshed thereafter.) The
/// generation bump bulk-invalidates every reactor's L1: the rule swap
/// may change what a path's bytes *mean* (Δ, group membership), so
/// reactor-local copies are cleared wholesale on their next lookup
/// rather than trusting per-path stamps alone.
fn apply_install_effects(shared: &Shared, report: &InstallReport) {
    for path in &report.removed {
        shared.cache.remove(path);
    }
    shared.cache.bump_generation();
    shared.counters.reloads.fetch_add(1, Ordering::SeqCst);
}

/// One `SIGHUP`-triggered re-read of the configured rules file: read →
/// parse → validate → install → the same effects as an admin `PUT`. Any
/// failure (unreadable file, bad JSON, invalid rules) bumps
/// `reload_errors` and leaves the running epoch untouched.
fn reload_rules_file(shared: &Shared, path: &Path) {
    let outcome = std::fs::read(path)
        .map_err(|e| e.to_string())
        .and_then(|body| parse_rules_body(&body))
        .and_then(|(rules, group)| shared.runtime.install(rules, group));
    match outcome {
        Ok(report) => apply_install_effects(shared, &report),
        Err(_) => {
            shared.counters.reload_errors.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Stores a 200 response in the cache; returns the entry now resident —
/// the stored one, or a strictly fresher copy that a concurrent refresh
/// raced in first (a slow fetch must never roll the cache backwards).
/// `None` when the response carries no modification stamp and is
/// uncacheable.
fn store_response(shared: &Shared, path: &str, response: &Response) -> Option<Arc<CacheEntry>> {
    let lm = last_modified_ms(response)?;
    // Pre-rendering the serving head happens here, at store time, on
    // the fetching/refreshing thread — never while a hit is served.
    let entry = CacheEntry::new(
        response.body().clone(),
        lm,
        object_value(response),
        response
            .headers()
            .get(HeaderName::X_OBJECT_VERSION)
            .map(str::to_owned),
    );
    let resident = shared.cache.insert_if_newer(path, entry);
    if resident.last_modified() == lm {
        shared.counters.refreshes.fetch_add(1, Ordering::SeqCst);
    }
    Some(resident)
}

/// One refresher poll over the persistent keep-alive connection.
/// Returns the poll result for the adaptation layers, or `None` on a
/// network error. The cache store is gated on the path still being ruled
/// in the **current** epoch: a rule removed while the poll was on the
/// wire means the response is discarded (and any raced-in entry
/// re-evicted), so a dead rule cannot resurrect its cache entry.
fn poll_origin(shared: &Shared, client: &mut PersistentClient, path: &str) -> Option<PollResult> {
    let validator = shared.cache.get(path).map(|e| e.last_modified());
    shared.counters.polls.fetch_add(1, Ordering::SeqCst);
    match client.get(path, validator) {
        Ok(response) if response.status() == StatusCode::NOT_MODIFIED => {
            Some(PollResult::NotModified)
        }
        Ok(response) if response.status() == StatusCode::OK => {
            // The LIMD layer observes what *this poll* saw, not what
            // ended up resident (a concurrent fetch may be fresher).
            let lm = last_modified_ms(&response)?;
            if !shared.runtime.contains(path) {
                shared.cache.remove(path);
                return None;
            }
            store_response(shared, path, &response)?;
            // Re-check after the store: an epoch swap that removed the
            // path *between* the gate and the insert is unwound here
            // (the admin handler's own evict covers the other order).
            if !shared.runtime.contains(path) {
                shared.cache.remove(path);
                return None;
            }
            let history = mutcon_http::extensions::modification_history(response.headers());
            Some(PollResult::Modified {
                last_modified: lm,
                history,
            })
        }
        Ok(_) | Err(_) => {
            shared.counters.errors.fetch_add(1, Ordering::SeqCst);
            None
        }
    }
}

/// The zero-copy serving form of a cache entry: the head pre-rendered
/// at store time, a static `x-cache` marker line, and the shared body
/// slice — two refcount bumps, no serialization.
fn prepared(entry: &CacheEntry, hit: bool) -> PreparedResponse {
    PreparedResponse {
        head: entry.head().clone(),
        extra: if hit {
            b"x-cache: hit\r\n"
        } else {
            b"x-cache: miss\r\n"
        },
        body: entry.body().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rules_body_accepts_the_documented_shape() {
        let (rules, group) = parse_rules_body(
            br#"{"rules": [{"path": "/a", "delta_ms": 50},
                           {"path": "/b", "delta_ms": 20, "ttr_max_ms": 400}],
                 "group": {"delta_ms": 100, "policy": "rate:0.5"}}"#,
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].path, "/a");
        assert_eq!(rules[0].delta, Duration::from_millis(50));
        assert_eq!(rules[0].ttr_max, Duration::from_millis(50) * 64);
        assert_eq!(rules[1].ttr_max, Duration::from_millis(400));
        let group = group.unwrap();
        assert_eq!(group.delta, Duration::from_millis(100));
        assert_eq!(group.policy, MtPolicy::RateHeuristic { threshold: 0.5 });
    }

    #[test]
    fn parse_rules_body_defaults_and_null_group() {
        let (rules, group) =
            parse_rules_body(br#"{"rules": [], "group": null}"#).unwrap();
        assert!(rules.is_empty());
        assert!(group.is_none());
        // Group absent entirely is also fine; policy defaults to triggered.
        let (_, group) = parse_rules_body(
            br#"{"rules": [], "group": {"delta_ms": 10}}"#,
        )
        .unwrap();
        assert_eq!(group.unwrap().policy, MtPolicy::TriggeredPolls);
    }

    #[test]
    fn parse_rules_body_rejects_malformed_input_with_reasons() {
        for (body, needle) in [
            (&b"not json"[..], "invalid JSON"),
            (br#"{}"#, "missing `rules`"),
            (br#"{"no_rules": 1}"#, "unknown key `no_rules`"),
            (br#"{"rules": [{"delta_ms": 5}]}"#, "missing `path`"),
            (br#"{"rules": [{"path": "/a"}]}"#, "delta_ms"),
            (br#"{"rules": [{"path": "/a", "delta_ms": -3}]}"#, "delta_ms"),
            (
                br#"{"rules": [{"path": "/a", "delta_ms": 5, "ttr_max_ms": 1.5}]}"#,
                "ttr_max_ms",
            ),
            (br#"{"rules": [], "group": {}}"#, "group"),
            // Typo'd keys must be rejected, not defaulted over.
            (
                br#"{"rules": [{"path": "/a", "delta_ms": 5, "ttr_maxms": 9}]}"#,
                "unknown key `ttr_maxms`",
            ),
            (br#"{"rules": [], "grupo": 1}"#, "unknown key `grupo`"),
            (
                br#"{"rules": [], "group": {"delta_ms": 5, "policy": "triggered", "extra": 1}}"#,
                "unknown key `extra`",
            ),
            (
                br#"{"rules": [], "group": {"delta_ms": 5, "policy": "nope"}}"#,
                "group",
            ),
            (&[0xff, 0xfe][..], "UTF-8"),
        ] {
            let err = parse_rules_body(body).unwrap_err();
            assert!(err.contains(needle), "{err:?} lacks {needle:?}");
        }
    }
}
