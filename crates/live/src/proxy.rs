//! The live caching proxy daemon.
//!
//! Serves client `GET`s from its cache while a background *refresher*
//! thread keeps configured objects Δt-consistent with the origin by
//! LIMD-scheduled `If-Modified-Since` polls — and, when a group rule is
//! set, Mt-consistent with one another via triggered polls, exactly as in
//! the simulator. One binary-ready struct, ephemeral ports, clean
//! shutdown on drop: the "implement it in a real proxy" future work of
//! §7, in miniature.
//!
//! Connections are served by the shared readiness-driven engine
//! ([`crate::server`]): one reactor per core (`MUTCON_LIVE_REACTORS`,
//! or [`ProxyConfig::reactors`]), each with its own `SO_REUSEPORT`
//! listener shard and its own keep-alive origin pool — cache misses
//! ride pooled persistent connections, and identical concurrent misses
//! coalesce into a single origin fetch. There is no thread pool and no
//! thread per connection. The cache is the 16-way sharded
//! [`crate::cache::ShardedCache`], shared by every reactor, so the
//! refresher's write locks stall only 1/16th of concurrent hits instead
//! of all of them. Concurrency is bounded by `MUTCON_LIVE_CONNS` (see
//! [`crate::server::max_conns`]).

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant, SystemTime, UNIX_EPOCH};

use mutcon_core::limd::{Limd, LimdConfig, PollResult};
use mutcon_core::mutual::temporal::{MtCoordinator, MtPolicy};
use mutcon_core::object::ObjectId;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_http::headers::HeaderName;
use mutcon_http::message::{Request, Response};
use mutcon_http::types::{Method, StatusCode};

use crate::cache::{CacheEntry, ShardedCache};
use crate::client::{last_modified_ms, object_value, PersistentClient, X_LAST_MODIFIED_MS};
use crate::server::{EventLoop, Service, ServiceResult};

/// Consistency requirements for one cached object.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshRule {
    /// Object path at the origin (and at this proxy).
    pub path: String,
    /// The Δt tolerance.
    pub delta: Duration,
    /// Upper TTR bound (defaults to 64·Δ).
    pub ttr_max: Duration,
}

impl RefreshRule {
    /// A rule with the default TTR ceiling.
    pub fn new(path: impl Into<String>, delta: Duration) -> Self {
        RefreshRule {
            path: path.into(),
            delta,
            ttr_max: delta * 64,
        }
    }

    /// Overrides the TTR ceiling.
    pub fn ttr_max(mut self, ttr_max: Duration) -> Self {
        self.ttr_max = ttr_max;
        self
    }
}

/// Mutual-consistency requirements across all rule paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupRule {
    /// The Mt tolerance δ.
    pub delta: Duration,
    /// Triggered polls or the rate heuristic.
    pub policy: MtPolicy,
}

/// Proxy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyConfig {
    /// Where the origin listens.
    pub origin_addr: SocketAddr,
    /// Objects to keep fresh.
    pub rules: Vec<RefreshRule>,
    /// Optional Mt coordination across all rule paths.
    pub group: Option<GroupRule>,
    /// Cache bound in objects (`None` = unbounded, the paper's model);
    /// enforced per shard with LRU eviction.
    pub cache_objects: Option<usize>,
    /// Reactor threads for the connection engine (`None` = the
    /// `MUTCON_LIVE_REACTORS` / one-per-core default, see
    /// [`crate::server::num_reactors`]).
    pub reactors: Option<usize>,
}

impl ProxyConfig {
    /// A configuration with no rules, no group, an unbounded cache and
    /// the default reactor count.
    pub fn new(origin_addr: SocketAddr) -> ProxyConfig {
        ProxyConfig {
            origin_addr,
            rules: Vec::new(),
            group: None,
            cache_objects: None,
            reactors: None,
        }
    }
}

/// A snapshot of the proxy's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProxyStats {
    /// Refresher polls sent to the origin.
    pub polls: u64,
    /// Polls initiated by the mutual-consistency coordinator.
    pub triggered: u64,
    /// Polls that brought back a fresh copy.
    pub refreshes: u64,
    /// Client requests served from cache.
    pub hits: u64,
    /// Client requests that had to fetch from the origin.
    pub misses: u64,
    /// Failed origin polls (timeouts, resets).
    pub errors: u64,
}

#[derive(Debug, Default)]
struct Counters {
    polls: AtomicU64,
    triggered: AtomicU64,
    refreshes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
}

struct Shared {
    origin: SocketAddr,
    cache: ShardedCache,
    counters: Counters,
}

/// The running proxy; shuts down (and joins its threads) on drop.
pub struct LiveProxy {
    server: EventLoop,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    refresher: Option<JoinHandle<()>>,
}

impl LiveProxy {
    /// Binds a localhost listener on an ephemeral port and starts the
    /// reactor and the background refresher.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; returns [`io::ErrorKind::InvalidInput`]
    /// for invalid rules (zero Δ).
    pub fn start(config: ProxyConfig) -> io::Result<LiveProxy> {
        for rule in &config.rules {
            if rule.delta.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("rule for {} has zero delta", rule.path),
                ));
            }
        }
        let shared = Arc::new(Shared {
            origin: config.origin_addr,
            cache: ShardedCache::new(config.cache_objects),
            counters: Counters::default(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));

        let server = EventLoop::with_options(
            "mutcon-live-proxy-reactor",
            Arc::new(ProxyService {
                shared: Arc::clone(&shared),
            }),
            crate::server::max_conns(),
            config.reactors.unwrap_or_else(crate::server::num_reactors),
        )?;

        let refresher = if config.rules.is_empty() {
            None
        } else {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            let rules = config.rules.clone();
            let group = config.group;
            Some(
                std::thread::Builder::new()
                    .name("mutcon-live-proxy-refresher".into())
                    .spawn(move || refresher(&shared, &shutdown, &rules, group))?,
            )
        };

        Ok(LiveProxy {
            server,
            shared,
            shutdown,
            refresher,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> ProxyStats {
        let c = &self.shared.counters;
        ProxyStats {
            polls: c.polls.load(Ordering::SeqCst),
            triggered: c.triggered.load(Ordering::SeqCst),
            refreshes: c.refreshes.load(Ordering::SeqCst),
            hits: c.hits.load(Ordering::SeqCst),
            misses: c.misses.load(Ordering::SeqCst),
            errors: c.errors.load(Ordering::SeqCst),
        }
    }

    /// Number of objects currently cached (across all shards).
    pub fn cached_objects(&self) -> usize {
        self.shared.cache.len()
    }

    /// How many reactor threads serve this proxy.
    pub fn reactor_count(&self) -> usize {
        self.server.reactor_count()
    }
}

impl Drop for LiveProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.refresher.take() {
            let _ = handle.join();
        }
        // The EventLoop field's own Drop wakes and joins the reactor.
    }
}

impl std::fmt::Debug for LiveProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveProxy")
            .field("addr", &self.local_addr())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The request handler running on the reactor thread.
struct ProxyService {
    shared: Arc<Shared>,
}

impl Service for ProxyService {
    fn respond(&self, request: &Request) -> ServiceResult {
        if request.method() != &Method::Get {
            return ServiceResult::Respond(
                Response::builder(StatusCode::METHOD_NOT_ALLOWED).build(),
            );
        }
        let path = request.target();
        if path == "/__stats" {
            let c = &self.shared.counters;
            let body = format!(
                "polls={}\ntriggered={}\nrefreshes={}\nhits={}\nmisses={}\nerrors={}\n",
                c.polls.load(Ordering::SeqCst),
                c.triggered.load(Ordering::SeqCst),
                c.refreshes.load(Ordering::SeqCst),
                c.hits.load(Ordering::SeqCst),
                c.misses.load(Ordering::SeqCst),
                c.errors.load(Ordering::SeqCst),
            );
            return ServiceResult::Respond(Response::ok().body(body.into_bytes()).build());
        }

        // Cache hit?
        if let Some(entry) = self.shared.cache.get(path) {
            self.shared.counters.hits.fetch_add(1, Ordering::SeqCst);
            return ServiceResult::Respond(entry_response(&entry, true));
        }

        // Miss: fetch from the origin through the reactor (its own
        // nonblocking state machine), cache, serve.
        self.shared.counters.misses.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&self.shared);
        let path = path.to_owned();
        ServiceResult::Upstream {
            addr: self.shared.origin,
            // `Connection: keep-alive` advertised explicitly: the fetch
            // rides a pooled persistent origin connection, and identical
            // request bytes are the pool's coalescing key.
            request: Request::get(&path)
                .host(self.shared.origin.to_string())
                .keep_alive()
                .build(),
            finish: Box::new(move |result| match result {
                Ok(mut response) => {
                    // `Connection` is hop-by-hop (RFC 7230 §6.1): the
                    // origin's choice governs the pooled origin socket,
                    // not the client connection — strip it before
                    // forwarding (the engine re-adds `close` when the
                    // *client* asked for it).
                    response.headers_mut().remove(HeaderName::CONNECTION);
                    if response.status() == StatusCode::OK {
                        match store_response(&shared, &path, &response) {
                            Some(entry) => entry_response(&entry, false),
                            // Origin 200 without a modification stamp:
                            // pass through uncached.
                            None => response,
                        }
                    } else {
                        response // 404 etc. pass through
                    }
                }
                Err(_) => Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
                    .body(&b"origin unreachable\n"[..])
                    .build(),
            }),
        }
    }
}

fn unix_now() -> Timestamp {
    Timestamp::from_millis(
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock before the Unix epoch")
            .as_millis() as u64,
    )
}

fn std_duration(d: Duration) -> StdDuration {
    StdDuration::from_millis(d.as_millis())
}

/// Stores a 200 response in the cache; returns the entry now resident —
/// the stored one, or a strictly fresher copy that a concurrent refresh
/// raced in first (a slow fetch must never roll the cache backwards).
/// `None` when the response carries no modification stamp and is
/// uncacheable.
fn store_response(shared: &Shared, path: &str, response: &Response) -> Option<CacheEntry> {
    let lm = last_modified_ms(response)?;
    let entry = CacheEntry {
        body: response.body().clone(),
        last_modified: lm,
        value: object_value(response),
        version: response
            .headers()
            .get(HeaderName::X_OBJECT_VERSION)
            .map(str::to_owned),
    };
    let resident = shared.cache.insert_if_newer(path, entry);
    if resident.last_modified == lm {
        shared.counters.refreshes.fetch_add(1, Ordering::SeqCst);
    }
    Some(resident)
}

/// One refresher poll over the persistent keep-alive connection.
/// Returns the poll result for the adaptation layers, or `None` on a
/// network error.
fn poll_origin(shared: &Shared, client: &mut PersistentClient, path: &str) -> Option<PollResult> {
    let validator = shared.cache.get(path).map(|e| e.last_modified);
    shared.counters.polls.fetch_add(1, Ordering::SeqCst);
    match client.get(path, validator) {
        Ok(response) if response.status() == StatusCode::NOT_MODIFIED => {
            Some(PollResult::NotModified)
        }
        Ok(response) if response.status() == StatusCode::OK => {
            // The LIMD layer observes what *this poll* saw, not what
            // ended up resident (a concurrent fetch may be fresher).
            let lm = last_modified_ms(&response)?;
            store_response(shared, path, &response)?;
            let history = mutcon_http::extensions::modification_history(response.headers());
            Some(PollResult::Modified {
                last_modified: lm,
                history,
            })
        }
        Ok(_) | Err(_) => {
            shared.counters.errors.fetch_add(1, Ordering::SeqCst);
            None
        }
    }
}

fn refresher(
    shared: &Shared,
    shutdown: &AtomicBool,
    rules: &[RefreshRule],
    group: Option<GroupRule>,
) {
    // One persistent keep-alive connection carries every poll; a stale
    // socket (the origin closed it between polls) reconnects
    // transparently inside the client.
    let mut client = PersistentClient::new(shared.origin, StdDuration::from_secs(2));
    let mut limds: HashMap<String, Limd> = rules
        .iter()
        .map(|r| {
            let config = LimdConfig::builder(r.delta)
                .ttr_max(r.ttr_max.max(r.delta))
                .build()
                .expect("rule validated at startup");
            (r.path.clone(), Limd::new(config))
        })
        .collect();
    let mut due: HashMap<String, Instant> = rules
        .iter()
        .map(|r| (r.path.clone(), Instant::now()))
        .collect();
    let mut coordinator = group.map(|g| {
        MtCoordinator::new(
            g.delta,
            g.policy,
            rules.iter().map(|r| ObjectId::new(&r.path)),
        )
    });

    while !shutdown.load(Ordering::SeqCst) {
        let Some((path, at)) = due
            .iter()
            .min_by_key(|(_, at)| **at)
            .map(|(p, at)| (p.clone(), *at))
        else {
            return;
        };
        let now = Instant::now();
        if at > now {
            // Sleep in short slices so shutdown stays responsive.
            std::thread::sleep((at - now).min(StdDuration::from_millis(20)));
            continue;
        }

        let now_ts = unix_now();
        match poll_origin(shared, &mut client, &path) {
            Some(result) => {
                let limd = limds.get_mut(&path).expect("rule path");
                let decision = limd.on_poll(now_ts, &result);
                due.insert(path.clone(), Instant::now() + std_duration(decision.ttr));
                if let Some(coord) = coordinator.as_mut() {
                    let id = ObjectId::new(&path);
                    let triggers = coord.on_poll(&id, now_ts, &result);
                    coord.record_scheduled_poll(&id, now_ts + decision.ttr);
                    for target in triggers {
                        shared.counters.triggered.fetch_add(1, Ordering::SeqCst);
                        // Triggered polls are additional: refresh the
                        // cache and tell the coordinator, but leave the
                        // target's LIMD schedule alone.
                        if let Some(result) = poll_origin(shared, &mut client, target.as_str()) {
                            coord.on_poll(&target, unix_now(), &result);
                        }
                    }
                }
            }
            None => {
                // Back off briefly on errors; the rule's Δ governs how
                // aggressive a retry is sensible.
                let retry = std_duration(
                    limds[&path].config().delta().min(Duration::from_millis(200)),
                );
                due.insert(path.clone(), Instant::now() + retry.max(StdDuration::from_millis(20)));
            }
        }
    }
}

fn entry_response(entry: &CacheEntry, hit: bool) -> Response {
    let mut builder = Response::ok()
        .last_modified(entry.last_modified)
        .header(X_LAST_MODIFIED_MS, entry.last_modified.as_millis().to_string())
        .header("x-cache", if hit { "hit" } else { "miss" });
    if let Some(v) = entry.value {
        builder = builder.header(HeaderName::X_OBJECT_VALUE, v.to_string());
    }
    if let Some(version) = &entry.version {
        builder = builder.header(HeaderName::X_OBJECT_VERSION, version.clone());
    }
    builder.body(entry.body.clone()).build()
}
