//! The readiness-driven connection engine shared by the live origin and
//! the live proxy.
//!
//! The engine runs **one reactor per core** (bounded by
//! [`MUTCON_LIVE_REACTORS`](REACTORS_ENV)): each reactor thread owns its
//! own pluggable [`Backend`] (coalesced-interest epoll or raw io_uring,
//! selected by `MUTCON_LIVE_BACKEND` — see
//! [`mutcon_sim::reactor::backend`]), its own eventfd waker, its own
//! connection slab, its own keep-alive origin pool — and its own
//! `SO_REUSEPORT` listener on the shared port, so the kernel
//! load-balances incoming connections across reactors with no shared
//! accept lock. Within a reactor every connection is a state machine
//! driven through the backend seam — no thread per connection, no worker
//! pool:
//!
//! ```text
//!             ┌──────────────────────────────────────────────┐
//!             ▼                                              │ keep-alive /
//! accept ─▶ READING ──request parsed──▶ dispatch             │ pipelined next
//!             │                        │       │             │ request
//!             │ EOF / parse error      │       │ Upstream    │
//!             ▼                        ▼       ▼             │
//!           closed                 WRITING ◀─ AWAITING ──────┤
//!             ▲                        │      ORIGIN         │
//!             │                        │   (pooled keep-     │
//!             └────────peer gone───────┘    alive socket) ───┘
//! ```
//!
//! *READING* feeds partial reads to the resumable
//! [`mutcon_http::parse::RequestParser`]; a parsed request is handed to
//! the [`Service`], which answers immediately (*WRITING*), after a delay
//! (fault injection), or by fetching from an upstream origin. Upstream
//! fetches go through the reactor's **keep-alive origin pool**
//! ([`crate::upstream`]): identical concurrent misses coalesce onto one
//! fetch (N waiters, one origin round trip), finished connections park
//! for reuse instead of closing, idle pooled sockets are reaped, and a
//! pooled socket the origin silently closed is detected and the fetch
//! retried once on a fresh connection. `Connection: close` is honored in
//! both directions ([`mutcon_http::connection`]).
//!
//! *WRITING* goes through the zero-copy send path ([`crate::vectored`]):
//! each response is a reusable contiguous buffer (head + small inlined
//! bodies) plus an optional shared body slice, gathered into one
//! `writev(2)`. Cache hits arrive pre-serialized
//! ([`ServiceResult::RespondPrepared`]) and never copy body bytes.
//! Connection buffers are recycled through a per-reactor pool, and the
//! accept loop drains the whole backlog per listener wakeup with
//! `accept4` (already-nonblocking sockets, one metrics store per
//! batch). [`EngineMetrics`] counts the syscalls and copies so the
//! effect is observable from `/admin/stats`.
//!
//! Concurrent-connection capacity is bounded by [`max_conns`]
//! (`MUTCON_LIVE_CONNS`, default [`DEFAULT_MAX_CONNS`]), split evenly
//! across reactors: a reactor at its share drops its listener's
//! readiness interest, parking further clients in the kernel backlog
//! until a slot frees. On shutdown every reactor is woken and drains:
//! it stops accepting, finishes flushing in-flight responses (bounded
//! by a short grace period), then closes everything and joins.

use std::collections::HashMap;
use std::io;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Once};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use mutcon_core::limit::{Limiter, Outcome as LimitOutcome, Sample as LimitSample};
use mutcon_core::time::Duration as CoreDuration;
use mutcon_http::message::{Request, Response};
use mutcon_http::parse::{RequestParser, ResponseParser};
use mutcon_http::types::StatusCode;
use mutcon_sim::reactor::backend::{self, Backend, BackendCounters, BackendKind};
use mutcon_sim::reactor::{
    connect_nonblocking, listen_reuseport, raise_nofile_limit, Event, Interest, Waker,
};

use crate::cache::{L1Cache, L1Lookup, VersionedEntry};
use crate::overload::{
    partition_of, OverloadConfig, OverloadControl, PartitionSnap, ReactorOverloadSnap,
};
use crate::upstream::{AfterLeave, Job, JobId, PoolCore, Submit, MAX_CONNS_PER_ORIGIN};
use crate::vectored::{
    BufPool, FlushOutcome, FlushStats, WritePlan, WriteSink, INLINE_BODY, MAX_RETAINED_CAP,
};

/// Environment variable bounding concurrent connections per event loop
/// (the bound is split evenly across its reactors).
pub const CONNS_ENV: &str = "MUTCON_LIVE_CONNS";

/// Default concurrent-connection bound. Sized for "hundreds of sockets
/// through one process" with headroom; raise `MUTCON_LIVE_CONNS` for
/// load tests beyond it.
pub const DEFAULT_MAX_CONNS: usize = 1024;

/// Environment variable choosing how many reactor threads an event loop
/// runs (default: one per core, capped at [`MAX_REACTORS`]).
pub const REACTORS_ENV: &str = "MUTCON_LIVE_REACTORS";

/// Environment variable sizing the per-reactor L1 hot-object cache in
/// objects (`0` disables it). Services that opt into an L1 (the live
/// proxy) read it through [`l1_objects`]; an explicit configuration
/// value wins over the environment.
pub const L1_ENV: &str = "MUTCON_LIVE_L1";

/// Default per-reactor L1 capacity in objects: big enough to hold the
/// hot head of a Zipf(≈1.0) catalog, small enough that N reactors'
/// copies stay a footnote next to the shared cache.
pub const DEFAULT_L1_OBJECTS: usize = 128;

/// Ceiling on the reactor-count default (and on oversized overrides) —
/// beyond this the listeners outnumber any plausible load.
pub const MAX_REACTORS: usize = 64;

/// Close client connections with no traffic for this long.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);
/// Fail upstream fetches that make no progress for this long (matches
/// the old blocking client's per-operation timeout ballpark).
const UPSTREAM_TIMEOUT: Duration = Duration::from_secs(5);
/// Reap pooled origin connections idle longer than this.
const POOL_IDLE_TIMEOUT: Duration = Duration::from_secs(10);
/// Stop draining a client socket while this much input is already
/// buffered ahead of the state machine (pipelining back-pressure).
const MAX_BUFFERED: usize = 256 * 1024;
/// Poll-loop tick when nothing else bounds the wait (idle sweeping,
/// shutdown responsiveness).
const TICK: Duration = Duration::from_millis(200);
/// How long a shutting-down reactor keeps serving to flush in-flight
/// responses before closing everything.
const DRAIN_GRACE: Duration = Duration::from_millis(250);
/// Ceiling when raising `RLIMIT_NOFILE` at startup: enough fd headroom
/// for 10k-connection wire runs without demanding the hard limit.
const NOFILE_CAP: u64 = 65536;

/// Most parked backlog connections drained with a `503` per deadline
/// pass (bounds the time the reactor spends off its event loop).
const PARK_SHED_BATCH: usize = 64;

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKER: usize = 1;
const TOKEN_BASE: usize = 2;

/// Splits `max_conns` connection slots exactly across `reactors` shards:
/// the first `max_conns % reactors` shards take one extra slot, so the
/// shares always sum to `max_conns` and never differ by more than one.
/// Callers must pass `1 <= reactors <= max_conns` (the constructor
/// clamps); the audit tests below pin the exactness over non-divisible
/// combinations.
fn split_conns(max_conns: usize, reactors: usize) -> Vec<usize> {
    debug_assert!(reactors >= 1 && reactors <= max_conns);
    (0..reactors)
        .map(|i| max_conns / reactors + usize::from(i < max_conns % reactors))
        .collect()
}

/// Parses a `MUTCON_LIVE_CONNS`-style override.
fn conns_from(raw: Option<&str>) -> usize {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_MAX_CONNS)
}

/// The concurrent-connection bound: `MUTCON_LIVE_CONNS` if set to a
/// positive integer, otherwise [`DEFAULT_MAX_CONNS`].
pub fn max_conns() -> usize {
    conns_from(std::env::var(CONNS_ENV).ok().as_deref())
}

/// Parses a `MUTCON_LIVE_REACTORS`-style override.
fn reactors_from(raw: Option<&str>) -> usize {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(default_reactors)
        .min(MAX_REACTORS)
}

/// One reactor per available core, capped at [`MAX_REACTORS`].
pub fn default_reactors() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_REACTORS)
}

/// The reactor count: `MUTCON_LIVE_REACTORS` if set to a positive
/// integer, otherwise [`default_reactors`].
pub fn num_reactors() -> usize {
    reactors_from(std::env::var(REACTORS_ENV).ok().as_deref())
}

/// Parses a `MUTCON_LIVE_L1`-style override. Unlike the other knobs,
/// an explicit `0` is honored: it means "no L1".
fn l1_objects_from(raw: Option<&str>) -> usize {
    match raw.map(str::trim).and_then(|v| v.parse::<usize>().ok()) {
        Some(n) => n,
        None => DEFAULT_L1_OBJECTS,
    }
}

/// The per-reactor L1 capacity: `MUTCON_LIVE_L1` if set to an integer
/// (`0` disables), otherwise [`DEFAULT_L1_OBJECTS`].
pub fn l1_objects() -> usize {
    l1_objects_from(std::env::var(L1_ENV).ok().as_deref())
}

/// Environment variable sizing the refresh plane's poll-worker pool
/// (the threads issuing origin polls concurrently; see
/// [`crate::runtime::ConsistencyRuntime::run`]). An explicit
/// [`crate::proxy::ProxyConfig::refresh_workers`] wins over it.
pub const REFRESH_WORKERS_ENV: &str = "MUTCON_LIVE_REFRESH_WORKERS";

/// Default refresh poll-worker count: enough overlap to hide origin
/// latency on mid-sized catalogs without hoarding origin sockets.
pub const DEFAULT_REFRESH_WORKERS: usize = 4;

/// Parses a `MUTCON_LIVE_REFRESH_WORKERS`-style override.
fn refresh_workers_from(raw: Option<&str>) -> usize {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_REFRESH_WORKERS)
}

/// The refresh poll-worker count: `MUTCON_LIVE_REFRESH_WORKERS` if set
/// to a positive integer, otherwise [`DEFAULT_REFRESH_WORKERS`].
pub fn refresh_workers() -> usize {
    refresh_workers_from(std::env::var(REFRESH_WORKERS_ENV).ok().as_deref())
}

/// Environment variable carrying the bearer token that gates the
/// `/admin/*` plane. Unset (or empty) leaves the admin plane open, the
/// pre-auth behaviour. An explicit
/// [`crate::proxy::ProxyConfig::admin_token`] wins over it.
pub const ADMIN_TOKEN_ENV: &str = "MUTCON_ADMIN_TOKEN";

/// Normalizes a raw `MUTCON_ADMIN_TOKEN` value: empty means "no auth".
fn admin_token_from(raw: Option<&str>) -> Option<String> {
    raw.map(str::trim)
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
}

/// The admin bearer token from the environment, if one is configured.
pub fn admin_token() -> Option<String> {
    admin_token_from(std::env::var(ADMIN_TOKEN_ENV).ok().as_deref())
}

/// Completion callback for an upstream fetch: receives the origin's
/// response (or the I/O error) and produces the reply for the waiting
/// client — either a full [`Response`] or a pre-serialized
/// [`PreparedResponse`] sharing a cached body.
pub type FinishUpstream = Box<dyn FnOnce(io::Result<Response>) -> Reply + Send>;

/// A response pre-serialized at store time, served without touching the
/// body bytes: the head is copied into the connection's write buffer
/// (~150 bytes), the body rides as a shared [`Bytes`] slice gathered by
/// `writev`. This is the zero-copy cache-hit path.
#[derive(Debug, Clone)]
pub struct PreparedResponse {
    /// Status line + headers, ending after the last header's CRLF (no
    /// terminating blank line) so per-response headers can still append.
    pub head: Bytes,
    /// Per-response header lines (e.g. `x-cache: hit\r\n`), appended
    /// after `head`. The engine adds `connection: close\r\n` and the
    /// blank line itself.
    pub extra: &'static [u8],
    /// The shared body slice — cloned by refcount bump, never copied.
    pub body: Bytes,
}

/// What an upstream completion hands back to the engine.
#[derive(Debug)]
pub enum Reply {
    /// A response to serialize per-connection.
    Full(Response),
    /// A pre-serialized response sharing its body allocation.
    Prepared(PreparedResponse),
}

/// What a [`Service`] wants done with a parsed request.
pub enum ServiceResult {
    /// Write this response now.
    Respond(Response),
    /// Write this pre-serialized response now, sharing its body bytes
    /// (the cache-hit fast path: no serialization, no body copy).
    RespondPrepared(PreparedResponse),
    /// Write this pre-serialized response now *and* refill the reactor's
    /// L1 with the versioned copy it was built from — the shared-cache
    /// hit path when a reactor-local L1 is configured
    /// ([`Service::l1_capacity`]). Subsequent requests for the same key
    /// are served from the L1 without touching any shard lock, until a
    /// version bump invalidates the copy.
    RespondCacheable(PreparedResponse, VersionedEntry),
    /// Write this response after a delay, without blocking the reactor
    /// (fault injection: the origin's `Stall` mode).
    RespondAfter(Response, Duration),
    /// Fetch from an upstream server first; `finish` turns its response
    /// into the client's. The fetch goes through the reactor's
    /// keep-alive origin pool; identical concurrent fetches coalesce.
    Upstream {
        /// Upstream address (the origin).
        addr: SocketAddr,
        /// Request to send upstream.
        request: Request,
        /// Builds the client response from the upstream outcome.
        finish: FinishUpstream,
    },
    /// Drop the connection without responding.
    Close,
}

impl std::fmt::Debug for ServiceResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ServiceResult::Respond(_) => "Respond",
            ServiceResult::RespondPrepared(_) => "RespondPrepared",
            ServiceResult::RespondCacheable(..) => "RespondCacheable",
            ServiceResult::RespondAfter(..) => "RespondAfter",
            ServiceResult::Upstream { .. } => "Upstream",
            ServiceResult::Close => "Close",
        };
        f.write_str(name)
    }
}

/// Request handler plugged into an [`EventLoop`]. May run on several
/// reactor threads concurrently, and must not block (upstream I/O goes
/// through [`ServiceResult::Upstream`], delays through
/// [`ServiceResult::RespondAfter`]).
pub trait Service: Send + Sync + 'static {
    /// Whether to keep a freshly accepted connection (fault injection
    /// hooks return `false` to drop it on arrival).
    fn accept_connection(&self) -> bool {
        true
    }

    /// Handles one parsed request.
    fn respond(&self, request: &Request) -> ServiceResult;

    /// Per-reactor L1 capacity in objects. `0` (the default) disables
    /// the reactor-local cache entirely: the engine never consults or
    /// constructs an L1 and every request reaches [`Service::respond`].
    fn l1_capacity(&self) -> usize {
        0
    }

    /// The shared cache's bulk-invalidation generation (see
    /// [`crate::cache::ShardedCache::generation`]). Loaded once per L1
    /// lookup; a change wholesale-invalidates every reactor's L1 on its
    /// next lookup (admin rule swaps, consistency-epoch adoptions).
    fn l1_generation(&self) -> u64 {
        0
    }

    /// The L1 cache key for `request`, or `None` when the request must
    /// never be served from the reactor-local cache (non-GET methods,
    /// admin paths, cache-bypass headers — the service owns the policy).
    fn l1_key<'r>(&self, request: &'r Request) -> Option<&'r str> {
        let _ = request;
        None
    }

    /// Builds the wire response for an L1-validated entry. Returning
    /// `None` declines the hit and falls through to
    /// [`Service::respond`]. Only called for requests [`Service::l1_key`]
    /// accepted, on entries that just passed version revalidation.
    fn l1_serve(&self, request: &Request, hit: &VersionedEntry) -> Option<PreparedResponse> {
        let _ = (request, hit);
        None
    }
}

/// Lightweight always-on counters an event loop's reactors maintain, for
/// the admin control plane (`GET /admin/stats`). Per-reactor slots are
/// sized at [`MAX_REACTORS`] up front so the struct can be shared with a
/// [`Service`] before the final reactor count is known; all counters are
/// relaxed atomics — observability, not synchronization.
#[derive(Debug)]
pub struct EngineMetrics {
    reactors: AtomicUsize,
    conns: Vec<AtomicUsize>,
    accepted: Vec<AtomicU64>,
    pool_reuses: AtomicU64,
    pool_coalesced: AtomicU64,
    pool_opened: AtomicU64,
    pool_retries: AtomicU64,
    write_calls: AtomicU64,
    writev_calls: AtomicU64,
    accept_batches: AtomicU64,
    body_copies: AtomicU64,
    buf_reuses: AtomicU64,
    buf_allocs: AtomicU64,
    buf_pool_high_water: AtomicUsize,
    epoll_ctl_calls: AtomicU64,
    interest_coalesced: AtomicU64,
    sqe_submitted: AtomicU64,
    cqe_completed: AtomicU64,
    l1_hits: AtomicU64,
    l1_stale_rejects: AtomicU64,
    l1_stale_serves: AtomicU64,
    l1_refills: AtomicU64,
    l1_evictions: AtomicU64,
    write_stalls: AtomicU64,
    /// Active backend per reactor: 0 = unknown, 1 = epoll, 2 = io_uring
    /// (set after any construction fallback, so it reports what actually
    /// runs).
    backends: Vec<AtomicUsize>,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics {
            reactors: AtomicUsize::new(0),
            conns: (0..MAX_REACTORS).map(|_| AtomicUsize::new(0)).collect(),
            accepted: (0..MAX_REACTORS).map(|_| AtomicU64::new(0)).collect(),
            pool_reuses: AtomicU64::new(0),
            pool_coalesced: AtomicU64::new(0),
            pool_opened: AtomicU64::new(0),
            pool_retries: AtomicU64::new(0),
            write_calls: AtomicU64::new(0),
            writev_calls: AtomicU64::new(0),
            accept_batches: AtomicU64::new(0),
            body_copies: AtomicU64::new(0),
            buf_reuses: AtomicU64::new(0),
            buf_allocs: AtomicU64::new(0),
            buf_pool_high_water: AtomicUsize::new(0),
            epoll_ctl_calls: AtomicU64::new(0),
            interest_coalesced: AtomicU64::new(0),
            sqe_submitted: AtomicU64::new(0),
            cqe_completed: AtomicU64::new(0),
            l1_hits: AtomicU64::new(0),
            l1_stale_rejects: AtomicU64::new(0),
            l1_stale_serves: AtomicU64::new(0),
            l1_refills: AtomicU64::new(0),
            l1_evictions: AtomicU64::new(0),
            write_stalls: AtomicU64::new(0),
            backends: (0..MAX_REACTORS).map(|_| AtomicUsize::new(0)).collect(),
        }
    }
}

impl EngineMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> EngineMetrics {
        EngineMetrics::default()
    }

    /// How many reactors report into these counters (0 until an event
    /// loop adopts the struct).
    pub fn reactor_count(&self) -> usize {
        self.reactors.load(Ordering::Relaxed)
    }

    /// Client connections currently open, one entry per reactor.
    pub fn reactor_connections(&self) -> Vec<usize> {
        self.conns[..self.reactor_count()]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Client connections ever accepted, one entry per reactor.
    pub fn reactor_accepted(&self) -> Vec<u64> {
        self.accepted[..self.reactor_count()]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Upstream fetches served on a reused (parked keep-alive) origin
    /// connection instead of a fresh socket.
    pub fn pool_reuses(&self) -> u64 {
        self.pool_reuses.load(Ordering::Relaxed)
    }

    /// Upstream fetches coalesced onto an identical in-flight fetch.
    pub fn pool_coalesced(&self) -> u64 {
        self.pool_coalesced.load(Ordering::Relaxed)
    }

    /// Origin sockets opened across all reactors.
    pub fn pool_opened(&self) -> u64 {
        self.pool_opened.load(Ordering::Relaxed)
    }

    /// Stale-socket retries taken (a reused pooled socket died before
    /// the first response byte and the fetch was requeued).
    pub fn pool_retries(&self) -> u64 {
        self.pool_retries.load(Ordering::Relaxed)
    }

    /// Plain `write(2)` calls made flushing client responses.
    pub fn write_calls(&self) -> u64 {
        self.write_calls.load(Ordering::Relaxed)
    }

    /// `writev(2)` calls made flushing client responses (head + shared
    /// body gathered into one syscall).
    pub fn writev_calls(&self) -> u64 {
        self.writev_calls.load(Ordering::Relaxed)
    }

    /// Listener readiness events handled; each drains the whole accept
    /// backlog, so `reactor_accepted / accept_batches` is the mean
    /// accepts coalesced per wakeup.
    pub fn accept_batches(&self) -> u64 {
        self.accept_batches.load(Ordering::Relaxed)
    }

    /// Response bodies copied into a contiguous write buffer (small
    /// inlined bodies and delayed fault-injection responses). The
    /// prepared cache-hit path never increments this: its body is
    /// always gathered from the shared cache allocation.
    pub fn body_copies(&self) -> u64 {
        self.body_copies.load(Ordering::Relaxed)
    }

    /// Connection buffers recycled from a reactor's pool instead of
    /// freshly allocated.
    pub fn buf_reuses(&self) -> u64 {
        self.buf_reuses.load(Ordering::Relaxed)
    }

    /// Connection buffers allocated because the pool was empty.
    pub fn buf_allocs(&self) -> u64 {
        self.buf_allocs.load(Ordering::Relaxed)
    }

    /// Most buffers any reactor's pool has held at once.
    pub fn buf_pool_high_water(&self) -> usize {
        self.buf_pool_high_water.load(Ordering::Relaxed)
    }

    /// Kernel interest operations issued (`epoll_ctl` ADD + MOD) across
    /// all reactors. Zero on io_uring backends. With interest coalescing
    /// this grows with *connections*, not requests: keep-alive churn is
    /// absorbed by the ledger.
    pub fn epoll_ctl_calls(&self) -> u64 {
        self.epoll_ctl_calls.load(Ordering::Relaxed)
    }

    /// Interest transitions absorbed before reaching the kernel — the
    /// syscalls the coalescing ledger saved.
    pub fn interest_coalesced(&self) -> u64 {
        self.interest_coalesced.load(Ordering::Relaxed)
    }

    /// io_uring submission-queue entries pushed. Zero on epoll backends.
    pub fn sqe_submitted(&self) -> u64 {
        self.sqe_submitted.load(Ordering::Relaxed)
    }

    /// io_uring completion-queue entries reaped. Zero on epoll backends.
    pub fn cqe_completed(&self) -> u64 {
        self.cqe_completed.load(Ordering::Relaxed)
    }

    /// Requests served straight from a reactor-local L1 — validated by
    /// one version-handle load, no shard lock touched.
    pub fn l1_hits(&self) -> u64 {
        self.l1_hits.load(Ordering::Relaxed)
    }

    /// L1 lookups that found the key but failed version revalidation
    /// (the copy was invalidated by a store/eviction/removal); the slot
    /// is dropped and the request falls through to the shared cache.
    pub fn l1_stale_rejects(&self) -> u64 {
        self.l1_stale_rejects.load(Ordering::Relaxed)
    }

    /// L1 hits whose version handle had already moved by the time the
    /// response was queued — the measured stale-serve count. A serve
    /// that raced an invalidation is still within the paper's Δ bound,
    /// but the counter makes the window observable; it must read 0 in
    /// every steady-state run.
    pub fn l1_stale_serves(&self) -> u64 {
        self.l1_stale_serves.load(Ordering::Relaxed)
    }

    /// L1 slots (re)filled from shared-cache hits.
    pub fn l1_refills(&self) -> u64 {
        self.l1_refills.load(Ordering::Relaxed)
    }

    /// L1 slots evicted by probe-window pressure (not invalidation).
    pub fn l1_evictions(&self) -> u64 {
        self.l1_evictions.load(Ordering::Relaxed)
    }

    /// Flush passes that ended with the socket still unwritable — the
    /// client write-stall count. Stall time is part of the request's
    /// latency sample: admission tickets release at flush completion,
    /// so a stalling client inflates the partition's observed latency
    /// and the adaptive limiter backs off.
    pub fn write_stalls(&self) -> u64 {
        self.write_stalls.load(Ordering::Relaxed)
    }

    /// Active backend label per reactor (`"epoll"` / `"io_uring"`),
    /// after any io_uring→epoll construction fallback.
    pub fn reactor_backends(&self) -> Vec<&'static str> {
        self.backends[..self.reactor_count()]
            .iter()
            .map(|b| match b.load(Ordering::Relaxed) {
                1 => BackendKind::Epoll.label(),
                2 => BackendKind::IoUring.label(),
                _ => "unknown",
            })
            .collect()
    }

    fn note_backend(&self, reactor: usize, kind: BackendKind) {
        let code = match kind {
            BackendKind::Epoll => 1,
            BackendKind::IoUring => 2,
        };
        self.backends[reactor].store(code, Ordering::Relaxed);
    }

    /// Folds one event-loop turn's backend counter deltas in (no-op for
    /// zero deltas, so an idle turn costs nothing).
    fn note_backend_counters(&self, delta: BackendCounters) {
        if delta.epoll_ctl_calls > 0 {
            self.epoll_ctl_calls
                .fetch_add(delta.epoll_ctl_calls, Ordering::Relaxed);
        }
        if delta.interest_coalesced > 0 {
            self.interest_coalesced
                .fetch_add(delta.interest_coalesced, Ordering::Relaxed);
        }
        if delta.sqe_submitted > 0 {
            self.sqe_submitted
                .fetch_add(delta.sqe_submitted, Ordering::Relaxed);
        }
        if delta.cqe_completed > 0 {
            self.cqe_completed
                .fetch_add(delta.cqe_completed, Ordering::Relaxed);
        }
    }

    /// Folds one flush's syscall tallies in (no-op for zero tallies, so
    /// the common single-counter flush costs one atomic add).
    fn note_flush(&self, stats: &FlushStats) {
        if stats.write_calls > 0 {
            self.write_calls.fetch_add(stats.write_calls, Ordering::Relaxed);
        }
        if stats.writev_calls > 0 {
            self.writev_calls.fetch_add(stats.writev_calls, Ordering::Relaxed);
        }
        if stats.blocked > 0 {
            self.write_stalls.fetch_add(stats.blocked, Ordering::Relaxed);
        }
    }

    /// Raises the pool high-water mark if `candidate` exceeds it.
    fn note_pool_high_water(&self, candidate: usize) {
        self.buf_pool_high_water.fetch_max(candidate, Ordering::Relaxed);
    }
}

struct ReactorHandle {
    waker: Waker,
    thread: Option<JoinHandle<()>>,
}

/// A running event loop: N reactor threads behind one shared port.
/// Shuts down gracefully (waking, draining and joining every reactor)
/// on drop.
pub struct EventLoop {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    reactors: Vec<ReactorHandle>,
    metrics: Arc<EngineMetrics>,
    overload: Arc<OverloadControl>,
}

impl EventLoop {
    /// Binds localhost listeners on a shared ephemeral port and starts
    /// [`num_reactors`] reactor threads with the [`max_conns`]
    /// connection bound.
    ///
    /// # Errors
    ///
    /// Propagates socket and epoll setup failures.
    pub fn start(name: &str, service: Arc<dyn Service>) -> io::Result<EventLoop> {
        EventLoop::with_options(name, service, max_conns(), num_reactors())
    }

    /// [`EventLoop::start`] with an explicit connection bound.
    ///
    /// # Errors
    ///
    /// Propagates socket and epoll setup failures.
    pub fn with_capacity(
        name: &str,
        service: Arc<dyn Service>,
        max_conns: usize,
    ) -> io::Result<EventLoop> {
        EventLoop::with_options(name, service, max_conns, num_reactors())
    }

    /// [`EventLoop::start`] with explicit connection and reactor counts.
    /// `max_conns` is the total across reactors, split exactly (the
    /// reactor count is capped at the bound so a small bound is never
    /// multiplied); each shard enforces its share independently, since
    /// the kernel's `SO_REUSEPORT` balancing ignores occupancy.
    ///
    /// # Errors
    ///
    /// Propagates socket and epoll setup failures.
    pub fn with_options(
        name: &str,
        service: Arc<dyn Service>,
        max_conns: usize,
        reactors: usize,
    ) -> io::Result<EventLoop> {
        EventLoop::with_metrics(name, service, max_conns, reactors, Arc::new(EngineMetrics::new()))
    }

    /// [`EventLoop::with_options`] reporting into caller-supplied
    /// [`EngineMetrics`] — the live proxy shares the struct with its
    /// admin control plane, which needs it before the loop exists.
    ///
    /// # Errors
    ///
    /// Propagates socket and epoll setup failures.
    pub fn with_metrics(
        name: &str,
        service: Arc<dyn Service>,
        max_conns: usize,
        reactors: usize,
        metrics: Arc<EngineMetrics>,
    ) -> io::Result<EventLoop> {
        EventLoop::with_backend(name, service, max_conns, reactors, metrics, None)
    }

    /// [`EventLoop::with_metrics`] with an explicit reactor backend.
    /// `None` reads `MUTCON_LIVE_BACKEND` (default epoll). An io_uring
    /// request falls back to epoll when the kernel refuses rings (logged
    /// once); the backend each reactor actually runs is recorded in the
    /// metrics ([`EngineMetrics::reactor_backends`]).
    ///
    /// # Errors
    ///
    /// Propagates socket and backend setup failures.
    pub fn with_backend(
        name: &str,
        service: Arc<dyn Service>,
        max_conns: usize,
        reactors: usize,
        metrics: Arc<EngineMetrics>,
        backend_kind: Option<BackendKind>,
    ) -> io::Result<EventLoop> {
        EventLoop::with_overload(
            name,
            service,
            max_conns,
            reactors,
            metrics,
            backend_kind,
            Arc::new(OverloadControl::default()),
        )
    }

    /// [`EventLoop::with_backend`] with a caller-supplied overload
    /// control handle (see [`crate::overload`]): the live proxy shares
    /// it with its admin plane, which hot-swaps the admission and
    /// origin-pool limiters and reads back live limits, samples and
    /// shed counters.
    ///
    /// # Errors
    ///
    /// Propagates socket and backend setup failures, and rejects a
    /// handle whose initial configuration fails validation.
    pub fn with_overload(
        name: &str,
        service: Arc<dyn Service>,
        max_conns: usize,
        reactors: usize,
        metrics: Arc<EngineMetrics>,
        backend_kind: Option<BackendKind>,
        overload: Arc<OverloadControl>,
    ) -> io::Result<EventLoop> {
        overload
            .config()
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let kind = backend_kind.unwrap_or_else(BackendKind::from_env);
        // Raise the fd ceiling once per process so 10k-connection runs
        // don't trip the default 1024 soft limit.
        static RAISE_NOFILE: Once = Once::new();
        RAISE_NOFILE.call_once(|| match raise_nofile_limit(NOFILE_CAP) {
            Ok((before, after)) if after > before => {
                eprintln!("mutcon-live: raised RLIMIT_NOFILE {before} -> {after}");
            }
            Ok(_) => {}
            Err(err) => eprintln!("mutcon-live: could not raise RLIMIT_NOFILE: {err}"),
        });
        let max_conns = max_conns.max(1);
        // Never spawn more reactors than the connection bound allows:
        // the bound is enforced per shard (the kernel's SO_REUSEPORT
        // balancing ignores occupancy), and splitting it must not
        // multiply it — with_options(.., 2, 8) means 2 connections
        // total, not 8.
        let reactors = reactors.clamp(1, MAX_REACTORS).min(max_conns);
        // The first listener picks the ephemeral port; its SO_REUSEPORT
        // siblings join it, one per reactor.
        let first = listen_reuseport("127.0.0.1:0".parse().expect("valid literal"))?;
        let addr = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..reactors {
            listeners.push(listen_reuseport(addr)?);
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        metrics.reactors.store(reactors, Ordering::Relaxed);
        let mut handles = Vec::with_capacity(reactors);
        // Split the bound exactly: the first (max_conns % reactors)
        // shards take one extra slot, total = max_conns.
        let shares = split_conns(max_conns, reactors);
        for (i, listener) in listeners.into_iter().enumerate() {
            let per_reactor = shares[i];
            let mut engine_backend = backend::create(kind, TOKEN_WAKER)?;
            engine_backend.register_acceptor(listener.as_raw_fd(), TOKEN_LISTENER)?;
            let waker = engine_backend.wake_handle();
            metrics.note_backend(i, engine_backend.kind());
            let reactor = Reactor {
                backend: engine_backend,
                listener,
                service: Arc::clone(&service),
                shutdown: Arc::clone(&shutdown),
                max_conns: per_reactor.max(1),
                conns: Vec::new(),
                free: Vec::new(),
                clients: 0,
                accepting: true,
                last_sweep: Instant::now(),
                freed_this_batch: Vec::new(),
                delayed: 0,
                pool: PoolCore::default(),
                bufs: BufPool::new(),
                driving: None,
                metrics: Arc::clone(&metrics),
                reactor_index: i,
                last_counters: BackendCounters::default(),
                overload: Arc::clone(&overload),
                overload_version: overload.version(),
                overload_config: overload.config(),
                admission: HashMap::new(),
                overload_dirty: true,
                paused_since: None,
                l1: match service.l1_capacity() {
                    0 => None,
                    capacity => Some(L1Cache::new(capacity)),
                },
            };
            let thread = std::thread::Builder::new()
                .name(format!("{name}-r{i}"))
                .spawn(move || reactor.run())?;
            handles.push(ReactorHandle {
                waker,
                thread: Some(thread),
            });
        }
        Ok(EventLoop {
            addr,
            shutdown,
            reactors: handles,
            metrics,
            overload,
        })
    }

    /// The shared listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many reactor threads serve this loop.
    pub fn reactor_count(&self) -> usize {
        self.reactors.len()
    }

    /// The loop's always-on counters (shared with whatever
    /// [`EngineMetrics`] was passed to [`EventLoop::with_metrics`]).
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// The shared overload-control handle (config installs, shed
    /// counters, per-reactor limit snapshots).
    pub fn overload(&self) -> &Arc<OverloadControl> {
        &self.overload
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for handle in &self.reactors {
            handle.waker.wake();
        }
        for handle in &mut self.reactors {
            if let Some(thread) = handle.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

impl std::fmt::Debug for EventLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoop")
            .field("addr", &self.addr)
            .field("reactors", &self.reactors.len())
            .finish()
    }
}

/// What a client connection is waiting on besides socket readiness.
enum Pending {
    /// Nothing: reading the next request.
    None,
    /// An upstream fetch (pool job id).
    Upstream(JobId),
    /// A deferred response (fault injection).
    Delayed { at: Instant, response: Vec<u8> },
}

struct ClientState {
    parser: RequestParser,
    read_buf: BytesMut,
    /// The outgoing response: a pooled contiguous buffer (head + small
    /// inlined bodies) plus an optional shared body slice, flushed with
    /// `writev` so a cache hit costs one syscall and zero body copies.
    write: WritePlan,
    pending: Pending,
    /// Peer sent EOF; close once the in-flight response is flushed.
    peer_closed: bool,
    /// The peer asked for `Connection: close`; serve the current
    /// request, flush, then close (later pipelined bytes are ignored).
    close_after_write: bool,
    /// The admission ticket for the request in flight. `None` when
    /// admission control is off or no request is in flight.
    admitted: Option<AdmissionTicket>,
}

/// An admission slot charged to a path partition for one in-flight
/// request. The ticket is released — and the limiter fed a latency
/// sample — only once the response is **fully flushed**, not when it is
/// queued: client write-stall time thereby joins the latency sample, so
/// slow-reading clients push the partition's adaptive limit down like
/// any other service-time inflation.
struct AdmissionTicket {
    /// The path partition the slot was charged against.
    partition: Arc<str>,
    /// When the request was admitted.
    started: Instant,
    /// The queued response's status, recorded at queue time; `None`
    /// until a response is queued (e.g. while an upstream fetch is in
    /// flight). The flush-completion path only samples the limiter once
    /// this is set.
    status: Option<u16>,
}

/// A connection to an upstream origin, owned by the reactor's pool.
struct UpstreamState {
    /// The origin this connection belongs to.
    addr: SocketAddr,
    /// The pool job being fetched, or `None` while parked idle.
    job: Option<JobId>,
    /// Request bytes written so far (the bytes live in the job).
    written: usize,
    read_buf: BytesMut,
    parser: ResponseParser,
    connected: bool,
    /// Responses served on this connection; `> 0` marks it as reused
    /// (eligible for the stale-socket retry).
    served: u32,
    /// When the current fetch was handed to this connection; the
    /// elapsed time at completion feeds the pool's adaptive limiter.
    fetch_started: Option<Instant>,
}

enum Kind {
    Client(ClientState),
    Upstream(UpstreamState),
}

struct Conn {
    stream: TcpStream,
    last_activity: Instant,
    kind: Kind,
}

/// The waiter payload the pool tracks per coalesced miss.
struct Waiting {
    client: usize,
    finish: FinishUpstream,
}

impl std::fmt::Debug for Waiting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waiting").field("client", &self.client).finish()
    }
}

struct Reactor {
    /// The pluggable readiness + data-plane seam (epoll or io_uring);
    /// every fd operation goes through it.
    backend: Box<dyn Backend>,
    listener: TcpListener,
    service: Arc<dyn Service>,
    shutdown: Arc<AtomicBool>,
    max_conns: usize,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Client connections currently open (upstream sockets don't count
    /// against the accept bound).
    clients: usize,
    accepting: bool,
    last_sweep: Instant,
    /// Slots freed while processing the current event batch. Reuse is
    /// deferred to the end of the batch so a stale event queued for a
    /// closed connection's token can never be applied to a new
    /// connection occupying the same slot (it finds `None` instead).
    freed_this_batch: Vec<usize>,
    /// Number of connections holding a `Pending::Delayed` response, so
    /// the hot loop skips the timer scans entirely when (as in every
    /// non-fault-injected run) there are none.
    delayed: usize,
    /// The keep-alive origin pool ledger (see [`crate::upstream`]).
    pool: PoolCore<Waiting>,
    /// Recycled read/write buffers, handed to new connections instead
    /// of fresh allocations (reactor-local: no locks).
    bufs: BufPool,
    /// The client currently inside `drive_client`, if any. Completions
    /// delivered to it are queued, not recursively resumed — the active
    /// drive loop picks them up, keeping pipelined bursts iterative.
    driving: Option<usize>,
    /// Shared observability counters (see [`EngineMetrics`]).
    metrics: Arc<EngineMetrics>,
    /// This reactor's slot in the per-reactor metric arrays.
    reactor_index: usize,
    /// Backend counter snapshot from the previous turn; the delta is
    /// folded into the shared metrics once per event-loop turn.
    last_counters: BackendCounters,
    /// The shared overload-control handle (hot config installs, shed
    /// counters, published snapshots).
    overload: Arc<OverloadControl>,
    /// Config version this reactor has applied; compared against the
    /// handle's version each turn (one relaxed-ish atomic load).
    overload_version: u64,
    /// The reactor's private copy of the overload config.
    overload_config: OverloadConfig,
    /// Per path-partition admission state, created lazily as
    /// partitions are first seen. Empty while admission is off.
    admission: HashMap<Arc<str>, PartitionState>,
    /// Something observable changed (limits, samples, shed counts);
    /// publish a fresh snapshot at the end of the turn.
    overload_dirty: bool,
    /// When `pause_accepting` parked the listener; after
    /// `park_deadline` the backlog is drained with `503`s instead of
    /// making parked clients wait forever.
    paused_since: Option<Instant>,
    /// The reactor-local hot-object cache, consulted before the service
    /// (and hence before any shared shard lock). `None` when the
    /// service's [`Service::l1_capacity`] is 0. Thread-local `&mut`
    /// access: lookups, refills and evictions take no lock of any kind;
    /// correctness against concurrent shared-cache mutation comes from
    /// the per-path version stamps (see [`crate::cache::L1Cache`]).
    l1: Option<L1Cache>,
}

/// Admission state for one path partition.
struct PartitionState {
    limiter: Limiter,
    /// Requests admitted and not yet completed.
    in_flight: usize,
    /// Requests shed (`429`) from this partition.
    shed: u64,
}

/// Clones an `io::Error` well enough for fan-out to several waiters.
fn clone_err(e: &io::Error) -> io::Error {
    io::Error::new(e.kind(), e.to_string())
}

/// A [`WriteSink`] routing a connection's flush through the reactor's
/// backend, so the vectored write path works identically over epoll
/// (direct `write`/`writev`) and io_uring (inline SQEs).
struct BackendSink<'a> {
    backend: &'a mut dyn Backend,
    fd: std::os::fd::RawFd,
    token: usize,
}

impl WriteSink for BackendSink<'_> {
    fn write_one(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.backend.write(self.fd, self.token, buf)
    }

    fn write_two(&mut self, first: &[u8], second: &[u8]) -> io::Result<usize> {
        self.backend.writev(self.fd, self.token, &[first, second])
    }
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(1024);
        while !self.shutdown.load(Ordering::SeqCst) {
            let timeout = self.next_timeout();
            if self.backend.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            self.dispatch(&events);
            self.fire_timers();
            self.sync_overload();
            self.check_park_deadline();
            self.publish_overload();
            self.flush_backend_counters();
            if self.last_sweep.elapsed() >= Duration::from_secs(1) {
                self.sweep_idle();
                self.last_sweep = Instant::now();
            }
        }
        self.drain(&mut events);
        self.flush_backend_counters();
        // Dropping the slab closes every socket.
    }

    /// Applies one event batch.
    fn dispatch(&mut self, events: &[Event]) {
        for &event in events {
            match event.token {
                TOKEN_LISTENER => self.accept_ready(),
                TOKEN_WAKER => self.backend.drain_waker(),
                token => self.conn_event(token - TOKEN_BASE, event),
            }
        }
        // Freed slots become reusable only once every event of the
        // batch has been applied (see `freed_this_batch`).
        self.free.append(&mut self.freed_this_batch);
    }

    /// Exports the backend's monotonic syscall-economy counters into the
    /// shared metrics as a delta, once per event-loop turn.
    fn flush_backend_counters(&mut self) {
        let now = self.backend.counters();
        let delta = now.since(self.last_counters);
        self.last_counters = now;
        self.metrics.note_backend_counters(delta);
    }

    /// Graceful-shutdown tail: stop accepting, keep serving until every
    /// in-flight response is flushed or the grace period lapses.
    fn drain(&mut self, events: &mut Vec<Event>) {
        self.pause_accepting();
        let deadline = Instant::now() + DRAIN_GRACE;
        while self.has_inflight() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let timeout = (deadline - now).min(Duration::from_millis(10));
            if self.backend.wait(events, Some(timeout)).is_err() {
                break;
            }
            self.dispatch(events);
            self.fire_timers();
        }
    }

    /// Whether any connection still owes work (unflushed response bytes,
    /// a pending delayed response, or an upstream fetch in flight).
    fn has_inflight(&self) -> bool {
        self.conns.iter().flatten().any(|conn| match &conn.kind {
            Kind::Client(client) => {
                client.write.has_unwritten() || !matches!(client.pending, Pending::None)
            }
            Kind::Upstream(up) => up.job.is_some(),
        })
    }

    /// The wait bound: the nearest delayed-response deadline, else the
    /// housekeeping tick. O(1) unless fault injection has responses
    /// actually pending.
    fn next_timeout(&self) -> Duration {
        if self.delayed == 0 {
            return TICK;
        }
        let now = Instant::now();
        let mut timeout = TICK;
        for conn in self.conns.iter().flatten() {
            if let Kind::Client(client) = &conn.kind {
                if let Pending::Delayed { at, .. } = &client.pending {
                    timeout = timeout.min(at.saturating_duration_since(now));
                }
            }
        }
        timeout
    }

    fn alloc_slot(&mut self) -> usize {
        match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        }
    }

    fn pause_accepting(&mut self) {
        if self.accepting {
            self.accepting = false;
            self.backend.set_interest(TOKEN_LISTENER, Interest::NONE);
            self.paused_since = Some(Instant::now());
        }
    }

    fn resume_accepting(&mut self) {
        if !self.accepting && self.clients < self.max_conns {
            self.accepting = true;
            self.backend.set_interest(TOKEN_LISTENER, Interest::READABLE);
            self.paused_since = None;
        }
    }

    /// Drains the whole accept backlog in one batch. Each connection
    /// arrives already nonblocking (`accept4`, no per-accept `fcntl`)
    /// and adopts pooled read/write buffers; shared metrics are stored
    /// once per batch, not once per connection, and the listener's
    /// epoll interest is only touched when the batch hits the
    /// connection bound.
    fn accept_ready(&mut self) {
        let mut batch: u64 = 0;
        let mut reused: u64 = 0;
        let mut allocated: u64 = 0;
        while self.accepting {
            match self.backend.accept(&self.listener, TOKEN_LISTENER) {
                Ok(stream) => {
                    if !self.service.accept_connection() {
                        continue; // dropped on arrival (fault injection)
                    }
                    let _ = stream.set_nodelay(true);
                    let idx = self.alloc_slot();
                    if self
                        .backend
                        .register(stream.as_raw_fd(), idx + TOKEN_BASE, Interest::READABLE)
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    let (wbuf, wfrom_pool) = self.bufs.take();
                    let (rbuf, rfrom_pool) = self.bufs.take();
                    reused += u64::from(wfrom_pool) + u64::from(rfrom_pool);
                    allocated += u64::from(!wfrom_pool) + u64::from(!rfrom_pool);
                    self.conns[idx] = Some(Conn {
                        stream,
                        last_activity: Instant::now(),
                        kind: Kind::Client(ClientState {
                            parser: RequestParser::new(),
                            read_buf: BytesMut::from_vec(rbuf),
                            write: WritePlan::with_buf(wbuf),
                            pending: Pending::None,
                            peer_closed: false,
                            close_after_write: false,
                            admitted: None,
                        }),
                    });
                    self.clients += 1;
                    batch += 1;
                    if self.clients >= self.max_conns {
                        self.pause_accepting();
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        if batch > 0 {
            self.metrics.conns[self.reactor_index].store(self.clients, Ordering::Relaxed);
            self.metrics.accepted[self.reactor_index].fetch_add(batch, Ordering::Relaxed);
            self.metrics.accept_batches.fetch_add(1, Ordering::Relaxed);
            if reused > 0 {
                self.metrics.buf_reuses.fetch_add(reused, Ordering::Relaxed);
            }
            if allocated > 0 {
                self.metrics.buf_allocs.fetch_add(allocated, Ordering::Relaxed);
            }
        }
    }

    fn conn_event(&mut self, idx: usize, event: Event) {
        let Some(conn) = self.conns.get(idx).and_then(Option::as_ref) else {
            return; // closed earlier in this event batch
        };
        match &conn.kind {
            Kind::Client(_) => {
                if event.closed {
                    self.close_client(idx);
                    return;
                }
                if event.writable {
                    self.client_writable(idx);
                }
                if event.readable {
                    self.client_readable(idx);
                }
            }
            Kind::Upstream(_) => {
                if event.closed {
                    let err = self.conns[idx]
                        .as_ref()
                        .and_then(|c| c.stream.take_error().ok().flatten())
                        .unwrap_or_else(|| {
                            io::Error::new(io::ErrorKind::BrokenPipe, "origin hung up")
                        });
                    self.upstream_broken(idx, err, true);
                    return;
                }
                if event.writable {
                    self.upstream_writable(idx);
                }
                if event.readable {
                    self.upstream_readable(idx);
                }
            }
        }
    }

    /// Drains the socket into the client's read buffer, then drives the
    /// request/response state machine.
    fn client_readable(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let fd = conn.stream.as_raw_fd();
        let Kind::Client(client) = &mut conn.kind else { return };
        let mut saw_eof = false;
        let mut chunk = [0u8; 16 * 1024];
        while client.read_buf.len() < MAX_BUFFERED {
            match self.backend.read(fd, idx + TOKEN_BASE, &mut chunk) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => client.read_buf.extend_from_slice(&chunk[..n]),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_client(idx);
                    return;
                }
            }
        }
        conn.last_activity = Instant::now();
        client.peer_closed |= saw_eof;
        self.resume_client(idx);
    }

    fn client_writable(&mut self, idx: usize) {
        self.resume_client(idx);
    }

    /// The connection's resume sequence after any progress: flush
    /// whatever response is pending, drive buffered requests to
    /// quiescence, close a drained half-closed peer, and recompute the
    /// epoll interest. Every event/completion path funnels through
    /// here.
    fn resume_client(&mut self, idx: usize) {
        if !self.flush_client(idx) {
            return;
        }
        if !self.drive_client(idx) {
            return;
        }
        // EOF (or Connection: close) with nothing left to serve: close.
        if self.close_if_finished(idx) {
            return;
        }
        self.update_client_interest(idx);
    }

    /// Parses and dispatches buffered requests while the connection has
    /// no response in flight. Returns `false` if the connection was
    /// closed. Wraps the loop with the `driving` marker so completions
    /// for *this* client queue instead of recursing (a pipelined burst
    /// of synchronously failing misses must not nest one stack frame per
    /// request).
    fn drive_client(&mut self, idx: usize) -> bool {
        let prev = self.driving.replace(idx);
        let alive = self.drive_client_inner(idx);
        self.driving = prev;
        alive
    }

    fn drive_client_inner(&mut self, idx: usize) -> bool {
        loop {
            let Some(conn) = self.conns[idx].as_mut() else { return false };
            let Kind::Client(client) = &mut conn.kind else { return false };
            if client.write.has_unwritten() || !matches!(client.pending, Pending::None) {
                return true; // busy; pipelined requests wait their turn
            }
            if client.close_after_write {
                return true; // response flushed path closes the socket
            }
            let (request, consumed) = match client.parser.advance(&client.read_buf) {
                Ok(Some(parsed)) => parsed,
                Ok(None) => return true,
                Err(_) => {
                    // The bytes can never become a request; the
                    // connection is beyond saving.
                    self.close_client(idx);
                    return false;
                }
            };
            client.read_buf.advance(consumed);
            if !request.wants_keep_alive() {
                client.close_after_write = true;
            }
            if !self.admit_or_shed(idx, &request) {
                // Shed: a 429 is queued (or pending as a paced delayed
                // response). Flush and keep draining pipelined input.
                if !self.flush_client(idx) {
                    return false;
                }
                continue;
            }
            // The reactor-local L1 is consulted first: a validated hit
            // serves without calling the service or touching any shared
            // shard lock.
            if self.l1_try_serve(idx, &request) {
                if !self.flush_client(idx) {
                    return false;
                }
                continue;
            }
            match self.service.respond(&request) {
                ServiceResult::Respond(response) => {
                    self.queue_response(idx, response);
                    if !self.flush_client(idx) {
                        return false;
                    }
                }
                ServiceResult::RespondPrepared(prepared) => {
                    self.queue_prepared(idx, prepared);
                    if !self.flush_client(idx) {
                        return false;
                    }
                }
                ServiceResult::RespondCacheable(prepared, versioned) => {
                    self.l1_refill(&request, versioned);
                    self.queue_prepared(idx, prepared);
                    if !self.flush_client(idx) {
                        return false;
                    }
                }
                ServiceResult::RespondAfter(response, delay) => {
                    let wire = self.response_bytes(idx, response);
                    let Some(conn) = self.conns[idx].as_mut() else { return false };
                    let Kind::Client(client) = &mut conn.kind else { return false };
                    client.pending = Pending::Delayed {
                        at: Instant::now() + delay,
                        response: wire,
                    };
                    self.delayed += 1;
                    return true;
                }
                ServiceResult::Upstream {
                    addr,
                    request,
                    finish,
                } => {
                    self.submit_upstream(idx, addr, &request, finish);
                    match self.conns.get(idx).and_then(Option::as_ref) {
                        None => return false,
                        Some(conn) => {
                            let Kind::Client(client) = &conn.kind else { return false };
                            if matches!(client.pending, Pending::Upstream(_)) {
                                // Fetch in flight; its completion
                                // resumes this connection.
                                return true;
                            }
                            // The fetch concluded synchronously (connect
                            // failure, or a coalesced job that finished
                            // within this very call): its response is
                            // queued. Flush and keep driving
                            // iteratively.
                            if !self.flush_client(idx) {
                                return false;
                            }
                        }
                    }
                }
                ServiceResult::Close => {
                    self.close_client(idx);
                    return false;
                }
            }
        }
    }

    /// Serializes a response for `idx` fully (head *and* body into one
    /// `Vec`), honoring a pending `Connection: close` by marking it on
    /// the response. Only the delayed fault-injection path pays this
    /// copy; live responses go through [`Reactor::queue_response`] /
    /// [`Reactor::queue_prepared`].
    fn response_bytes(&mut self, idx: usize, mut response: Response) -> Vec<u8> {
        self.note_response_status(idx, response.status().as_u16());
        let closing = matches!(
            self.conns.get(idx).and_then(Option::as_ref),
            Some(Conn {
                kind: Kind::Client(ClientState {
                    close_after_write: true,
                    ..
                }),
                ..
            })
        );
        if closing {
            mutcon_http::connection::set_close(response.headers_mut());
        }
        if !response.body().is_empty() {
            self.metrics.body_copies.fetch_add(1, Ordering::Relaxed);
        }
        response.to_bytes()
    }

    /// Writes as much of the pending response as the socket accepts —
    /// gathering the contiguous buffer and any shared body slice into
    /// one `writev` — and merges the flush's syscall tallies into the
    /// shared metrics. Returns `false` if the connection was closed.
    fn flush_client(&mut self, idx: usize) -> bool {
        let mut stats = FlushStats::default();
        let outcome = {
            let Some(conn) = self.conns[idx].as_mut() else { return false };
            let fd = conn.stream.as_raw_fd();
            let Kind::Client(client) = &mut conn.kind else { return false };
            if client.write.is_idle() {
                return true;
            }
            let mut sink = BackendSink {
                backend: &mut *self.backend,
                fd,
                token: idx + TOKEN_BASE,
            };
            let outcome = client.write.flush(&mut sink, MAX_RETAINED_CAP, &mut stats);
            if matches!(outcome, Ok(FlushOutcome::Done)) {
                conn.last_activity = Instant::now();
                // A half-closed peer may still have pipelined requests
                // buffered in read_buf; closing is decided centrally in
                // [`Reactor::close_if_finished`] once everything
                // parseable has been served.
            }
            outcome
        };
        self.metrics.note_flush(&stats);
        match outcome {
            Ok(FlushOutcome::Done) => {
                // The response reached the kernel in full: release the
                // admission ticket now, so any write-stall time the
                // flush accumulated is inside the latency sample.
                self.finish_admission(idx);
                true
            }
            Ok(_) => true,
            Err(_) => {
                self.close_client(idx);
                false
            }
        }
    }

    /// Closes a connection once nothing more can be served: the peer
    /// sent EOF (or asked for `Connection: close`), no response is in
    /// flight or owed, and (because [`Reactor::drive_client`] ran to
    /// quiescence first) no complete request remains buffered. Returns
    /// `true` if it closed.
    fn close_if_finished(&mut self, idx: usize) -> bool {
        let Some(conn) = self.conns[idx].as_ref() else { return true };
        let Kind::Client(client) = &conn.kind else { return false };
        if (client.peer_closed || client.close_after_write)
            && client.write.is_idle()
            && matches!(client.pending, Pending::None)
        {
            self.close_client(idx);
            return true;
        }
        false
    }

    /// Recomputes the client's desired readiness interest from its
    /// state. The backend's ledger coalesces: only a net change reaches
    /// the kernel, at the next wait.
    fn update_client_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_ref() else { return };
        let Kind::Client(client) = &conn.kind else { return };
        let interest = if client.write.has_unwritten() {
            Interest::WRITABLE
        } else if !matches!(client.pending, Pending::None) {
            Interest::NONE // response owed; nothing to read or write yet
        } else if client.read_buf.len() >= MAX_BUFFERED {
            Interest::NONE // pipelining back-pressure
        } else {
            Interest::READABLE
        };
        self.backend.set_interest(idx + TOKEN_BASE, interest);
    }

    /// Queues a response on a client without driving the connection
    /// further (the caller decides when to flush/resume). The head is
    /// rendered straight into the connection's reusable write buffer;
    /// bodies at most [`INLINE_BODY`] bytes are inlined behind it (one
    /// contiguous `write`, counted as a body copy), larger ones ride as
    /// a shared slice gathered by `writev` — zero copies.
    fn queue_response(&mut self, idx: usize, mut response: Response) {
        self.note_response_status(idx, response.status().as_u16());
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let Kind::Client(client) = &mut conn.kind else { return };
        if client.close_after_write {
            mutcon_http::connection::set_close(response.headers_mut());
        }
        client.pending = Pending::None;
        debug_assert!(client.write.is_idle(), "one response in flight at a time");
        let buf = client.write.buf_mut();
        response.write_head(buf);
        buf.extend_from_slice(b"\r\n");
        let body = response.body();
        if !body.is_empty() {
            if body.len() <= INLINE_BODY {
                buf.extend_from_slice(body);
                self.metrics.body_copies.fetch_add(1, Ordering::Relaxed);
            } else {
                client.write.set_body(body.clone());
            }
        }
    }

    /// Queues a pre-serialized response: the stored head (and the
    /// per-response extras) are appended to the reusable write buffer,
    /// the shared body is attached untouched. This path never copies
    /// body bytes, whatever their size — the zero-copy cache hit.
    fn queue_prepared(&mut self, idx: usize, prepared: PreparedResponse) {
        self.note_response_status(idx, StatusCode::OK.as_u16());
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let Kind::Client(client) = &mut conn.kind else { return };
        client.pending = Pending::None;
        debug_assert!(client.write.is_idle(), "one response in flight at a time");
        let buf = client.write.buf_mut();
        buf.extend_from_slice(&prepared.head);
        buf.extend_from_slice(prepared.extra);
        if client.close_after_write {
            buf.extend_from_slice(b"connection: close\r\n");
        }
        buf.extend_from_slice(b"\r\n");
        client.write.set_body(prepared.body);
    }

    /// Consults the reactor-local L1 for `request`. On a validated hit
    /// the prepared response is queued and `true` is returned — the
    /// service was never called and no shard lock was touched. A stale
    /// slot (version moved) is dropped, counted, and falls through to
    /// the service, which refills via
    /// [`ServiceResult::RespondCacheable`].
    fn l1_try_serve(&mut self, idx: usize, request: &Request) -> bool {
        if self.l1.is_none() {
            return false;
        }
        let Some(key) = self.service.l1_key(request) else {
            return false;
        };
        let generation = self.service.l1_generation();
        let Some(l1) = self.l1.as_mut() else {
            return false;
        };
        let versioned = match l1.lookup(key, generation) {
            L1Lookup::Hit(versioned) => versioned,
            L1Lookup::Stale => {
                self.metrics.l1_stale_rejects.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            L1Lookup::Miss => return false,
        };
        let Some(prepared) = self.service.l1_serve(request, &versioned) else {
            return false;
        };
        self.queue_prepared(idx, prepared);
        self.metrics.l1_hits.fetch_add(1, Ordering::Relaxed);
        // Post-serve audit: a bump that landed between revalidation and
        // the queue is a response that raced an invalidation out the
        // door. The protocol tolerates it (it is exactly the Δ window
        // the paper trades on) but the count makes the window
        // measurable — and it must be 0 in every steady-state run.
        if versioned.handle.load(Ordering::Acquire) != versioned.stamp {
            self.metrics.l1_stale_serves.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Installs a shared-cache hit's versioned copy into the L1 so the
    /// next request for the key short-circuits. Keyed by the service's
    /// [`Service::l1_key`]; probe-window evictions are folded into the
    /// shared counters.
    fn l1_refill(&mut self, request: &Request, versioned: VersionedEntry) {
        let Some(key) = self.service.l1_key(request) else {
            return;
        };
        let Some(l1) = self.l1.as_mut() else { return };
        let before = l1.evictions();
        l1.insert(key, versioned);
        let evicted = l1.evictions() - before;
        self.metrics.l1_refills.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.metrics.l1_evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Files a cache miss with the pool: coalesces onto an identical
    /// in-flight fetch or starts a new one. On synchronous failure the
    /// error response is queued on the client (not flushed), so
    /// [`Reactor::drive_client_inner`] continues iteratively.
    fn submit_upstream(
        &mut self,
        client_idx: usize,
        addr: SocketAddr,
        request: &Request,
        finish: FinishUpstream,
    ) {
        let wire = request.to_bytes();
        let waiter = Waiting {
            client: client_idx,
            finish,
        };
        let submitted = self.pool.submit(addr, wire, waiter);
        if matches!(submitted, Submit::Coalesced(_)) {
            self.metrics.pool_coalesced.fetch_add(1, Ordering::Relaxed);
        }
        let job = submitted.job();
        if let Some(conn) = self.conns[client_idx].as_mut() {
            if let Kind::Client(client) = &mut conn.kind {
                client.pending = Pending::Upstream(job);
            }
        }
        if matches!(submitted, Submit::New(_)) {
            self.pump_origin(addr);
        }
    }

    /// Starts queued fetches for `addr` on whatever capacity exists:
    /// parked keep-alive connections first, then fresh sockets up to the
    /// per-origin cap. Jobs beyond capacity stay queued; completions
    /// call back here.
    fn pump_origin(&mut self, addr: SocketAddr) {
        while let Some(job) = self.pool.front_queued(addr) {
            if let Some(conn_idx) = self.pool.claim_idle(addr) {
                self.metrics.pool_reuses.fetch_add(1, Ordering::Relaxed);
                self.pool.pop_queued(addr);
                self.pool.assign(job, conn_idx);
                if let Some(conn) = self.conns[conn_idx].as_mut() {
                    if let Kind::Upstream(up) = &mut conn.kind {
                        up.job = Some(job);
                        up.written = 0;
                        up.read_buf.clear();
                        up.parser = ResponseParser::new();
                        up.fetch_started = Some(Instant::now());
                    }
                    conn.last_activity = Instant::now();
                }
                // The parked socket is almost certainly writable: push
                // the request now instead of waiting for a poll round.
                self.upstream_writable(conn_idx);
            } else if self.pool.can_open(addr) {
                match connect_nonblocking(addr) {
                    Ok(stream) => {
                        let (rbuf, from_pool) = self.bufs.take();
                        if from_pool {
                            self.metrics.buf_reuses.fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.metrics.buf_allocs.fetch_add(1, Ordering::Relaxed);
                        }
                        let idx = self.alloc_slot();
                        if self
                            .backend
                            .register(stream.as_raw_fd(), idx + TOKEN_BASE, Interest::WRITABLE)
                            .is_err()
                        {
                            self.free.push(idx);
                            self.pool.pop_queued(addr);
                            let err = io::Error::new(
                                io::ErrorKind::Other,
                                "cannot register upstream socket",
                            );
                            self.pool.record_fetch(addr, Duration::ZERO, false);
                            self.overload_dirty = true;
                            if let Some(j) = self.pool.complete(job) {
                                self.deliver(j, Err(err));
                            }
                            continue;
                        }
                        self.conns[idx] = Some(Conn {
                            stream,
                            last_activity: Instant::now(),
                            kind: Kind::Upstream(UpstreamState {
                                addr,
                                job: Some(job),
                                written: 0,
                                read_buf: BytesMut::from_vec(rbuf),
                                parser: ResponseParser::new(),
                                connected: false,
                                served: 0,
                                fetch_started: Some(Instant::now()),
                            }),
                        });
                        self.pool.pop_queued(addr);
                        self.pool.assign(job, idx);
                        self.pool.note_opened(addr);
                        self.metrics.pool_opened.fetch_add(1, Ordering::Relaxed);
                        // The connect concludes via EPOLLOUT.
                    }
                    Err(e) => {
                        self.pool.pop_queued(addr);
                        // A synchronous connect failure is the strongest
                        // overload signal there is: collapse the cap.
                        self.pool.record_fetch(addr, Duration::ZERO, false);
                        self.overload_dirty = true;
                        if let Some(j) = self.pool.complete(job) {
                            self.deliver(j, Err(e));
                        }
                        continue;
                    }
                }
            } else {
                break; // at the per-origin cap; completions re-pump
            }
        }
    }

    fn upstream_writable(&mut self, idx: usize) {
        // Split borrows: the connection lives in `conns`, its request
        // bytes in the pool's job.
        let (conns, pool) = (&mut self.conns, &self.pool);
        let Some(conn) = conns[idx].as_mut() else { return };
        let fd = conn.stream.as_raw_fd();
        let Kind::Upstream(up) = &mut conn.kind else { return };
        if !up.connected {
            // Writability concludes the nonblocking connect; SO_ERROR
            // says how it went.
            match conn.stream.take_error() {
                Ok(None) => up.connected = true,
                Ok(Some(e)) | Err(e) => {
                    self.upstream_broken(idx, e, true);
                    return;
                }
            }
        }
        let Some(job) = up.job else {
            return; // parked idle; nothing to write
        };
        let Some(request) = pool.job(job).map(|j| &j.request[..]) else {
            return;
        };
        let mut broken: Option<io::Error> = None;
        while up.written < request.len() {
            match self.backend.write(fd, idx + TOKEN_BASE, &request[up.written..]) {
                Ok(0) => {
                    broken = Some(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "origin closed mid-request",
                    ));
                    break;
                }
                Ok(n) => up.written += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Partial write: wait for writability.
                    self.backend.set_interest(idx + TOKEN_BASE, Interest::WRITABLE);
                    return;
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    broken = Some(e);
                    break;
                }
            }
        }
        if let Some(err) = broken {
            self.upstream_broken(idx, err, true);
            return;
        }
        conn.last_activity = Instant::now();
        self.backend.set_interest(idx + TOKEN_BASE, Interest::READABLE);
    }

    fn upstream_readable(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let fd = conn.stream.as_raw_fd();
        let Kind::Upstream(up) = &mut conn.kind else { return };
        if up.job.is_none() {
            // A parked idle connection turned readable: the origin
            // closed it (EOF) or sent nonsense — either way the socket
            // is useless; reap it before a job can be assigned to it.
            let err = io::Error::new(io::ErrorKind::BrokenPipe, "pooled origin socket closed");
            self.upstream_broken(idx, err, true);
            return;
        }
        let mut saw_eof = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.backend.read(fd, idx + TOKEN_BASE, &mut chunk) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => up.read_buf.extend_from_slice(&chunk[..n]),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.upstream_broken(idx, e, true);
                    return;
                }
            }
        }
        conn.last_activity = Instant::now();
        match up.parser.advance(&up.read_buf) {
            Ok(Some((response, consumed))) => {
                let leftover = up.read_buf.len() > consumed;
                let reusable = !saw_eof && !leftover && response.wants_keep_alive();
                let addr = up.addr;
                let job = up.job.take().expect("checked above");
                up.served += 1;
                let fetch_started = up.fetch_started.take();
                if reusable {
                    // Park for the next fetch to this origin.
                    up.read_buf.clear();
                    up.parser = ResponseParser::new();
                    up.written = 0;
                    self.backend.set_interest(idx + TOKEN_BASE, Interest::READABLE);
                    self.pool.release_idle(addr, idx, Instant::now());
                } else {
                    // One-shot connection (origin said close, or the
                    // stream is already at EOF).
                    self.backend.deregister(idx + TOKEN_BASE);
                    if let Some(mut gone) = self.conns[idx].take() {
                        if let Kind::Upstream(dead) = &mut gone.kind {
                            self.recycle_upstream_buf(dead);
                        }
                    }
                    self.freed_this_batch.push(idx);
                    self.pool.note_closed(addr);
                }
                // Feed the fetch's latency to the adaptive cap before
                // re-pumping, so the pump sees the updated limit.
                let elapsed = fetch_started.map(|t| t.elapsed()).unwrap_or_default();
                self.pool.record_fetch(addr, elapsed, true);
                self.overload_dirty = true;
                if let Some(j) = self.pool.complete(job) {
                    self.deliver(j, Ok(response));
                }
                self.pump_origin(addr);
            }
            Ok(None) if saw_eof => {
                let err = io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "origin closed mid-response",
                );
                self.upstream_broken(idx, err, true);
            }
            Ok(None) => {}
            Err(e) => {
                let err = io::Error::new(io::ErrorKind::InvalidData, e);
                self.upstream_broken(idx, err, true);
            }
        }
    }

    /// Tears down an upstream connection that can no longer serve. A
    /// *reused* pooled socket that died before yielding a single
    /// response byte was closed by the origin while parked — its job is
    /// retried once on a fresh socket (unless `allow_retry` is false,
    /// e.g. a timeout: the origin is slow, not the socket stale);
    /// everything else fails the job to its waiters.
    fn upstream_broken(&mut self, idx: usize, err: io::Error, allow_retry: bool) {
        let Some(mut conn) = self.conns[idx].take() else { return };
        self.backend.deregister(idx + TOKEN_BASE);
        self.freed_this_batch.push(idx);
        let Kind::Upstream(up) = &mut conn.kind else { return };
        let addr = up.addr;
        self.pool.note_closed(addr);
        match up.job {
            None => {
                // Died while parked: just forget it.
                self.recycle_upstream_buf(up);
                self.pool.forget_idle(idx);
                drop(conn);
            }
            Some(job) => {
                let got_bytes = !up.read_buf.is_empty() || up.parser.in_progress();
                let served = up.served;
                let fetch_started = up.fetch_started.take();
                self.recycle_upstream_buf(up);
                drop(conn); // closes the socket before any retry connects
                if allow_retry && self.pool.retry_eligible(job, served, got_bytes) {
                    // A stale parked socket isn't overload; the retry's
                    // own completion will produce the sample.
                    self.metrics.pool_retries.fetch_add(1, Ordering::Relaxed);
                    self.pool.requeue_for_retry(job);
                } else {
                    let elapsed = fetch_started.map(|t| t.elapsed()).unwrap_or_default();
                    self.pool.record_fetch(addr, elapsed, false);
                    self.overload_dirty = true;
                    if let Some(j) = self.pool.complete(job) {
                        self.deliver(j, Err(err));
                    }
                }
            }
        }
        self.pump_origin(addr);
    }

    /// Hands a finished job's outcome to every waiter, in arrival order.
    /// All but the last waiter receive clones.
    fn deliver(&mut self, job: Job<Waiting>, result: io::Result<Response>) {
        let mut waiters = job.waiters;
        match result {
            Ok(response) => {
                let last = waiters.pop();
                for waiter in waiters {
                    let reply = (waiter.finish)(Ok(response.clone()));
                    self.complete_client(waiter.client, reply);
                }
                if let Some(waiter) = last {
                    let reply = (waiter.finish)(Ok(response));
                    self.complete_client(waiter.client, reply);
                }
            }
            Err(err) => {
                for waiter in waiters {
                    let reply = (waiter.finish)(Err(clone_err(&err)));
                    self.complete_client(waiter.client, reply);
                }
            }
        }
    }

    /// Delivers an asynchronously produced reply (upstream completion)
    /// to a client and resumes the connection — unless that client is
    /// the one currently being driven, in which case the reply is only
    /// queued and the active drive loop flushes it (keeping pipelined
    /// bursts iterative instead of recursive).
    fn complete_client(&mut self, idx: usize, reply: Reply) {
        if self.conns[idx].is_none() {
            return; // client gone; drop the reply
        }
        match reply {
            Reply::Full(response) => self.queue_response(idx, response),
            Reply::Prepared(prepared) => self.queue_prepared(idx, prepared),
        }
        if self.driving == Some(idx) {
            return;
        }
        self.resume_client(idx);
    }

    /// Fires due delayed responses.
    fn fire_timers(&mut self) {
        if self.delayed == 0 {
            return;
        }
        let now = Instant::now();
        let due: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(idx, conn)| {
                let conn = conn.as_ref()?;
                match &conn.kind {
                    Kind::Client(ClientState {
                        pending: Pending::Delayed { at, .. },
                        ..
                    }) if *at <= now => Some(idx),
                    _ => None,
                }
            })
            .collect();
        for idx in due {
            let Some(conn) = self.conns[idx].as_mut() else { continue };
            let Kind::Client(client) = &mut conn.kind else { continue };
            let Pending::Delayed { response, .. } =
                std::mem::replace(&mut client.pending, Pending::None)
            else {
                continue;
            };
            self.delayed -= 1;
            client.write.buf_mut().extend_from_slice(&response);
            self.resume_client(idx);
        }
    }

    /// Closes connections that have made no progress in a long time and
    /// reaps long-idle pooled origin sockets.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let stale: Vec<(usize, bool)> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(idx, conn)| {
                let conn = conn.as_ref()?;
                let idle = now.duration_since(conn.last_activity);
                match &conn.kind {
                    Kind::Client(_) if idle > IDLE_TIMEOUT => Some((idx, false)),
                    Kind::Upstream(up) if up.job.is_some() && idle > UPSTREAM_TIMEOUT => {
                        Some((idx, true))
                    }
                    _ => None,
                }
            })
            .collect();
        for (idx, is_upstream) in stale {
            if is_upstream {
                // A timeout is a slow origin, not a stale socket: fail
                // the job outright rather than burning the retry.
                let err = io::Error::new(io::ErrorKind::TimedOut, "origin fetch timed out");
                self.upstream_broken(idx, err, false);
            } else {
                self.close_client(idx);
            }
        }
        // Pooled idle sockets past their keep time.
        for (idx, addr) in self.pool.reap_idle(now, POOL_IDLE_TIMEOUT) {
            if let Some(mut conn) = self.conns[idx].take() {
                self.backend.deregister(idx + TOKEN_BASE);
                if let Kind::Upstream(up) = &mut conn.kind {
                    self.recycle_upstream_buf(up);
                }
                self.freed_this_batch.push(idx);
                self.pool.note_closed(addr);
                drop(conn);
            }
        }
    }

    /// Closes a client connection, detaching it from any fetch it waits
    /// on (the last waiter leaving a queued fetch cancels it) and
    /// returning its buffers to the reactor's pool for the next
    /// connection.
    fn close_client(&mut self, idx: usize) {
        let Some(mut conn) = self.conns[idx].take() else { return };
        self.backend.deregister(idx + TOKEN_BASE);
        self.freed_this_batch.push(idx);
        if let Kind::Client(client) = &mut conn.kind {
            self.clients -= 1;
            self.metrics.conns[self.reactor_index].store(self.clients, Ordering::Relaxed);
            if let Some(ticket) = client.admitted.take() {
                // Abandoned mid-request (or mid-flush): release the
                // slot without feeding the limiter (no clean completion
                // to measure).
                if let Some(part) = self.admission.get_mut(&ticket.partition) {
                    part.in_flight = part.in_flight.saturating_sub(1);
                    self.overload_dirty = true;
                }
            }
            match client.pending {
                Pending::Upstream(job) => {
                    match self.pool.leave(job, |w| w.client == idx) {
                        // Other clients still await the fetch, or a
                        // connection is already fetching (it will finish
                        // and park; the result is discarded).
                        AfterLeave::StillWanted | AfterLeave::Orphaned => {}
                        AfterLeave::Dropped => {}
                    }
                }
                Pending::Delayed { .. } => self.delayed -= 1,
                Pending::None => {}
            }
            self.recycle_client_bufs(client);
        }
        drop(conn);
        self.resume_accepting();
    }

    /// Adopts a freshly installed overload config: one atomic load on
    /// the hot path; on a version bump the pool limiter is swapped (or
    /// removed, restoring the static cap) and every admission
    /// partition's limiter is reconfigured in place, carrying learned
    /// limits instead of resetting them.
    fn sync_overload(&mut self) {
        let version = self.overload.version();
        if version == self.overload_version {
            return;
        }
        self.overload_version = version;
        self.overload_config = self.overload.config();
        match &self.overload_config.pool {
            // Invalid specs can't get here: `install` validates.
            Some(spec) => {
                let _ = self.pool.set_limiter(spec.clone());
            }
            None => self.pool.clear_limiter(MAX_CONNS_PER_ORIGIN),
        }
        match &self.overload_config.admission {
            Some(spec) => {
                for part in self.admission.values_mut() {
                    let _ = part.limiter.reconfigure(spec.clone());
                }
            }
            None => self.admission.clear(),
        }
        self.overload_dirty = true;
    }

    /// Admission control for one parsed request. Returns `true` if the
    /// request may proceed (a ticket is attached to the client); on
    /// `false` a `429 Too Many Requests` has been queued — immediately,
    /// or as a delayed response when shed pacing is configured.
    fn admit_or_shed(&mut self, idx: usize, request: &Request) -> bool {
        let Some(spec) = self.overload_config.admission.clone() else {
            return true;
        };
        let key = partition_of(request.target());
        if !self.admission.contains_key(key) {
            let initial = self.overload_config.admission_initial;
            let Ok(limiter) = Limiter::new(spec, initial) else {
                return true; // validated at install time; defensive
            };
            self.admission.insert(
                Arc::from(key),
                PartitionState {
                    limiter,
                    in_flight: 0,
                    shed: 0,
                },
            );
        }
        let Some((key_arc, _)) = self.admission.get_key_value(key) else {
            return true;
        };
        let key_arc = Arc::clone(key_arc);
        let Some(part) = self.admission.get_mut(key) else {
            return true;
        };
        if part.in_flight < part.limiter.limit() {
            part.in_flight += 1;
            if let Some(conn) = self.conns[idx].as_mut() {
                if let Kind::Client(client) = &mut conn.kind {
                    client.admitted = Some(AdmissionTicket {
                        partition: key_arc,
                        started: Instant::now(),
                        status: None,
                    });
                }
            }
            return true;
        }
        part.shed += 1;
        self.overload_dirty = true;
        let retry = self.overload_config.retry_after_secs;
        let delay = self.overload_config.shed_delay;
        let response = Response::builder(StatusCode::TOO_MANY_REQUESTS)
            .header("retry-after", retry.to_string())
            .build();
        if delay.is_zero() {
            self.overload.note_shed(1);
            self.queue_response(idx, response);
        } else {
            // Pace the retry storm through the existing delayed-response
            // machinery instead of answering instantly.
            self.overload.note_shed_delayed(1);
            let wire = self.response_bytes(idx, response);
            if let Some(conn) = self.conns[idx].as_mut() {
                if let Kind::Client(client) = &mut conn.kind {
                    client.pending = Pending::Delayed {
                        at: Instant::now() + delay,
                        response: wire,
                    };
                    self.delayed += 1;
                }
            }
        }
        false
    }

    /// Records the queued response's status on the client's admission
    /// ticket. The ticket itself is *not* released here: release (and
    /// the limiter's latency sample) happens at flush completion
    /// ([`Reactor::finish_admission`]), so the time spent stalled on an
    /// unwritable client socket is part of the measured latency.
    fn note_response_status(&mut self, idx: usize, status: u16) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let Kind::Client(client) = &mut conn.kind else { return };
        if let Some(ticket) = client.admitted.as_mut() {
            ticket.status = Some(status);
        }
    }

    /// Releases a client's admission ticket once its response is fully
    /// flushed: the partition's in-flight count drops and the limiter
    /// is fed the request's end-to-end service time — queue, service,
    /// upstream *and* client write stalls (5xx count as overload
    /// signals). A ticket whose response is not yet queued (upstream
    /// still in flight) is left alone.
    fn finish_admission(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let Kind::Client(client) = &mut conn.kind else { return };
        let Some(ticket) = client.admitted.as_ref() else {
            return;
        };
        let Some(status) = ticket.status else {
            return; // no response queued yet; the ticket stays charged
        };
        let Some(AdmissionTicket { partition, started, .. }) = client.admitted.take() else {
            return;
        };
        let Some(part) = self.admission.get_mut(&partition) else {
            return; // partition cleared by a config swap mid-request
        };
        let in_flight = part.in_flight;
        part.in_flight = in_flight.saturating_sub(1);
        let latency_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let sample = LimitSample {
            in_flight,
            latency: CoreDuration::from_millis(latency_ms),
            outcome: if status >= 500 {
                LimitOutcome::Overload
            } else {
                LimitOutcome::Success
            },
        };
        part.limiter.on_sample(&sample);
        self.overload_dirty = true;
    }

    /// Gives parked backlog clients a deadline: when accepting has been
    /// paused at the connection bound for longer than `park_deadline`,
    /// drain a batch of parked connections with a static `503` + close
    /// instead of letting them wait forever.
    fn check_park_deadline(&mut self) {
        if self.accepting {
            return;
        }
        let Some(since) = self.paused_since else { return };
        if since.elapsed() < self.overload_config.park_deadline {
            return;
        }
        self.shed_backlog();
        self.paused_since = Some(Instant::now());
    }

    /// Accepts and immediately rejects up to [`PARK_SHED_BATCH`] parked
    /// connections with `503 Service Unavailable` + `Retry-After`.
    fn shed_backlog(&mut self) {
        let head = format!(
            "HTTP/1.1 503 Service Unavailable\r\nretry-after: {}\r\nconnection: close\r\ncontent-length: 0\r\n\r\n",
            self.overload_config.retry_after_secs
        );
        let mut shed: u64 = 0;
        while (shed as usize) < PARK_SHED_BATCH {
            match self.backend.accept(&self.listener, TOKEN_LISTENER) {
                Ok(stream) => {
                    // Best effort: the head fits any fresh socket's send
                    // buffer; a peer that raced away just gets the close.
                    let _ = (&stream).write(head.as_bytes());
                    // Discard whatever the parked client already sent:
                    // closing with unread bytes queued makes the kernel
                    // reset the connection, discarding the 503 in flight.
                    let mut scratch = [0u8; 4096];
                    while matches!((&stream).read(&mut scratch), Ok(1..)) {}
                    shed += 1;
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        if shed > 0 {
            self.overload.note_parked_shed(shed);
            self.overload_dirty = true;
        }
    }

    /// Pushes this reactor's overload snapshot (pool limit, partition
    /// limits, shed counts) to the shared handle when anything changed.
    fn publish_overload(&mut self) {
        if !self.overload_dirty {
            return;
        }
        self.overload_dirty = false;
        let mut partitions: Vec<PartitionSnap> = self
            .admission
            .iter()
            .map(|(key, part)| PartitionSnap {
                partition: key.to_string(),
                limit: part.limiter.limit(),
                in_flight: part.in_flight,
                shed: part.shed,
            })
            .collect();
        partitions.sort_by(|a, b| a.partition.cmp(&b.partition));
        self.overload.publish(
            self.reactor_index,
            ReactorOverloadSnap {
                pool: Some(self.pool.limit_snapshot()),
                partitions,
            },
        );
    }

    /// Returns a closing client's buffers to the pool and refreshes the
    /// shared high-water mark.
    fn recycle_client_bufs(&mut self, client: &mut ClientState) {
        self.bufs.give(client.write.take_buf());
        self.bufs
            .give(std::mem::take(&mut client.read_buf).into_vec());
        self.metrics.note_pool_high_water(self.bufs.high_water());
    }

    /// Returns a closing upstream connection's read buffer to the pool.
    fn recycle_upstream_buf(&mut self, up: &mut UpstreamState) {
        self.bufs.give(std::mem::take(&mut up.read_buf).into_vec());
        self.metrics.note_pool_high_water(self.bufs.high_water());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_response, write_request};
    use mutcon_http::types::{Method, StatusCode};
    use std::io::{Read, Write};

    struct Echo;
    impl Service for Echo {
        fn respond(&self, request: &Request) -> ServiceResult {
            if request.method() != &Method::Get {
                return ServiceResult::Close;
            }
            ServiceResult::Respond(
                Response::ok()
                    .body(request.target().as_bytes().to_vec())
                    .build(),
            )
        }
    }

    fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        write_request(&mut stream, &Request::get(path).build())?;
        let mut buf = BytesMut::new();
        read_response(&mut stream, &mut buf)
    }

    #[test]
    fn serves_requests_and_keep_alive() {
        let server = EventLoop::start("test-echo", Arc::new(Echo)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = BytesMut::new();
        for i in 0..3 {
            let path = format!("/ping/{i}");
            write_request(&mut stream, &Request::get(&path).build()).unwrap();
            let resp = read_response(&mut stream, &mut buf).unwrap();
            assert_eq!(resp.status(), StatusCode::OK);
            assert_eq!(&resp.body()[..], path.as_bytes());
        }
    }

    #[test]
    fn serves_pipelined_requests_in_order() {
        let server = EventLoop::start("test-pipeline", Arc::new(Echo)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Two requests in one write; responses must come back in order.
        let mut wire = Request::get("/first").build().to_bytes();
        wire.extend(Request::get("/second").build().to_bytes());
        stream.write_all(&wire).unwrap();
        let mut buf = BytesMut::new();
        let first = read_response(&mut stream, &mut buf).unwrap();
        let second = read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(&first.body()[..], b"/first");
        assert_eq!(&second.body()[..], b"/second");
    }

    #[test]
    fn connection_close_is_honored() {
        let server = EventLoop::start("test-close", Arc::new(Echo)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_request(
            &mut stream,
            &Request::get("/last").connection_close().build(),
        )
        .unwrap();
        let mut buf = BytesMut::new();
        let resp = read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(&resp.body()[..], b"/last");
        // The server echoes the close decision and hangs up.
        assert!(!resp.wants_keep_alive(), "response must advertise close");
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    }

    #[test]
    fn multiple_reactors_all_serve() {
        let server =
            EventLoop::with_options("test-multi", Arc::new(Echo), 64, 4).unwrap();
        assert_eq!(server.reactor_count(), 4);
        // Enough connections that the kernel spreads them over several
        // listeners; every one must be served regardless of shard.
        for i in 0..32 {
            let resp = get(server.local_addr(), &format!("/conn/{i}")).unwrap();
            assert_eq!(resp.status(), StatusCode::OK);
            assert_eq!(&resp.body()[..], format!("/conn/{i}").as_bytes());
        }
    }

    #[test]
    fn delayed_responses_do_not_block_other_connections() {
        struct Sleepy;
        impl Service for Sleepy {
            fn respond(&self, request: &Request) -> ServiceResult {
                if request.target() == "/slow" {
                    ServiceResult::RespondAfter(
                        Response::ok().body(&b"slow"[..]).build(),
                        Duration::from_millis(300),
                    )
                } else {
                    ServiceResult::Respond(Response::ok().body(&b"fast"[..]).build())
                }
            }
        }
        let server = EventLoop::with_options("test-sleepy", Arc::new(Sleepy), 64, 1).unwrap();

        let mut slow = TcpStream::connect(server.local_addr()).unwrap();
        slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_request(&mut slow, &Request::get("/slow").build()).unwrap();

        // While the slow response is pending, a fast one must complete.
        let started = Instant::now();
        let fast = get(server.local_addr(), "/fast").unwrap();
        assert_eq!(&fast.body()[..], b"fast");
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "fast request was stalled behind the delayed one"
        );

        let mut buf = BytesMut::new();
        let resp = read_response(&mut slow, &mut buf).unwrap();
        assert_eq!(&resp.body()[..], b"slow");
    }

    #[test]
    fn connection_bound_parks_clients_in_backlog() {
        // One reactor so the two capacity slots are a single bound.
        let server = EventLoop::with_options("test-bound", Arc::new(Echo), 2, 1).unwrap();
        // Fill both slots with idle keep-alive connections.
        let _a = TcpStream::connect(server.local_addr()).unwrap();
        let _b = TcpStream::connect(server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // A third client connects (kernel backlog) but is not served
        // until a slot frees.
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_request(&mut c, &Request::get("/queued").build()).unwrap();
        drop(_a); // free a slot
        let mut buf = BytesMut::new();
        let resp = read_response(&mut c, &mut buf).unwrap();
        assert_eq!(&resp.body()[..], b"/queued");
    }

    #[test]
    fn half_closed_peer_still_gets_all_pipelined_responses() {
        // Write two requests, shut down the write side, then read: both
        // responses must arrive before the server closes.
        let server = EventLoop::start("test-half-close", Arc::new(Echo)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut wire = Request::get("/one").build().to_bytes();
        wire.extend(Request::get("/two").build().to_bytes());
        stream.write_all(&wire).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buf = BytesMut::new();
        let first = read_response(&mut stream, &mut buf).unwrap();
        let second = read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(&first.body()[..], b"/one");
        assert_eq!(&second.body()[..], b"/two");
        // And then the server closes the drained connection.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    }

    #[test]
    fn malformed_input_closes_the_connection() {
        let server = EventLoop::start("test-garbage", Arc::new(Echo)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(b"definitely not http\r\n\r\n").unwrap();
        let mut sink = Vec::new();
        let n = stream.read_to_end(&mut sink).unwrap();
        assert_eq!(n, 0, "server must close without a response");
    }

    #[test]
    fn conns_env_parsing() {
        assert_eq!(conns_from(None), DEFAULT_MAX_CONNS);
        assert_eq!(conns_from(Some("64")), 64);
        assert_eq!(conns_from(Some(" 2048 ")), 2048);
        assert_eq!(conns_from(Some("0")), DEFAULT_MAX_CONNS);
        assert_eq!(conns_from(Some("junk")), DEFAULT_MAX_CONNS);
    }

    #[test]
    fn l1_env_parsing() {
        assert_eq!(l1_objects_from(None), DEFAULT_L1_OBJECTS);
        assert_eq!(l1_objects_from(Some("64")), 64);
        assert_eq!(l1_objects_from(Some(" 256 ")), 256);
        // An explicit 0 disables the L1 — it is not a parse error.
        assert_eq!(l1_objects_from(Some("0")), 0);
        assert_eq!(l1_objects_from(Some("junk")), DEFAULT_L1_OBJECTS);
    }

    #[test]
    fn refresh_workers_env_parsing() {
        assert_eq!(refresh_workers_from(None), DEFAULT_REFRESH_WORKERS);
        assert_eq!(refresh_workers_from(Some("1")), 1);
        assert_eq!(refresh_workers_from(Some(" 8 ")), 8);
        assert_eq!(refresh_workers_from(Some("0")), DEFAULT_REFRESH_WORKERS);
        assert_eq!(refresh_workers_from(Some("junk")), DEFAULT_REFRESH_WORKERS);
    }

    #[test]
    fn admin_token_env_parsing() {
        assert_eq!(admin_token_from(None), None);
        assert_eq!(admin_token_from(Some("")), None);
        assert_eq!(admin_token_from(Some("   ")), None);
        assert_eq!(admin_token_from(Some("s3cret")), Some("s3cret".to_owned()));
        assert_eq!(admin_token_from(Some(" s3cret ")), Some("s3cret".to_owned()));
    }

    #[test]
    fn small_connection_bounds_cap_the_reactor_count() {
        // A bound of 2 must mean 2 connections total, not 2 per shard:
        // the reactor count collapses to the bound.
        let server = EventLoop::with_options("test-tiny-bound", Arc::new(Echo), 2, 8).unwrap();
        assert_eq!(server.reactor_count(), 2);
        assert_eq!(get(server.local_addr(), "/ok").unwrap().status(), StatusCode::OK);
    }

    #[test]
    fn connection_bound_splits_exactly_across_reactors() {
        // Non-divisible bounds must neither lose nor invent slots: the
        // shares sum to the bound, every reactor keeps at least one
        // slot, and no two shares differ by more than one.
        for (max_conns, reactors) in
            [(1024, 3), (7, 4), (5, 5), (1023, 64), (2, 2), (1, 1), (64, 7), (100, 9)]
        {
            let shares = split_conns(max_conns, reactors);
            assert_eq!(shares.len(), reactors);
            assert_eq!(
                shares.iter().sum::<usize>(),
                max_conns,
                "split of {max_conns} across {reactors} lost or invented slots: {shares:?}"
            );
            assert!(shares.iter().all(|&s| s >= 1), "{shares:?}");
            let (min, max) = (
                shares.iter().min().copied().unwrap(),
                shares.iter().max().copied().unwrap(),
            );
            assert!(max - min <= 1, "uneven split {shares:?}");
            // The extra slots go to the first shards, deterministically.
            assert!(shares.windows(2).all(|w| w[0] >= w[1]), "{shares:?}");
        }
    }

    #[test]
    fn parked_clients_get_a_503_after_the_deadline() {
        // At the connection bound, further clients sit in the kernel
        // backlog. They must not wait forever: once the park deadline
        // lapses the reactor drains them with a clean `503`.
        let overload = Arc::new(OverloadControl::new(OverloadConfig {
            park_deadline: Duration::from_millis(50),
            ..OverloadConfig::default()
        }));
        let server = EventLoop::with_overload(
            "test-park-deadline",
            Arc::new(Echo),
            2,
            1,
            Arc::new(EngineMetrics::new()),
            None,
            Arc::clone(&overload),
        )
        .unwrap();
        // Fill both slots with idle keep-alive connections.
        let _a = TcpStream::connect(server.local_addr()).unwrap();
        let _b = TcpStream::connect(server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // The third client is parked; instead of stalling forever it
        // must receive a 503 with a Retry-After hint, then EOF.
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_request(&mut c, &Request::get("/parked").build()).unwrap();
        let mut buf = BytesMut::new();
        let resp = read_response(&mut c, &mut buf).unwrap();
        assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(resp.headers().get("retry-after"), Some("1"));
        let mut rest = Vec::new();
        assert_eq!(c.read_to_end(&mut rest).unwrap(), 0, "then a clean close");
        assert!(overload.parked_shed() >= 1);
        // The slots themselves were untouched: freeing one serves a
        // newly connected client normally.
        drop(_a);
        let resp = get(server.local_addr(), "/after").unwrap();
        assert_eq!(&resp.body()[..], b"/after");
    }

    #[test]
    fn engine_metrics_track_accepts_and_open_connections() {
        let metrics = Arc::new(EngineMetrics::new());
        let server =
            EventLoop::with_metrics("test-metrics", Arc::new(Echo), 64, 2, Arc::clone(&metrics))
                .unwrap();
        assert_eq!(metrics.reactor_count(), 2);
        assert!(Arc::ptr_eq(server.metrics(), &metrics));
        assert_eq!(metrics.reactor_accepted().iter().sum::<u64>(), 0);
        for i in 0..6 {
            let resp = get(server.local_addr(), &format!("/m/{i}")).unwrap();
            assert_eq!(resp.status(), StatusCode::OK);
        }
        // Each `get` opened (and dropped) one connection; the reactors
        // notice the EOFs asynchronously.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let accepted: u64 = metrics.reactor_accepted().iter().sum();
            let open: usize = metrics.reactor_connections().iter().sum();
            if accepted == 6 && open == 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "metrics never settled: accepted {accepted}, open {open}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// An echo service with a shared cache and a reactor-local L1: the
    /// first GET for a path stores + refills, later GETs must be L1
    /// hits, and a store invalidates every reactor's copy.
    struct CachedEcho {
        cache: crate::cache::ShardedCache,
    }

    impl CachedEcho {
        fn prepared(hit: &crate::cache::VersionedEntry) -> PreparedResponse {
            PreparedResponse {
                head: hit.entry.head().clone(),
                extra: b"x-cache: l1\r\n",
                body: hit.entry.body().clone(),
            }
        }
    }

    impl Service for CachedEcho {
        fn respond(&self, request: &Request) -> ServiceResult {
            let path = request.target();
            if let Some(hit) = self.cache.get_versioned(path) {
                return ServiceResult::RespondCacheable(CachedEcho::prepared(&hit), hit);
            }
            let entry = crate::cache::CacheEntry::new(
                Bytes::from(format!("body:{path}").into_bytes()),
                mutcon_core::time::Timestamp::from_millis(1),
                None,
                None,
            );
            self.cache.insert(path, entry);
            let hit = self.cache.get_versioned(path).expect("just stored");
            ServiceResult::RespondCacheable(CachedEcho::prepared(&hit), hit)
        }

        fn l1_capacity(&self) -> usize {
            32
        }

        fn l1_generation(&self) -> u64 {
            self.cache.generation()
        }

        fn l1_key<'r>(&self, request: &'r Request) -> Option<&'r str> {
            Some(request.target())
        }

        fn l1_serve(
            &self,
            _request: &Request,
            hit: &crate::cache::VersionedEntry,
        ) -> Option<PreparedResponse> {
            Some(CachedEcho::prepared(hit))
        }
    }

    #[test]
    fn l1_serves_validated_hits_and_invalidates_on_store() {
        let metrics = Arc::new(EngineMetrics::new());
        let service = Arc::new(CachedEcho {
            cache: crate::cache::ShardedCache::new(None),
        });
        let server = EventLoop::with_metrics(
            "test-l1",
            Arc::clone(&service) as Arc<dyn Service>,
            64,
            1,
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = BytesMut::new();
        // First GET: shared-cache path, refills the reactor's L1.
        write_request(&mut stream, &Request::get("/obj").build()).unwrap();
        let first = read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(&first.body()[..], b"body:/obj");
        assert_eq!(metrics.l1_hits(), 0);
        assert!(metrics.l1_refills() >= 1);
        // Second GET on the same (only) reactor: must be an L1 hit with
        // identical bytes, and no stale serve.
        write_request(&mut stream, &Request::get("/obj").build()).unwrap();
        let second = read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(&second.body()[..], b"body:/obj");
        assert_eq!(second.headers().get("x-cache"), Some("l1"));
        assert_eq!(metrics.l1_hits(), 1);
        assert_eq!(metrics.l1_stale_serves(), 0);
        // A store bumps the path's version: the L1 copy must be
        // rejected and the fresh body served.
        service.cache.insert(
            "/obj",
            crate::cache::CacheEntry::new(
                Bytes::from_static(b"fresh"),
                mutcon_core::time::Timestamp::from_millis(2),
                None,
                None,
            ),
        );
        write_request(&mut stream, &Request::get("/obj").build()).unwrap();
        let third = read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(&third.body()[..], b"fresh");
        assert_eq!(metrics.l1_hits(), 1, "stale copy must not count as a hit");
        assert_eq!(metrics.l1_stale_rejects(), 1);
        // The refill from the fresh store serves the next request.
        write_request(&mut stream, &Request::get("/obj").build()).unwrap();
        let fourth = read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(&fourth.body()[..], b"fresh");
        assert_eq!(metrics.l1_hits(), 2);
        assert_eq!(metrics.l1_stale_serves(), 0);
    }

    #[test]
    fn generation_bump_clears_the_l1() {
        let metrics = Arc::new(EngineMetrics::new());
        let service = Arc::new(CachedEcho {
            cache: crate::cache::ShardedCache::new(None),
        });
        let server = EventLoop::with_metrics(
            "test-l1-gen",
            Arc::clone(&service) as Arc<dyn Service>,
            64,
            1,
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = BytesMut::new();
        for _ in 0..2 {
            write_request(&mut stream, &Request::get("/gen").build()).unwrap();
            read_response(&mut stream, &mut buf).unwrap();
        }
        assert_eq!(metrics.l1_hits(), 1);
        // A bulk invalidation (rule swap / epoch adoption) empties the
        // L1 wholesale: the next request goes back to the shared cache
        // (a refill, not a hit, and not a stale reject either — the
        // whole map was dropped).
        service.cache.bump_generation();
        write_request(&mut stream, &Request::get("/gen").build()).unwrap();
        read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(metrics.l1_hits(), 1);
        assert!(metrics.l1_refills() >= 2);
    }

    #[test]
    fn reactors_env_parsing() {
        assert_eq!(reactors_from(None), default_reactors());
        assert_eq!(reactors_from(Some("4")), 4);
        assert_eq!(reactors_from(Some(" 2 ")), 2);
        assert_eq!(reactors_from(Some("0")), default_reactors());
        assert_eq!(reactors_from(Some("junk")), default_reactors());
        assert_eq!(reactors_from(Some("100000")), MAX_REACTORS);
        assert!(default_reactors() >= 1);
    }
}
