//! The readiness-driven connection engine shared by the live origin and
//! the live proxy.
//!
//! One reactor thread owns a nonblocking listener plus every accepted
//! connection and drives them all through per-connection state machines
//! over [`mutcon_sim::reactor`]'s raw-`epoll` poller — no thread per
//! connection, no worker pool. A connection walks this wire diagram:
//!
//! ```text
//!             ┌──────────────────────────────────────────────┐
//!             ▼                                              │ keep-alive /
//! accept ─▶ READING ──request parsed──▶ dispatch             │ pipelined next
//!             │                        │       │             │ request
//!             │ EOF / parse error      │       │ Upstream    │
//!             ▼                        ▼       ▼             │
//!           closed                 WRITING ◀─ AWAITING ──────┤
//!             ▲                        │      ORIGIN         │
//!             │                        │  (nonblocking       │
//!             └────────peer gone───────┘   connect → write   │
//!                                          req → read resp)──┘
//! ```
//!
//! *READING* feeds partial reads to the resumable
//! [`mutcon_http::parse::RequestParser`]; a parsed request is handed to
//! the [`Service`], which answers immediately (*WRITING*), after a delay
//! (fault injection), or by fetching from an upstream origin — itself a
//! state machine on a second, nonblocking socket registered with the
//! same poller (*AWAITING ORIGIN*), so a slow origin never stalls the
//! other connections. Responses flush incrementally under `EPOLLOUT`;
//! when the write buffer drains the connection goes back to *READING*
//! (already-buffered pipelined requests are served without another
//! syscall).
//!
//! Concurrent-connection capacity is bounded by [`max_conns`]
//! (`MUTCON_LIVE_CONNS`, default [`DEFAULT_MAX_CONNS`]): at the bound
//! the listener's readiness interest is dropped, parking further clients
//! in the kernel accept backlog until a slot frees — clients queue
//! instead of being refused.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use mutcon_http::message::{Request, Response};
use mutcon_http::parse::{RequestParser, ResponseParser};
use mutcon_sim::reactor::{connect_nonblocking, Events, Interest, Poller, Waker};

/// Environment variable bounding concurrent connections per event loop.
pub const CONNS_ENV: &str = "MUTCON_LIVE_CONNS";

/// Default concurrent-connection bound. Sized for "hundreds of sockets
/// through one reactor" with headroom; raise `MUTCON_LIVE_CONNS` for
/// load tests beyond it.
pub const DEFAULT_MAX_CONNS: usize = 1024;

/// Close connections with no traffic for this long.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);
/// Fail upstream fetches that make no progress for this long (matches
/// the old blocking client's per-operation timeout ballpark).
const UPSTREAM_TIMEOUT: Duration = Duration::from_secs(5);
/// Stop draining a client socket while this much input is already
/// buffered ahead of the state machine (pipelining back-pressure).
const MAX_BUFFERED: usize = 256 * 1024;
/// Poll-loop tick when nothing else bounds the wait (idle sweeping,
/// shutdown responsiveness).
const TICK: Duration = Duration::from_millis(200);

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKER: usize = 1;
const TOKEN_BASE: usize = 2;

/// Parses a `MUTCON_LIVE_CONNS`-style override.
fn conns_from(raw: Option<&str>) -> usize {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_MAX_CONNS)
}

/// The concurrent-connection bound: `MUTCON_LIVE_CONNS` if set to a
/// positive integer, otherwise [`DEFAULT_MAX_CONNS`].
pub fn max_conns() -> usize {
    conns_from(std::env::var(CONNS_ENV).ok().as_deref())
}

/// Completion callback for an upstream fetch: receives the origin's
/// response (or the I/O error) and produces the response for the waiting
/// client.
pub type FinishUpstream = Box<dyn FnOnce(io::Result<Response>) -> Response + Send>;

/// What a [`Service`] wants done with a parsed request.
pub enum ServiceResult {
    /// Write this response now.
    Respond(Response),
    /// Write this response after a delay, without blocking the reactor
    /// (fault injection: the origin's `Stall` mode).
    RespondAfter(Response, Duration),
    /// Fetch from an upstream server first; `finish` turns its response
    /// into the client's.
    Upstream {
        /// Upstream address (the origin).
        addr: SocketAddr,
        /// Request to send upstream.
        request: Request,
        /// Builds the client response from the upstream outcome.
        finish: FinishUpstream,
    },
    /// Drop the connection without responding.
    Close,
}

impl std::fmt::Debug for ServiceResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ServiceResult::Respond(_) => "Respond",
            ServiceResult::RespondAfter(..) => "RespondAfter",
            ServiceResult::Upstream { .. } => "Upstream",
            ServiceResult::Close => "Close",
        };
        f.write_str(name)
    }
}

/// Request handler plugged into an [`EventLoop`]. Runs on the reactor
/// thread, so implementations must not block (upstream I/O goes through
/// [`ServiceResult::Upstream`], delays through
/// [`ServiceResult::RespondAfter`]).
pub trait Service: Send + Sync + 'static {
    /// Whether to keep a freshly accepted connection (fault injection
    /// hooks return `false` to drop it on arrival).
    fn accept_connection(&self) -> bool {
        true
    }

    /// Handles one parsed request.
    fn respond(&self, request: &Request) -> ServiceResult;
}

/// A running reactor: one thread, one listener, many connections.
/// Shuts down (waking and joining the reactor thread) on drop.
pub struct EventLoop {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    thread: Option<JoinHandle<()>>,
}

impl EventLoop {
    /// Binds a localhost listener on an ephemeral port and starts the
    /// reactor thread with the [`max_conns`] connection bound.
    ///
    /// # Errors
    ///
    /// Propagates socket and epoll setup failures.
    pub fn start(name: &str, service: Arc<dyn Service>) -> io::Result<EventLoop> {
        EventLoop::with_capacity(name, service, max_conns())
    }

    /// [`EventLoop::start`] with an explicit connection bound.
    ///
    /// # Errors
    ///
    /// Propagates socket and epoll setup failures.
    pub fn with_capacity(
        name: &str,
        service: Arc<dyn Service>,
        max_conns: usize,
    ) -> io::Result<EventLoop> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        let waker = Waker::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        poller.register(waker.as_raw_fd(), TOKEN_WAKER, Interest::READABLE)?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let reactor = Reactor {
            poller,
            listener,
            waker: waker.clone(),
            service,
            shutdown: Arc::clone(&shutdown),
            max_conns: max_conns.max(1),
            conns: Vec::new(),
            free: Vec::new(),
            clients: 0,
            accepting: true,
            last_sweep: Instant::now(),
            freed_this_batch: Vec::new(),
            delayed: 0,
        };
        let thread = std::thread::Builder::new()
            .name(name.to_owned())
            .spawn(move || reactor.run())?;
        Ok(EventLoop {
            addr,
            shutdown,
            waker,
            thread: Some(thread),
        })
    }

    /// The listener's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl std::fmt::Debug for EventLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoop").field("addr", &self.addr).finish()
    }
}

/// What a client connection is waiting on besides socket readiness.
enum Pending {
    /// Nothing: reading the next request.
    None,
    /// An upstream fetch (slab index of the upstream connection).
    Upstream(usize),
    /// A deferred response (fault injection).
    Delayed { at: Instant, response: Vec<u8> },
}

struct ClientState {
    parser: RequestParser,
    read_buf: BytesMut,
    write_buf: Vec<u8>,
    written: usize,
    pending: Pending,
    /// Peer sent EOF; close once the in-flight response is flushed.
    peer_closed: bool,
}

struct UpstreamState {
    /// Slab index of the client connection awaiting this fetch.
    client: usize,
    request: Vec<u8>,
    written: usize,
    read_buf: BytesMut,
    parser: ResponseParser,
    finish: Option<FinishUpstream>,
    connected: bool,
}

enum Kind {
    Client(ClientState),
    Upstream(UpstreamState),
}

struct Conn {
    stream: TcpStream,
    interest: Interest,
    last_activity: Instant,
    kind: Kind,
}

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    waker: Waker,
    service: Arc<dyn Service>,
    shutdown: Arc<AtomicBool>,
    max_conns: usize,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Client connections currently open (upstream sockets don't count
    /// against the accept bound; there is at most one per client).
    clients: usize,
    accepting: bool,
    last_sweep: Instant,
    /// Slots freed while processing the current event batch. Reuse is
    /// deferred to the end of the batch so a stale event queued for a
    /// closed connection's token can never be applied to a new
    /// connection occupying the same slot (it finds `None` instead).
    freed_this_batch: Vec<usize>,
    /// Number of connections holding a `Pending::Delayed` response, so
    /// the hot loop skips the timer scans entirely when (as in every
    /// non-fault-injected run) there are none.
    delayed: usize,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        while !self.shutdown.load(Ordering::SeqCst) {
            let timeout = self.next_timeout();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            for event in events.iter() {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.waker.drain(),
                    token => self.conn_event(token - TOKEN_BASE, event),
                }
            }
            // Freed slots become reusable only once every event of the
            // batch has been applied (see `freed_this_batch`).
            self.free.append(&mut self.freed_this_batch);
            self.fire_timers();
            if self.last_sweep.elapsed() >= Duration::from_secs(1) {
                self.sweep_idle();
                self.last_sweep = Instant::now();
            }
        }
        // Dropping the slab closes every socket.
    }

    /// The wait bound: the nearest delayed-response deadline, else the
    /// housekeeping tick. O(1) unless fault injection has responses
    /// actually pending.
    fn next_timeout(&self) -> Duration {
        if self.delayed == 0 {
            return TICK;
        }
        let now = Instant::now();
        let mut timeout = TICK;
        for conn in self.conns.iter().flatten() {
            if let Kind::Client(client) = &conn.kind {
                if let Pending::Delayed { at, .. } = &client.pending {
                    timeout = timeout.min(at.saturating_duration_since(now));
                }
            }
        }
        timeout
    }

    fn alloc_slot(&mut self) -> usize {
        match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        }
    }

    fn pause_accepting(&mut self) {
        if self.accepting {
            self.accepting = false;
            let _ = self
                .poller
                .modify(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::NONE);
        }
    }

    fn resume_accepting(&mut self) {
        if !self.accepting && self.clients < self.max_conns {
            self.accepting = true;
            let _ = self.poller.modify(
                self.listener.as_raw_fd(),
                TOKEN_LISTENER,
                Interest::READABLE,
            );
        }
    }

    fn accept_ready(&mut self) {
        while self.accepting {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if !self.service.accept_connection() {
                        continue; // dropped on arrival (fault injection)
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let idx = self.alloc_slot();
                    if self
                        .poller
                        .register(stream.as_raw_fd(), idx + TOKEN_BASE, Interest::READABLE)
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    self.conns[idx] = Some(Conn {
                        stream,
                        interest: Interest::READABLE,
                        last_activity: Instant::now(),
                        kind: Kind::Client(ClientState {
                            parser: RequestParser::new(),
                            read_buf: BytesMut::new(),
                            write_buf: Vec::new(),
                            written: 0,
                            pending: Pending::None,
                            peer_closed: false,
                        }),
                    });
                    self.clients += 1;
                    if self.clients >= self.max_conns {
                        self.pause_accepting();
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, idx: usize, event: mutcon_sim::reactor::Event) {
        let Some(conn) = self.conns.get(idx).and_then(Option::as_ref) else {
            return; // closed earlier in this event batch
        };
        match &conn.kind {
            Kind::Client(_) => {
                if event.closed {
                    self.close_client(idx);
                    return;
                }
                if event.writable {
                    self.client_writable(idx);
                }
                if event.readable {
                    self.client_readable(idx);
                }
            }
            Kind::Upstream(_) => {
                if event.closed {
                    let err = self.conns[idx]
                        .as_ref()
                        .and_then(|c| c.stream.take_error().ok().flatten())
                        .unwrap_or_else(|| {
                            io::Error::new(io::ErrorKind::BrokenPipe, "origin hung up")
                        });
                    self.finish_upstream(idx, Err(err));
                    return;
                }
                if event.writable {
                    self.upstream_writable(idx);
                }
                if event.readable {
                    self.upstream_readable(idx);
                }
            }
        }
    }

    /// Drains the socket into the client's read buffer, then drives the
    /// request/response state machine.
    fn client_readable(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let Kind::Client(client) = &mut conn.kind else { return };
        let mut saw_eof = false;
        let mut chunk = [0u8; 16 * 1024];
        while client.read_buf.len() < MAX_BUFFERED {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => client.read_buf.extend_from_slice(&chunk[..n]),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_client(idx);
                    return;
                }
            }
        }
        conn.last_activity = Instant::now();
        client.peer_closed |= saw_eof;
        self.resume_client(idx);
    }

    fn client_writable(&mut self, idx: usize) {
        self.resume_client(idx);
    }

    /// The connection's resume sequence after any progress: flush
    /// whatever response is pending, drive buffered requests to
    /// quiescence, close a drained half-closed peer, and recompute the
    /// epoll interest. Every event/completion path funnels through
    /// here.
    fn resume_client(&mut self, idx: usize) {
        if !self.flush_client(idx) {
            return;
        }
        if !self.drive_client(idx) {
            return;
        }
        // EOF with nothing left to serve (idle keep-alive close, or a
        // truncated request that can never complete): close now.
        if self.close_if_finished(idx) {
            return;
        }
        self.update_client_interest(idx);
    }

    /// Parses and dispatches buffered requests while the connection has
    /// no response in flight. Returns `false` if the connection was
    /// closed.
    fn drive_client(&mut self, idx: usize) -> bool {
        loop {
            let Some(conn) = self.conns[idx].as_mut() else { return false };
            let Kind::Client(client) = &mut conn.kind else { return false };
            if !client.write_buf.is_empty() || !matches!(client.pending, Pending::None) {
                return true; // busy; pipelined requests wait their turn
            }
            let (request, consumed) = match client.parser.advance(&client.read_buf) {
                Ok(Some(parsed)) => parsed,
                Ok(None) => return true,
                Err(_) => {
                    // The bytes can never become a request; the
                    // connection is beyond saving.
                    self.close_client(idx);
                    return false;
                }
            };
            let _ = client.read_buf.split_to(consumed);
            match self.service.respond(&request) {
                ServiceResult::Respond(response) => {
                    let Some(conn) = self.conns[idx].as_mut() else { return false };
                    let Kind::Client(client) = &mut conn.kind else { return false };
                    client.write_buf = response.to_bytes();
                    client.written = 0;
                    if !self.flush_client(idx) {
                        return false;
                    }
                }
                ServiceResult::RespondAfter(response, delay) => {
                    let Some(conn) = self.conns[idx].as_mut() else { return false };
                    let Kind::Client(client) = &mut conn.kind else { return false };
                    client.pending = Pending::Delayed {
                        at: Instant::now() + delay,
                        response: response.to_bytes(),
                    };
                    self.delayed += 1;
                    return true;
                }
                ServiceResult::Upstream {
                    addr,
                    request,
                    finish,
                } => {
                    if self.open_upstream(idx, addr, &request, finish) {
                        // Fetch in flight; the upstream completion
                        // resumes this connection.
                        return !matches!(self.conns.get(idx), None | Some(None));
                    }
                    // The fetch failed synchronously and its error
                    // response is already queued: flush and keep
                    // driving iteratively (recursing here would nest
                    // one stack frame per buffered request).
                    if !self.flush_client(idx) {
                        return false;
                    }
                }
                ServiceResult::Close => {
                    self.close_client(idx);
                    return false;
                }
            }
        }
    }

    /// Writes as much of the pending response as the socket accepts.
    /// Returns `false` if the connection was closed.
    fn flush_client(&mut self, idx: usize) -> bool {
        let Some(conn) = self.conns[idx].as_mut() else { return false };
        let Kind::Client(client) = &mut conn.kind else { return false };
        while client.written < client.write_buf.len() {
            match conn.stream.write(&client.write_buf[client.written..]) {
                Ok(0) => {
                    self.close_client(idx);
                    return false;
                }
                Ok(n) => client.written += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_client(idx);
                    return false;
                }
            }
        }
        if !client.write_buf.is_empty() {
            client.write_buf = Vec::new();
            client.written = 0;
            conn.last_activity = Instant::now();
            // A half-closed peer may still have pipelined requests
            // buffered in read_buf; closing is decided centrally in
            // [`Reactor::close_if_finished`] once everything parseable
            // has been served.
        }
        true
    }

    /// Closes a half-closed connection once nothing more can be served:
    /// the peer sent EOF, no response is in flight or owed, and (because
    /// [`Reactor::drive_client`] ran to quiescence first) no complete
    /// request remains buffered. Returns `true` if it closed.
    fn close_if_finished(&mut self, idx: usize) -> bool {
        let Some(conn) = self.conns[idx].as_ref() else { return true };
        let Kind::Client(client) = &conn.kind else { return false };
        if client.peer_closed
            && client.write_buf.is_empty()
            && matches!(client.pending, Pending::None)
        {
            self.close_client(idx);
            return true;
        }
        false
    }

    /// Recomputes and applies the client's epoll interest from its state.
    fn update_client_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let Kind::Client(client) = &conn.kind else { return };
        let interest = if client.written < client.write_buf.len() {
            Interest::WRITABLE
        } else if !matches!(client.pending, Pending::None) {
            Interest::NONE // response owed; nothing to read or write yet
        } else if client.read_buf.len() >= MAX_BUFFERED {
            Interest::NONE // pipelining back-pressure
        } else {
            Interest::READABLE
        };
        if interest != conn.interest {
            conn.interest = interest;
            let _ = self
                .poller
                .modify(conn.stream.as_raw_fd(), idx + TOKEN_BASE, interest);
        }
    }

    /// Queues a response on a client without driving the connection
    /// further (the caller decides when to flush/resume).
    fn queue_response(&mut self, idx: usize, response: Response) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let Kind::Client(client) = &mut conn.kind else { return };
        client.pending = Pending::None;
        client.write_buf = response.to_bytes();
        client.written = 0;
    }

    /// Starts a nonblocking upstream fetch on behalf of client `idx`.
    /// Returns `false` if the fetch failed synchronously — the error
    /// response is then already queued on the client, NOT flushed, so
    /// the caller ([`Reactor::drive_client`]) continues iteratively
    /// instead of recursing one frame per buffered request.
    fn open_upstream(
        &mut self,
        client_idx: usize,
        addr: SocketAddr,
        request: &Request,
        finish: FinishUpstream,
    ) -> bool {
        let stream = match connect_nonblocking(addr) {
            Ok(stream) => stream,
            Err(e) => {
                self.queue_response(client_idx, finish(Err(e)));
                return false;
            }
        };
        let idx = self.alloc_slot();
        if self
            .poller
            .register(stream.as_raw_fd(), idx + TOKEN_BASE, Interest::WRITABLE)
            .is_err()
        {
            self.free.push(idx);
            let err = io::Error::new(io::ErrorKind::Other, "cannot register upstream socket");
            self.queue_response(client_idx, finish(Err(err)));
            return false;
        }
        self.conns[idx] = Some(Conn {
            stream,
            interest: Interest::WRITABLE,
            last_activity: Instant::now(),
            kind: Kind::Upstream(UpstreamState {
                client: client_idx,
                request: request.to_bytes(),
                written: 0,
                read_buf: BytesMut::new(),
                parser: ResponseParser::new(),
                finish: Some(finish),
                connected: false,
            }),
        });
        if let Some(conn) = self.conns[client_idx].as_mut() {
            if let Kind::Client(client) = &mut conn.kind {
                client.pending = Pending::Upstream(idx);
            }
        }
        true
    }

    fn upstream_writable(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let Kind::Upstream(upstream) = &mut conn.kind else { return };
        if !upstream.connected {
            // Writability concludes the nonblocking connect; SO_ERROR
            // says how it went.
            match conn.stream.take_error() {
                Ok(None) => upstream.connected = true,
                Ok(Some(e)) | Err(e) => {
                    self.finish_upstream(idx, Err(e));
                    return;
                }
            }
        }
        while upstream.written < upstream.request.len() {
            match conn.stream.write(&upstream.request[upstream.written..]) {
                Ok(0) => {
                    let err = io::Error::new(io::ErrorKind::WriteZero, "origin closed mid-request");
                    self.finish_upstream(idx, Err(err));
                    return;
                }
                Ok(n) => upstream.written += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.finish_upstream(idx, Err(e));
                    return;
                }
            }
        }
        conn.last_activity = Instant::now();
        conn.interest = Interest::READABLE;
        let _ = self
            .poller
            .modify(conn.stream.as_raw_fd(), idx + TOKEN_BASE, Interest::READABLE);
    }

    fn upstream_readable(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let Kind::Upstream(upstream) = &mut conn.kind else { return };
        let mut saw_eof = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => upstream.read_buf.extend_from_slice(&chunk[..n]),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.finish_upstream(idx, Err(e));
                    return;
                }
            }
        }
        conn.last_activity = Instant::now();
        match upstream.parser.advance(&upstream.read_buf) {
            Ok(Some((response, _consumed))) => {
                self.finish_upstream(idx, Ok(response));
            }
            Ok(None) if saw_eof => {
                let err = io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "origin closed mid-response",
                );
                self.finish_upstream(idx, Err(err));
            }
            Ok(None) => {}
            Err(e) => {
                let err = io::Error::new(io::ErrorKind::InvalidData, e);
                self.finish_upstream(idx, Err(err));
            }
        }
    }

    /// Tears down the upstream connection and hands its outcome to the
    /// waiting client.
    fn finish_upstream(&mut self, idx: usize, result: io::Result<Response>) {
        let Some(mut conn) = self.conns[idx].take() else { return };
        self.freed_this_batch.push(idx);
        let Kind::Upstream(upstream) = &mut conn.kind else { return };
        let client_idx = upstream.client;
        let finish = upstream.finish.take().expect("finish consumed once");
        drop(conn); // closes the socket (and its epoll registration)
        self.complete_client(client_idx, finish(result));
    }

    /// Delivers an asynchronously produced response (upstream
    /// completion) to a client and resumes the connection.
    fn complete_client(&mut self, idx: usize, response: Response) {
        if self.conns[idx].is_none() {
            return; // client gone; drop the response
        }
        self.queue_response(idx, response);
        self.resume_client(idx);
    }

    /// Fires due delayed responses.
    fn fire_timers(&mut self) {
        if self.delayed == 0 {
            return;
        }
        let now = Instant::now();
        let due: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(idx, conn)| {
                let conn = conn.as_ref()?;
                match &conn.kind {
                    Kind::Client(ClientState {
                        pending: Pending::Delayed { at, .. },
                        ..
                    }) if *at <= now => Some(idx),
                    _ => None,
                }
            })
            .collect();
        for idx in due {
            let Some(conn) = self.conns[idx].as_mut() else { continue };
            let Kind::Client(client) = &mut conn.kind else { continue };
            let Pending::Delayed { response, .. } =
                std::mem::replace(&mut client.pending, Pending::None)
            else {
                continue;
            };
            self.delayed -= 1;
            client.write_buf = response;
            client.written = 0;
            self.resume_client(idx);
        }
    }

    /// Closes connections that have made no progress in a long time.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let stale: Vec<(usize, bool)> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(idx, conn)| {
                let conn = conn.as_ref()?;
                let idle = now.duration_since(conn.last_activity);
                match &conn.kind {
                    Kind::Client(_) if idle > IDLE_TIMEOUT => Some((idx, false)),
                    Kind::Upstream(_) if idle > UPSTREAM_TIMEOUT => Some((idx, true)),
                    _ => None,
                }
            })
            .collect();
        for (idx, is_upstream) in stale {
            if is_upstream {
                let err = io::Error::new(io::ErrorKind::TimedOut, "origin fetch timed out");
                self.finish_upstream(idx, Err(err));
            } else {
                self.close_client(idx);
            }
        }
    }

    /// Closes a client connection and any upstream fetch it owns.
    fn close_client(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else { return };
        self.freed_this_batch.push(idx);
        if let Kind::Client(client) = &conn.kind {
            self.clients -= 1;
            match client.pending {
                Pending::Upstream(upstream_idx) => {
                    // The response has nobody to go to; abandon the fetch.
                    if let Some(up) = self.conns[upstream_idx].take() {
                        drop(up);
                        self.freed_this_batch.push(upstream_idx);
                    }
                }
                Pending::Delayed { .. } => self.delayed -= 1,
                Pending::None => {}
            }
        }
        drop(conn);
        self.resume_accepting();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_response, write_request};
    use mutcon_http::types::{Method, StatusCode};

    struct Echo;
    impl Service for Echo {
        fn respond(&self, request: &Request) -> ServiceResult {
            if request.method() != &Method::Get {
                return ServiceResult::Close;
            }
            ServiceResult::Respond(
                Response::ok()
                    .body(request.target().as_bytes().to_vec())
                    .build(),
            )
        }
    }

    fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        write_request(&mut stream, &Request::get(path).build())?;
        let mut buf = BytesMut::new();
        read_response(&mut stream, &mut buf)
    }

    #[test]
    fn serves_requests_and_keep_alive() {
        let server = EventLoop::start("test-echo", Arc::new(Echo)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = BytesMut::new();
        for i in 0..3 {
            let path = format!("/ping/{i}");
            write_request(&mut stream, &Request::get(&path).build()).unwrap();
            let resp = read_response(&mut stream, &mut buf).unwrap();
            assert_eq!(resp.status(), StatusCode::OK);
            assert_eq!(&resp.body()[..], path.as_bytes());
        }
    }

    #[test]
    fn serves_pipelined_requests_in_order() {
        let server = EventLoop::start("test-pipeline", Arc::new(Echo)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Two requests in one write; responses must come back in order.
        let mut wire = Request::get("/first").build().to_bytes();
        wire.extend(Request::get("/second").build().to_bytes());
        stream.write_all(&wire).unwrap();
        let mut buf = BytesMut::new();
        let first = read_response(&mut stream, &mut buf).unwrap();
        let second = read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(&first.body()[..], b"/first");
        assert_eq!(&second.body()[..], b"/second");
    }

    #[test]
    fn delayed_responses_do_not_block_other_connections() {
        struct Sleepy;
        impl Service for Sleepy {
            fn respond(&self, request: &Request) -> ServiceResult {
                if request.target() == "/slow" {
                    ServiceResult::RespondAfter(
                        Response::ok().body(&b"slow"[..]).build(),
                        Duration::from_millis(300),
                    )
                } else {
                    ServiceResult::Respond(Response::ok().body(&b"fast"[..]).build())
                }
            }
        }
        let server = EventLoop::start("test-sleepy", Arc::new(Sleepy)).unwrap();

        let mut slow = TcpStream::connect(server.local_addr()).unwrap();
        slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_request(&mut slow, &Request::get("/slow").build()).unwrap();

        // While the slow response is pending, a fast one must complete.
        let started = Instant::now();
        let fast = get(server.local_addr(), "/fast").unwrap();
        assert_eq!(&fast.body()[..], b"fast");
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "fast request was stalled behind the delayed one"
        );

        let mut buf = BytesMut::new();
        let resp = read_response(&mut slow, &mut buf).unwrap();
        assert_eq!(&resp.body()[..], b"slow");
    }

    #[test]
    fn connection_bound_parks_clients_in_backlog() {
        let server = EventLoop::with_capacity("test-bound", Arc::new(Echo), 2).unwrap();
        // Fill both slots with idle keep-alive connections.
        let _a = TcpStream::connect(server.local_addr()).unwrap();
        let _b = TcpStream::connect(server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // A third client connects (kernel backlog) but is not served
        // until a slot frees.
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_request(&mut c, &Request::get("/queued").build()).unwrap();
        drop(_a); // free a slot
        let mut buf = BytesMut::new();
        let resp = read_response(&mut c, &mut buf).unwrap();
        assert_eq!(&resp.body()[..], b"/queued");
    }

    #[test]
    fn half_closed_peer_still_gets_all_pipelined_responses() {
        // Write two requests, shut down the write side, then read: both
        // responses must arrive before the server closes.
        let server = EventLoop::start("test-half-close", Arc::new(Echo)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut wire = Request::get("/one").build().to_bytes();
        wire.extend(Request::get("/two").build().to_bytes());
        stream.write_all(&wire).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buf = BytesMut::new();
        let first = read_response(&mut stream, &mut buf).unwrap();
        let second = read_response(&mut stream, &mut buf).unwrap();
        assert_eq!(&first.body()[..], b"/one");
        assert_eq!(&second.body()[..], b"/two");
        // And then the server closes the drained connection.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    }

    #[test]
    fn malformed_input_closes_the_connection() {
        let server = EventLoop::start("test-garbage", Arc::new(Echo)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(b"definitely not http\r\n\r\n").unwrap();
        let mut sink = Vec::new();
        let n = stream.read_to_end(&mut sink).unwrap();
        assert_eq!(n, 0, "server must close without a response");
    }

    #[test]
    fn conns_env_parsing() {
        assert_eq!(conns_from(None), DEFAULT_MAX_CONNS);
        assert_eq!(conns_from(Some("64")), 64);
        assert_eq!(conns_from(Some(" 2048 ")), 2048);
        assert_eq!(conns_from(Some("0")), DEFAULT_MAX_CONNS);
        assert_eq!(conns_from(Some("junk")), DEFAULT_MAX_CONNS);
    }
}
