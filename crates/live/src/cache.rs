//! The live proxy's 16-way sharded object cache.
//!
//! The previous implementation guarded one `RwLock<HashMap>`: every
//! background TTR refresh took the single write lock and stalled all
//! concurrent client hits. Here the key space is split across
//! [`SHARD_COUNT`] independent shards by key hash, so a refresh write
//! serializes only the 1/16th of reads that share its shard. Each shard
//! reuses [`mutcon_proxy::cache::LruMap`] — the O(log n)
//! recency-indexed bounded map behind the simulator's `ProxyCache` — so
//! a capacity bound buys LRU eviction without scans.
//!
//! Reads take the shard's read lock and clone the entry out (the body is
//! a reference-counted `Bytes`, so cloning is cheap). LRU recency on the
//! hit path is refreshed *opportunistically* with `try_write`: under
//! contention the touch is skipped rather than making readers queue
//! behind each other — recency degrades gracefully, the capacity bound
//! never does.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::RwLock;

use mutcon_core::time::Timestamp;
use mutcon_proxy::cache::LruMap;

/// Number of independent shards (a fixed power of two so the hash→shard
/// map is a mask).
pub const SHARD_COUNT: usize = 16;

/// One cached object copy as served to clients.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The object body.
    pub body: Bytes,
    /// Millisecond-precise modification stamp.
    pub last_modified: Timestamp,
    /// The `x-object-value` payload, for value-bearing objects.
    pub value: Option<f64>,
    /// The `x-object-version` payload.
    pub version: Option<String>,
}

struct Shard {
    map: LruMap<String, CacheEntry, u64>,
    /// Entries pushed out by the LRU bound (not replacements/removals),
    /// surfaced by the admin stats endpoint.
    evictions: u64,
}

/// One shard's occupancy and eviction count, as reported by
/// [`ShardedCache::shard_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Objects currently resident in the shard.
    pub len: usize,
    /// LRU evictions the shard has performed so far.
    pub evictions: u64,
}

/// A sharded, optionally bounded cache keyed by object path.
pub struct ShardedCache {
    shards: Vec<RwLock<Shard>>,
    /// Monotonic logical clock ordering recency across all shards.
    clock: AtomicU64,
    /// Whether a capacity bound is set; the unbounded cache (the
    /// paper's model, and the default) has no recency to maintain, so
    /// its hit path never touches a write lock at all.
    bounded: bool,
}

/// The shard a path maps to. Public so tests (and ops tooling) can
/// construct colliding key sets — e.g. hammering one shard from four
/// reactor threads to probe the lock discipline.
pub fn shard_of(path: &str) -> usize {
    shard_index(path)
}

/// FNV-1a; hand-rolled because the default `RandomState` hasher cannot
/// hash a bare `&str` to a shard index without building a `Hasher` per
/// call anyway, and the workspace vendors no external hashers.
fn shard_index(path: &str) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in path.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Fold the high bits in so the mask doesn't only see the low byte.
    ((hash ^ (hash >> 32)) as usize) & (SHARD_COUNT - 1)
}

impl ShardedCache {
    /// A cache bounded to roughly `capacity` objects in total (`None` =
    /// unbounded, the paper's infinite-cache model). The bound is
    /// enforced per shard at `ceil(capacity / SHARD_COUNT)`, so the
    /// worst-case total is within one object per shard of the target.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)`.
    pub fn new(capacity: Option<usize>) -> ShardedCache {
        let per_shard = capacity.map(|c| {
            assert!(c > 0, "cache capacity must be positive");
            c.div_ceil(SHARD_COUNT)
        });
        ShardedCache {
            shards: (0..SHARD_COUNT)
                .map(|_| {
                    RwLock::new(Shard {
                        map: match per_shard {
                            Some(cap) => LruMap::with_capacity(cap),
                            None => LruMap::unbounded(),
                        },
                        evictions: 0,
                    })
                })
                .collect(),
            clock: AtomicU64::new(0),
            bounded: per_shard.is_some(),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a copy, cloning it out of the shard. On a bounded cache
    /// LRU recency is refreshed only if the shard's write lock is free
    /// (see module docs); unbounded caches read under the shared lock
    /// unconditionally.
    pub fn get(&self, path: &str) -> Option<CacheEntry> {
        let shard = &self.shards[shard_index(path)];
        if self.bounded {
            if let Some(mut guard) = shard.try_write() {
                let now = self.tick();
                return guard.map.touch(path, now).cloned();
            }
        }
        shard.read().map.get(path).cloned()
    }

    /// Stores (or replaces) a copy, evicting the shard's LRU entry if
    /// the shard is at capacity.
    pub fn insert(&self, path: &str, entry: CacheEntry) {
        let now = self.tick();
        let mut shard = self.shards[shard_index(path)].write();
        if shard.map.insert(path.to_owned(), entry, now).is_some() {
            shard.evictions += 1;
        }
    }

    /// Stores a copy unless a strictly fresher one (by modification
    /// stamp) is already resident — the check and the insert happen
    /// under one shard write lock, so a slow fetch that raced a faster
    /// refresh can never clobber the newer copy. Returns the entry now
    /// resident (the given one, or the fresher incumbent).
    pub fn insert_if_newer(&self, path: &str, entry: CacheEntry) -> CacheEntry {
        let now = self.tick();
        let mut shard = self.shards[shard_index(path)].write();
        if let Some(existing) = shard.map.get(path) {
            if existing.last_modified > entry.last_modified {
                return existing.clone();
            }
        }
        if shard.map.insert(path.to_owned(), entry.clone(), now).is_some() {
            shard.evictions += 1;
        }
        entry
    }

    /// Drops a copy (the admin plane evicts paths whose refresh rule was
    /// removed — an unrefreshed copy would otherwise be served stale
    /// forever). Returns the removed entry, if one was resident.
    pub fn remove(&self, path: &str) -> Option<CacheEntry> {
        self.shards[shard_index(path)].write().map.remove(path)
    }

    /// Total cached objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of objects in one shard (tests assert the cross-shard
    /// bound with this).
    ///
    /// # Panics
    ///
    /// Panics if `index >= SHARD_COUNT`.
    pub fn shard_len(&self, index: usize) -> usize {
        self.shards[index].read().map.len()
    }

    /// Per-shard occupancy and eviction counts (the admin stats
    /// endpoint's view of the cache), in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.read();
                ShardStats {
                    len: shard.map.len(),
                    evictions: shard.evictions,
                }
            })
            .collect()
    }

    /// Total LRU evictions across all shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.read().evictions).sum()
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &SHARD_COUNT)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(stamp: u64) -> CacheEntry {
        CacheEntry {
            body: Bytes::copy_from_slice(format!("v{stamp}").as_bytes()),
            last_modified: Timestamp::from_millis(stamp),
            value: Some(stamp as f64),
            version: Some(stamp.to_string()),
        }
    }

    #[test]
    fn round_trips_entries() {
        let cache = ShardedCache::new(None);
        assert!(cache.is_empty());
        assert!(cache.get("/a").is_none());
        cache.insert("/a", entry(1));
        let got = cache.get("/a").expect("stored");
        assert_eq!(got.last_modified, Timestamp::from_millis(1));
        assert_eq!(&got.body[..], b"v1");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn replacement_keeps_len() {
        let cache = ShardedCache::new(None);
        cache.insert("/a", entry(1));
        cache.insert("/a", entry(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("/a").unwrap().last_modified, Timestamp::from_millis(2));
    }

    #[test]
    fn insert_if_newer_never_rolls_back() {
        let cache = ShardedCache::new(None);
        // A slow fetch (stamp 5) loses to the resident fresher copy.
        cache.insert("/a", entry(10));
        let resident = cache.insert_if_newer("/a", entry(5));
        assert_eq!(resident.last_modified, Timestamp::from_millis(10));
        assert_eq!(
            cache.get("/a").unwrap().last_modified,
            Timestamp::from_millis(10)
        );
        // A fresher fetch replaces.
        let resident = cache.insert_if_newer("/a", entry(20));
        assert_eq!(resident.last_modified, Timestamp::from_millis(20));
        assert_eq!(
            cache.get("/a").unwrap().last_modified,
            Timestamp::from_millis(20)
        );
        // Equal stamps re-store (idempotent refresh).
        let resident = cache.insert_if_newer("/a", entry(20));
        assert_eq!(resident.last_modified, Timestamp::from_millis(20));
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache = ShardedCache::new(None);
        for i in 0..256 {
            cache.insert(&format!("/obj/{i}"), entry(i));
        }
        let populated = (0..SHARD_COUNT)
            .filter(|&s| cache.shard_len(s) > 0)
            .count();
        assert!(
            populated >= SHARD_COUNT / 2,
            "FNV spread only {populated}/{SHARD_COUNT} shards"
        );
        assert_eq!(cache.len(), 256);
    }

    #[test]
    fn capacity_bounds_hold_per_shard_and_in_total() {
        let capacity = 64;
        let cache = ShardedCache::new(Some(capacity));
        let per_shard = capacity / SHARD_COUNT; // 4
        for i in 0..10_000u64 {
            cache.insert(&format!("/spray/{i}"), entry(i));
        }
        for s in 0..SHARD_COUNT {
            assert!(
                cache.shard_len(s) <= per_shard,
                "shard {s} holds {} > {per_shard}",
                cache.shard_len(s)
            );
        }
        assert!(cache.len() <= capacity);
        assert!(cache.len() > 0);
    }

    #[test]
    fn recently_used_entries_survive_eviction_pressure() {
        let cache = ShardedCache::new(Some(SHARD_COUNT * 4));
        cache.insert("/hot", entry(0));
        for i in 0..5_000u64 {
            // Keep /hot recent while strangers pour into (among others)
            // its shard.
            let _ = cache.get("/hot");
            cache.insert(&format!("/cold/{i}"), entry(i));
        }
        assert!(
            cache.get("/hot").is_some(),
            "constantly-touched entry was evicted"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ShardedCache::new(Some(0));
    }

    #[test]
    fn remove_drops_the_entry() {
        let cache = ShardedCache::new(None);
        cache.insert("/a", entry(1));
        assert!(cache.remove("/a").is_some());
        assert!(cache.remove("/a").is_none());
        assert!(cache.get("/a").is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn eviction_counters_track_lru_pressure_only() {
        let cache = ShardedCache::new(Some(SHARD_COUNT)); // 1 per shard
        assert_eq!(cache.evictions(), 0);
        for i in 0..100u64 {
            cache.insert(&format!("/spray/{i}"), entry(i));
        }
        let stats = cache.shard_stats();
        assert_eq!(stats.len(), SHARD_COUNT);
        let total: u64 = stats.iter().map(|s| s.evictions).sum();
        assert_eq!(total, cache.evictions());
        assert!(total > 0, "100 inserts into 16 one-entry shards must evict");
        assert_eq!(stats.iter().map(|s| s.len).sum::<usize>(), cache.len());
        // Replacements and removals are not evictions.
        let unbounded = ShardedCache::new(None);
        unbounded.insert("/a", entry(1));
        unbounded.insert("/a", entry(2));
        unbounded.remove("/a");
        assert_eq!(unbounded.evictions(), 0);
    }
}
