//! The live proxy's 16-way sharded object cache.
//!
//! The previous implementation guarded one `RwLock<HashMap>`: every
//! background TTR refresh took the single write lock and stalled all
//! concurrent client hits. Here the key space is split across
//! [`SHARD_COUNT`] independent shards by key hash, so a refresh write
//! serializes only the 1/16th of reads that share its shard. Each shard
//! reuses [`mutcon_proxy::cache::LruMap`] — the O(log n)
//! recency-indexed bounded map behind the simulator's `ProxyCache` — so
//! a capacity bound buys LRU eviction without scans.
//!
//! Reads take the shard's read lock and hand out an `Arc` of the entry —
//! a refcount bump, no byte copying. LRU recency on the hit path is
//! refreshed *opportunistically* with `try_write`: under contention the
//! touch is skipped rather than making readers queue behind each other —
//! recency degrades gracefully, the capacity bound never does.
//!
//! Entries are immutable once stored and carry a **pre-rendered header
//! block** ([`CacheEntry::head`]) alongside the shared body: the wire
//! form of a hit is rendered once at store time (on the refresher or
//! miss-completion path, outside any shard lock), so serving a hit is
//! two shared slices handed to `writev` — zero per-request serialization
//! and zero body copies.
//!
//! ## Version stamps and the per-reactor L1
//!
//! Each resident path carries a shared `Arc<AtomicU64>` **version
//! handle**, bumped under the shard write lock by every mutation that
//! could make an outstanding copy stale: a store, an LRU eviction, and
//! an explicit removal. A whole-cache **generation** counter covers bulk
//! invalidation (admin rule swaps). [`ShardedCache::get_versioned`]
//! captures `(entry, handle, stamp)` atomically under the shard lock, so
//! a reactor-local [`L1Cache`] can later revalidate the pair with a
//! single relaxed atomic load — no shard lock on the L1 hit path at all.
//! A failed compare means the copy *may* be stale; the reactor falls
//! through to the shared cache and refills.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use mutcon_core::time::Timestamp;
use mutcon_http::headers::HeaderName;
use mutcon_http::message::Response;
use mutcon_proxy::cache::LruMap;

use crate::client::X_LAST_MODIFIED_MS;

/// Number of independent shards (a fixed power of two so the hash→shard
/// map is a mask).
pub const SHARD_COUNT: usize = 16;

/// One cached object copy as served to clients.
///
/// Immutable after construction: [`CacheEntry::new`] renders the serving
/// header block once, so every later hit reuses it. Fields are private to
/// keep the pre-rendered head in sync with what it describes.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    body: Bytes,
    last_modified: Timestamp,
    value: Option<f64>,
    version: Option<String>,
    /// Pre-rendered response head: status line and headers (including
    /// `content-length`), **without** the terminating blank line, so the
    /// server can append per-response headers (`x-cache`,
    /// `connection: close`) before the body.
    head: Bytes,
}

impl CacheEntry {
    /// Builds an entry, rendering its serving head once.
    ///
    /// The head is exactly what [`Response::write_head`] produces for the
    /// equivalent response: status line, `last-modified`,
    /// `x-last-modified-ms`, optional `x-object-value` /
    /// `x-object-version`, and the derived `content-length`.
    pub fn new(
        body: Bytes,
        last_modified: Timestamp,
        value: Option<f64>,
        version: Option<String>,
    ) -> CacheEntry {
        let mut builder = Response::ok()
            .last_modified(last_modified)
            .header(X_LAST_MODIFIED_MS, last_modified.as_millis().to_string());
        if let Some(v) = value {
            builder = builder.header(HeaderName::X_OBJECT_VALUE, v.to_string());
        }
        if let Some(ver) = &version {
            builder = builder.header(HeaderName::X_OBJECT_VERSION, ver.clone());
        }
        let head = Bytes::from(builder.body(body.clone()).build().head_bytes());
        CacheEntry {
            body,
            last_modified,
            value,
            version,
            head,
        }
    }

    /// The object body (cloning is a refcount bump).
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// Millisecond-precise modification stamp.
    pub fn last_modified(&self) -> Timestamp {
        self.last_modified
    }

    /// The `x-object-value` payload, for value-bearing objects.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The `x-object-version` payload.
    pub fn version(&self) -> Option<&str> {
        self.version.as_deref()
    }

    /// The pre-rendered response head (no terminating blank line).
    pub fn head(&self) -> &Bytes {
        &self.head
    }
}

struct Shard {
    map: LruMap<String, Arc<CacheEntry>, u64>,
    /// Per-path version handles; created on first store, bumped (under
    /// this shard's write lock) by stores, evictions and removals, and
    /// dropped when the path leaves the cache. An L1 holding a dropped
    /// handle is harmless: the final bump already invalidated it.
    versions: HashMap<String, Arc<AtomicU64>>,
    /// Entries pushed out by the LRU bound (not replacements/removals),
    /// surfaced by the admin stats endpoint.
    evictions: u64,
    /// Version-handle bumps this shard has performed (stores, evictions,
    /// removals — every L1-invalidating mutation).
    version_bumps: u64,
}

impl Shard {
    /// Bumps `path`'s version handle (creating it for a first store) and
    /// returns it. `Release` pairs with the relaxed/acquire loads on the
    /// lock-free L1 validation path.
    fn bump_version(&mut self, path: &str) -> Arc<AtomicU64> {
        self.version_bumps += 1;
        match self.versions.get(path) {
            Some(handle) => {
                handle.fetch_add(1, Ordering::Release);
                Arc::clone(handle)
            }
            None => {
                let handle = Arc::new(AtomicU64::new(1));
                self.versions.insert(path.to_owned(), Arc::clone(&handle));
                handle
            }
        }
    }

    /// Bumps and drops the handle of a path that left the cache.
    fn retire_version(&mut self, path: &str) {
        self.bump_version(path);
        self.versions.remove(path);
    }
}

/// One shard's occupancy and eviction count, as reported by
/// [`ShardedCache::shard_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Objects currently resident in the shard.
    pub len: usize,
    /// LRU evictions the shard has performed so far.
    pub evictions: u64,
    /// Version-handle bumps (L1-invalidating mutations) so far.
    pub version_bumps: u64,
}

/// A copy captured together with its version handle, for reactor-local
/// L1 caches: the pair revalidates later with one relaxed load — the
/// copy is still current iff `handle.load() == stamp` (and the global
/// generation is unchanged).
#[derive(Debug, Clone)]
pub struct VersionedEntry {
    /// The cached copy.
    pub entry: Arc<CacheEntry>,
    /// The path's shared version handle.
    pub handle: Arc<AtomicU64>,
    /// The handle's value at capture time (under the shard lock).
    pub stamp: u64,
}

/// A sharded, optionally bounded cache keyed by object path.
pub struct ShardedCache {
    shards: Vec<RwLock<Shard>>,
    /// Monotonic logical clock ordering recency across all shards.
    clock: AtomicU64,
    /// Bulk-invalidation generation: bumped by admin rule swaps; every
    /// reactor L1 drops wholesale when it observes a new value.
    generation: AtomicU64,
    /// Hit-path lookups that skipped the recency write lock because the
    /// entry was already most recent (see [`ShardedCache::get`]).
    touch_skips: AtomicU64,
    /// Whether a capacity bound is set; the unbounded cache (the
    /// paper's model, and the default) has no recency to maintain, so
    /// its hit path never touches a write lock at all.
    bounded: bool,
}

/// The shard a path maps to. Public so tests (and ops tooling) can
/// construct colliding key sets — e.g. hammering one shard from four
/// reactor threads to probe the lock discipline.
pub fn shard_of(path: &str) -> usize {
    shard_index(path)
}

/// FNV-1a; hand-rolled because the default `RandomState` hasher cannot
/// hash a bare `&str` to a shard index without building a `Hasher` per
/// call anyway, and the workspace vendors no external hashers.
fn shard_index(path: &str) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in path.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Fold the high bits in so the mask doesn't only see the low byte.
    ((hash ^ (hash >> 32)) as usize) & (SHARD_COUNT - 1)
}

/// Full 64-bit FNV-1a (the shard index above keeps only masked bits; the
/// L1's probe sequence wants the whole hash).
fn fnv1a(path: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in path.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Captures the `(entry, handle, stamp)` triple under one shard-lock
/// hold, so the pair is consistent: bumps happen under the write lock.
fn versioned(shard: &Shard, path: &str) -> Option<VersionedEntry> {
    let entry = Arc::clone(shard.map.get(path)?);
    let handle = Arc::clone(shard.versions.get(path)?);
    let stamp = handle.load(Ordering::Acquire);
    Some(VersionedEntry {
        entry,
        handle,
        stamp,
    })
}

impl ShardedCache {
    /// A cache bounded to roughly `capacity` objects in total (`None` =
    /// unbounded, the paper's infinite-cache model). The bound is
    /// enforced per shard at `ceil(capacity / SHARD_COUNT)`, so the
    /// worst-case total is within one object per shard of the target.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)`.
    pub fn new(capacity: Option<usize>) -> ShardedCache {
        let per_shard = capacity.map(|c| {
            assert!(c > 0, "cache capacity must be positive");
            c.div_ceil(SHARD_COUNT)
        });
        ShardedCache {
            shards: (0..SHARD_COUNT)
                .map(|_| {
                    RwLock::new(Shard {
                        map: match per_shard {
                            Some(cap) => LruMap::with_capacity(cap),
                            None => LruMap::unbounded(),
                        },
                        versions: HashMap::new(),
                        evictions: 0,
                        version_bumps: 0,
                    })
                })
                .collect(),
            clock: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            touch_skips: AtomicU64::new(0),
            bounded: per_shard.is_some(),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a copy; the returned `Arc` is a refcount bump, no byte
    /// copying. On a bounded cache LRU recency is refreshed only if the
    /// shard's write lock is free (see module docs) — and not at all
    /// when the entry is already the shard's most recently used, where a
    /// touch could not change the eviction order: the hottest key of a
    /// skewed workload serves entirely under the shared read lock.
    /// Unbounded caches read under the shared lock unconditionally.
    pub fn get(&self, path: &str) -> Option<Arc<CacheEntry>> {
        let shard = &self.shards[shard_index(path)];
        if self.bounded {
            {
                let guard = shard.read();
                if guard.map.is_most_recent(path) {
                    self.touch_skips.fetch_add(1, Ordering::Relaxed);
                    return guard.map.get(path).cloned();
                }
            }
            if let Some(mut guard) = shard.try_write() {
                let now = self.tick();
                return guard.map.touch(path, now).cloned();
            }
        }
        shard.read().map.get(path).cloned()
    }

    /// [`ShardedCache::get`] plus the path's version handle and its
    /// value, captured under the same shard-lock hold as the entry —
    /// the consistent pair a reactor L1 needs for later lock-free
    /// revalidation.
    pub fn get_versioned(&self, path: &str) -> Option<VersionedEntry> {
        let shard = &self.shards[shard_index(path)];
        if self.bounded {
            {
                let guard = shard.read();
                if guard.map.is_most_recent(path) {
                    self.touch_skips.fetch_add(1, Ordering::Relaxed);
                    return versioned(&guard, path);
                }
            }
            if let Some(mut guard) = shard.try_write() {
                let now = self.tick();
                guard.map.touch(path, now);
                return versioned(&guard, path);
            }
        }
        versioned(&shard.read(), path)
    }

    /// Stores (or replaces) a copy, evicting the shard's LRU entry if
    /// the shard is at capacity. Bumps the path's version handle (and
    /// the evicted path's, if any): every outstanding L1 copy of either
    /// is invalidated.
    pub fn insert(&self, path: &str, entry: CacheEntry) {
        let now = self.tick();
        let mut shard = self.shards[shard_index(path)].write();
        shard.bump_version(path);
        if let Some((victim, _)) = shard.map.insert(path.to_owned(), Arc::new(entry), now) {
            shard.evictions += 1;
            if victim != path {
                shard.retire_version(&victim);
            }
        }
    }

    /// Stores a copy unless a strictly fresher one (by modification
    /// stamp) is already resident — the check and the insert happen
    /// under one shard write lock, so a slow fetch that raced a faster
    /// refresh can never clobber the newer copy. Returns the entry now
    /// resident (the given one, or the fresher incumbent).
    pub fn insert_if_newer(&self, path: &str, entry: CacheEntry) -> Arc<CacheEntry> {
        let now = self.tick();
        let entry = Arc::new(entry);
        let mut shard = self.shards[shard_index(path)].write();
        if let Some(existing) = shard.map.get(path) {
            if existing.last_modified > entry.last_modified {
                return Arc::clone(existing);
            }
        }
        shard.bump_version(path);
        if let Some((victim, _)) = shard.map.insert(path.to_owned(), Arc::clone(&entry), now) {
            shard.evictions += 1;
            if victim != path {
                shard.retire_version(&victim);
            }
        }
        entry
    }

    /// Drops a copy (the admin plane evicts paths whose refresh rule was
    /// removed — an unrefreshed copy would otherwise be served stale
    /// forever). Returns the removed entry, if one was resident. The
    /// path's version handle takes its final bump, so outstanding L1
    /// copies reject on their next validation.
    pub fn remove(&self, path: &str) -> Option<Arc<CacheEntry>> {
        let mut shard = self.shards[shard_index(path)].write();
        let removed = shard.map.remove(path);
        if removed.is_some() {
            shard.retire_version(path);
        }
        removed
    }

    /// The bulk-invalidation generation. Relaxed: the L1 only needs to
    /// observe new values eventually-promptly, and a swap's own shard
    /// removals carry per-path bumps with `Release` ordering anyway.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Invalidates every reactor L1 wholesale (admin rule swaps call
    /// this: membership of the rule set changed, so conservatively no
    /// reactor-local copy should outlive the swap).
    pub fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Hit-path lookups that skipped the recency write lock because the
    /// entry was already the shard's most recently used.
    pub fn touch_skips(&self) -> u64 {
        self.touch_skips.load(Ordering::Relaxed)
    }

    /// Total version-handle bumps across all shards.
    pub fn version_bumps(&self) -> u64 {
        self.shards.iter().map(|s| s.read().version_bumps).sum()
    }

    /// Total cached objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of objects in one shard (tests assert the cross-shard
    /// bound with this).
    ///
    /// # Panics
    ///
    /// Panics if `index >= SHARD_COUNT`.
    pub fn shard_len(&self, index: usize) -> usize {
        self.shards[index].read().map.len()
    }

    /// Per-shard occupancy and eviction counts (the admin stats
    /// endpoint's view of the cache), in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.read();
                ShardStats {
                    len: shard.map.len(),
                    evictions: shard.evictions,
                    version_bumps: shard.version_bumps,
                }
            })
            .collect()
    }

    /// Total LRU evictions across all shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.read().evictions).sum()
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &SHARD_COUNT)
            .field("len", &self.len())
            .finish()
    }
}

/// Slots a probe inspects per path: one cache line's worth of window.
/// Open addressing with a fixed window needs no tombstones — lookups
/// always scan the whole window, inserts evict the window's LRU slot
/// when every slot is taken.
const L1_PROBE: usize = 8;

struct L1Slot {
    path: String,
    versioned: VersionedEntry,
    /// Local recency; only breaks eviction ties within a probe window.
    used: u64,
}

/// Outcome of an [`L1Cache::lookup`].
#[derive(Debug, Clone)]
pub enum L1Lookup {
    /// Resident and revalidated: the copy is provably current as of the
    /// version load. Carries the versioned pair so the caller can
    /// re-check the handle after serving (the stale-serve audit).
    Hit(VersionedEntry),
    /// Resident but the version compare failed — the shared cache
    /// mutated the path. The slot has been dropped; refill from L2.
    Stale,
    /// Not resident.
    Miss,
}

/// A reactor-local hot-object cache: an open-addressed `path →
/// (version, Arc<CacheEntry>)` map consulted before the shared
/// [`ShardedCache`]. Owned by one reactor thread, so reads and writes
/// are plain `&mut` — no locks, no atomics except the single relaxed
/// version load that revalidates a hit.
pub struct L1Cache {
    slots: Vec<Option<L1Slot>>,
    mask: u64,
    /// The shared cache's bulk-invalidation generation last observed;
    /// a change drops every slot before the lookup proceeds.
    generation: u64,
    tick: u64,
    len: usize,
    evictions: u64,
}

impl L1Cache {
    /// An L1 holding roughly `capacity` objects (rounded up to a power
    /// of two, minimum one probe window).
    pub fn new(capacity: usize) -> L1Cache {
        let slots = capacity.max(L1_PROBE).next_power_of_two();
        L1Cache {
            slots: (0..slots).map(|_| None).collect(),
            mask: (slots - 1) as u64,
            generation: 0,
            tick: 0,
            len: 0,
            evictions: 0,
        }
    }

    /// Looks up `path`, revalidating any resident copy against its
    /// version handle (one relaxed load) and against the shared cache's
    /// bulk `generation` (a changed generation clears the whole L1).
    pub fn lookup(&mut self, path: &str, generation: u64) -> L1Lookup {
        if generation != self.generation {
            self.clear();
            self.generation = generation;
            return L1Lookup::Miss;
        }
        let base = fnv1a(path);
        for i in 0..L1_PROBE as u64 {
            let idx = ((base.wrapping_add(i)) & self.mask) as usize;
            let Some(slot) = &mut self.slots[idx] else {
                continue;
            };
            if slot.path != path {
                continue;
            }
            // The single revalidation load. Relaxed is the point: a
            // bump not yet visible here is exactly the propagation
            // window the paper's Δ tolerates, and the bytes served are
            // the ones this reactor already holds — no new memory is
            // read on the strength of this load.
            if slot.versioned.handle.load(Ordering::Relaxed) == slot.versioned.stamp {
                self.tick += 1;
                slot.used = self.tick;
                return L1Lookup::Hit(slot.versioned.clone());
            }
            self.slots[idx] = None;
            self.len -= 1;
            return L1Lookup::Stale;
        }
        L1Lookup::Miss
    }

    /// Refills after an L2 hit. A full probe window evicts its least
    /// recently used slot.
    pub fn insert(&mut self, path: &str, versioned: VersionedEntry) {
        let base = fnv1a(path);
        self.tick += 1;
        let mut empty = None;
        let mut lru: Option<(usize, u64)> = None;
        for i in 0..L1_PROBE as u64 {
            let idx = ((base.wrapping_add(i)) & self.mask) as usize;
            match &self.slots[idx] {
                Some(slot) if slot.path == path => {
                    self.slots[idx] = Some(L1Slot {
                        path: path.to_owned(),
                        versioned,
                        used: self.tick,
                    });
                    return;
                }
                Some(slot) => {
                    if lru.map_or(true, |(_, used)| slot.used < used) {
                        lru = Some((idx, slot.used));
                    }
                }
                None => {
                    if empty.is_none() {
                        empty = Some(idx);
                    }
                }
            }
        }
        let idx = match (empty, lru) {
            (Some(idx), _) => {
                self.len += 1;
                idx
            }
            (None, Some((idx, _))) => {
                self.evictions += 1;
                idx
            }
            (None, None) => unreachable!("probe window has neither empty nor occupied slots"),
        };
        self.slots[idx] = Some(L1Slot {
            path: path.to_owned(),
            versioned,
            used: self.tick,
        });
    }

    /// Drops every slot (bulk invalidation).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    /// Objects currently resident.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the L1 holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Probe-window LRU evictions performed by refills so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

impl std::fmt::Debug for L1Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("L1Cache")
            .field("capacity", &self.slots.len())
            .field("len", &self.len)
            .field("generation", &self.generation)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(stamp: u64) -> CacheEntry {
        CacheEntry::new(
            Bytes::copy_from_slice(format!("v{stamp}").as_bytes()),
            Timestamp::from_millis(stamp),
            Some(stamp as f64),
            Some(stamp.to_string()),
        )
    }

    #[test]
    fn round_trips_entries() {
        let cache = ShardedCache::new(None);
        assert!(cache.is_empty());
        assert!(cache.get("/a").is_none());
        cache.insert("/a", entry(1));
        let got = cache.get("/a").expect("stored");
        assert_eq!(got.last_modified(), Timestamp::from_millis(1));
        assert_eq!(&got.body()[..], b"v1");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_shares_one_entry_allocation() {
        let cache = ShardedCache::new(None);
        cache.insert("/a", entry(1));
        let first = cache.get("/a").unwrap();
        let second = cache.get("/a").unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "hits must hand out the same Arc, not clones"
        );
        // The bounded cache's try_write touch path must share too.
        let bounded = ShardedCache::new(Some(16));
        bounded.insert("/a", entry(1));
        let first = bounded.get("/a").unwrap();
        let second = bounded.get("/a").unwrap();
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn entries_pre_render_their_serving_head() {
        let e = CacheEntry::new(
            Bytes::from("payload"),
            Timestamp::from_millis(784_111_777_123),
            Some(2.5),
            Some("v7".to_owned()),
        );
        let head = std::str::from_utf8(e.head()).unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head:?}");
        assert!(head.contains("last-modified: "));
        assert!(head.contains("x-last-modified-ms: 784111777123\r\n"));
        assert!(head.contains("x-object-value: 2.5\r\n"));
        assert!(head.contains("x-object-version: v7\r\n"));
        assert!(head.contains("content-length: 7\r\n"));
        assert!(
            !head.ends_with("\r\n\r\n"),
            "head must leave room for per-response headers"
        );
        // Optional fields stay out of the head entirely.
        let bare = CacheEntry::new(Bytes::from("x"), Timestamp::from_millis(1), None, None);
        let head = std::str::from_utf8(bare.head()).unwrap();
        assert!(!head.contains("x-object-value"));
        assert!(!head.contains("x-object-version"));
    }

    #[test]
    fn replacement_keeps_len() {
        let cache = ShardedCache::new(None);
        cache.insert("/a", entry(1));
        cache.insert("/a", entry(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.get("/a").unwrap().last_modified(),
            Timestamp::from_millis(2)
        );
    }

    #[test]
    fn insert_if_newer_never_rolls_back() {
        let cache = ShardedCache::new(None);
        // A slow fetch (stamp 5) loses to the resident fresher copy.
        cache.insert("/a", entry(10));
        let resident = cache.insert_if_newer("/a", entry(5));
        assert_eq!(resident.last_modified(), Timestamp::from_millis(10));
        assert_eq!(
            cache.get("/a").unwrap().last_modified(),
            Timestamp::from_millis(10)
        );
        // A fresher fetch replaces.
        let resident = cache.insert_if_newer("/a", entry(20));
        assert_eq!(resident.last_modified(), Timestamp::from_millis(20));
        assert_eq!(
            cache.get("/a").unwrap().last_modified(),
            Timestamp::from_millis(20)
        );
        // Equal stamps re-store (idempotent refresh).
        let resident = cache.insert_if_newer("/a", entry(20));
        assert_eq!(resident.last_modified(), Timestamp::from_millis(20));
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache = ShardedCache::new(None);
        for i in 0..256 {
            cache.insert(&format!("/obj/{i}"), entry(i));
        }
        let populated = (0..SHARD_COUNT)
            .filter(|&s| cache.shard_len(s) > 0)
            .count();
        assert!(
            populated >= SHARD_COUNT / 2,
            "FNV spread only {populated}/{SHARD_COUNT} shards"
        );
        assert_eq!(cache.len(), 256);
    }

    #[test]
    fn capacity_bounds_hold_per_shard_and_in_total() {
        let capacity = 64;
        let cache = ShardedCache::new(Some(capacity));
        let per_shard = capacity / SHARD_COUNT; // 4
        for i in 0..10_000u64 {
            cache.insert(&format!("/spray/{i}"), entry(i));
        }
        for s in 0..SHARD_COUNT {
            assert!(
                cache.shard_len(s) <= per_shard,
                "shard {s} holds {} > {per_shard}",
                cache.shard_len(s)
            );
        }
        assert!(cache.len() <= capacity);
        assert!(cache.len() > 0);
    }

    #[test]
    fn recently_used_entries_survive_eviction_pressure() {
        let cache = ShardedCache::new(Some(SHARD_COUNT * 4));
        cache.insert("/hot", entry(0));
        for i in 0..5_000u64 {
            // Keep /hot recent while strangers pour into (among others)
            // its shard.
            let _ = cache.get("/hot");
            cache.insert(&format!("/cold/{i}"), entry(i));
        }
        assert!(
            cache.get("/hot").is_some(),
            "constantly-touched entry was evicted"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ShardedCache::new(Some(0));
    }

    #[test]
    fn remove_drops_the_entry() {
        let cache = ShardedCache::new(None);
        cache.insert("/a", entry(1));
        assert!(cache.remove("/a").is_some());
        assert!(cache.remove("/a").is_none());
        assert!(cache.get("/a").is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn hot_entry_reads_skip_the_write_lock() {
        let cache = ShardedCache::new(Some(SHARD_COUNT * 4));
        cache.insert("/hot", entry(1));
        assert_eq!(cache.touch_skips(), 0);
        // The freshly inserted entry is its shard's most recent: every
        // repeat read takes the skip path, and recency stays intact.
        for _ in 0..10 {
            assert!(cache.get("/hot").is_some());
        }
        assert_eq!(cache.touch_skips(), 10);
        // A second key in the same shard displaces /hot from the
        // recency tail; its next read must take the touch path again
        // (no new skip) and restore it.
        let colliding = (0..)
            .map(|i| format!("/hot/{i}"))
            .find(|p| shard_of(p) == shard_of("/hot"))
            .unwrap();
        cache.insert(&colliding, entry(2));
        let skips = cache.touch_skips();
        assert!(cache.get("/hot").is_some());
        assert_eq!(cache.touch_skips(), skips, "non-tail read must not skip");
        assert!(cache.get("/hot").is_some());
        assert_eq!(cache.touch_skips(), skips + 1, "touched entry skips again");
        // Unbounded caches have no recency to protect; no skip counting.
        let unbounded = ShardedCache::new(None);
        unbounded.insert("/a", entry(1));
        let _ = unbounded.get("/a");
        assert_eq!(unbounded.touch_skips(), 0);
    }

    #[test]
    fn touch_skip_preserves_lru_survival() {
        // The regression the counter guards: skipping the touch for the
        // most-recent entry must never let eviction pressure push out a
        // constantly-read key.
        let cache = ShardedCache::new(Some(SHARD_COUNT * 4));
        cache.insert("/hot", entry(0));
        for i in 0..5_000u64 {
            let _ = cache.get("/hot");
            cache.insert(&format!("/cold/{i}"), entry(i));
        }
        assert!(cache.get("/hot").is_some(), "hot entry evicted");
        assert!(cache.touch_skips() > 0, "skew never took the skip path");
    }

    #[test]
    fn version_handles_bump_on_every_invalidating_mutation() {
        let cache = ShardedCache::new(None);
        cache.insert("/a", entry(1));
        let v1 = cache.get_versioned("/a").expect("resident");
        assert_eq!(v1.handle.load(Ordering::Relaxed), v1.stamp);

        // A replacement bumps: the captured pair now fails validation.
        cache.insert("/a", entry(2));
        assert_ne!(v1.handle.load(Ordering::Relaxed), v1.stamp);
        let v2 = cache.get_versioned("/a").expect("resident");
        assert!(Arc::ptr_eq(&v1.handle, &v2.handle), "handle survives replacement");
        assert_eq!(v2.handle.load(Ordering::Relaxed), v2.stamp);

        // insert_if_newer with a stale offer does not bump.
        let resident = cache.insert_if_newer("/a", entry(1));
        assert_eq!(resident.last_modified(), Timestamp::from_millis(2));
        assert_eq!(v2.handle.load(Ordering::Relaxed), v2.stamp);

        // Removal takes the final bump.
        cache.remove("/a");
        assert_ne!(v2.handle.load(Ordering::Relaxed), v2.stamp);
        assert!(cache.get_versioned("/a").is_none());
        assert_eq!(cache.version_bumps(), 3, "first store + replacement + removal");
    }

    #[test]
    fn lru_eviction_bumps_the_victims_version() {
        let cache = ShardedCache::new(Some(SHARD_COUNT)); // 1 per shard
        cache.insert("/seed/0", entry(0));
        let seed = cache.get_versioned("/seed/0").expect("resident");
        // Pour colliding strangers into its shard until it is evicted.
        for i in 0..200u64 {
            let path = format!("/spray/{i}");
            if shard_of(&path) == shard_of("/seed/0") {
                cache.insert(&path, entry(i));
            }
        }
        assert!(cache.get("/seed/0").is_none(), "victim still resident");
        assert_ne!(
            seed.handle.load(Ordering::Relaxed),
            seed.stamp,
            "eviction must invalidate outstanding L1 copies"
        );
    }

    #[test]
    fn generation_bumps_are_observable() {
        let cache = ShardedCache::new(None);
        let g = cache.generation();
        cache.bump_generation();
        assert_eq!(cache.generation(), g + 1);
    }

    #[test]
    fn l1_round_trip_and_revalidation() {
        let cache = ShardedCache::new(None);
        let mut l1 = L1Cache::new(32);
        assert!(l1.is_empty());
        assert!(matches!(l1.lookup("/a", cache.generation()), L1Lookup::Miss));

        cache.insert("/a", entry(1));
        let v = cache.get_versioned("/a").unwrap();
        l1.insert("/a", v);
        assert_eq!(l1.len(), 1);
        let L1Lookup::Hit(hit) = l1.lookup("/a", cache.generation()) else {
            panic!("valid entry must hit");
        };
        assert_eq!(&hit.entry.body()[..], b"v1");

        // A store invalidates: next lookup rejects as stale and drops
        // the slot, the one after misses.
        cache.insert("/a", entry(2));
        assert!(matches!(l1.lookup("/a", cache.generation()), L1Lookup::Stale));
        assert!(matches!(l1.lookup("/a", cache.generation()), L1Lookup::Miss));
        assert!(l1.is_empty());

        // Refill serves the new copy.
        l1.insert("/a", cache.get_versioned("/a").unwrap());
        let L1Lookup::Hit(hit) = l1.lookup("/a", cache.generation()) else {
            panic!("refilled entry must hit");
        };
        assert_eq!(&hit.entry.body()[..], b"v2");
    }

    #[test]
    fn l1_generation_change_clears_everything() {
        let cache = ShardedCache::new(None);
        let mut l1 = L1Cache::new(32);
        for i in 0..8u64 {
            let path = format!("/g/{i}");
            cache.insert(&path, entry(i));
            l1.insert(&path, cache.get_versioned(&path).unwrap());
        }
        assert_eq!(l1.len(), 8);
        cache.bump_generation();
        assert!(matches!(l1.lookup("/g/0", cache.generation()), L1Lookup::Miss));
        assert!(l1.is_empty(), "a new generation drops every slot");
        // Same generation again: refills are accepted as usual.
        l1.insert("/g/0", cache.get_versioned("/g/0").unwrap());
        assert!(matches!(l1.lookup("/g/0", cache.generation()), L1Lookup::Hit(_)));
    }

    #[test]
    fn l1_probe_window_evicts_lru_under_pressure() {
        let cache = ShardedCache::new(None);
        let mut l1 = L1Cache::new(L1_PROBE); // one window total
        for i in 0..(L1_PROBE as u64 + 4) {
            let path = format!("/p/{i}");
            cache.insert(&path, entry(i));
            l1.insert(&path, cache.get_versioned(&path).unwrap());
        }
        assert!(l1.len() <= L1_PROBE);
        assert_eq!(l1.evictions(), 4, "a full window evicts its LRU slot");
        // The most recent insert is resident.
        let last = format!("/p/{}", L1_PROBE as u64 + 3);
        assert!(matches!(l1.lookup(&last, cache.generation()), L1Lookup::Hit(_)));
    }

    #[test]
    fn l1_replaces_in_place_without_eviction() {
        let cache = ShardedCache::new(None);
        let mut l1 = L1Cache::new(32);
        cache.insert("/a", entry(1));
        l1.insert("/a", cache.get_versioned("/a").unwrap());
        cache.insert("/a", entry(2));
        l1.insert("/a", cache.get_versioned("/a").unwrap());
        assert_eq!(l1.len(), 1);
        assert_eq!(l1.evictions(), 0);
        let L1Lookup::Hit(hit) = l1.lookup("/a", cache.generation()) else {
            panic!("replaced entry must hit");
        };
        assert_eq!(&hit.entry.body()[..], b"v2");
    }

    #[test]
    fn eviction_counters_track_lru_pressure_only() {
        let cache = ShardedCache::new(Some(SHARD_COUNT)); // 1 per shard
        assert_eq!(cache.evictions(), 0);
        for i in 0..100u64 {
            cache.insert(&format!("/spray/{i}"), entry(i));
        }
        let stats = cache.shard_stats();
        assert_eq!(stats.len(), SHARD_COUNT);
        let total: u64 = stats.iter().map(|s| s.evictions).sum();
        assert_eq!(total, cache.evictions());
        assert!(total > 0, "100 inserts into 16 one-entry shards must evict");
        assert_eq!(stats.iter().map(|s| s.len).sum::<usize>(), cache.len());
        // Replacements and removals are not evictions.
        let unbounded = ShardedCache::new(None);
        unbounded.insert("/a", entry(1));
        unbounded.insert("/a", entry(2));
        unbounded.remove("/a");
        assert_eq!(unbounded.evictions(), 0);
    }
}
