//! The live proxy's 16-way sharded object cache.
//!
//! The previous implementation guarded one `RwLock<HashMap>`: every
//! background TTR refresh took the single write lock and stalled all
//! concurrent client hits. Here the key space is split across
//! [`SHARD_COUNT`] independent shards by key hash, so a refresh write
//! serializes only the 1/16th of reads that share its shard. Each shard
//! reuses [`mutcon_proxy::cache::LruMap`] — the O(log n)
//! recency-indexed bounded map behind the simulator's `ProxyCache` — so
//! a capacity bound buys LRU eviction without scans.
//!
//! Reads take the shard's read lock and hand out an `Arc` of the entry —
//! a refcount bump, no byte copying. LRU recency on the hit path is
//! refreshed *opportunistically* with `try_write`: under contention the
//! touch is skipped rather than making readers queue behind each other —
//! recency degrades gracefully, the capacity bound never does.
//!
//! Entries are immutable once stored and carry a **pre-rendered header
//! block** ([`CacheEntry::head`]) alongside the shared body: the wire
//! form of a hit is rendered once at store time (on the refresher or
//! miss-completion path, outside any shard lock), so serving a hit is
//! two shared slices handed to `writev` — zero per-request serialization
//! and zero body copies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use mutcon_core::time::Timestamp;
use mutcon_http::headers::HeaderName;
use mutcon_http::message::Response;
use mutcon_proxy::cache::LruMap;

use crate::client::X_LAST_MODIFIED_MS;

/// Number of independent shards (a fixed power of two so the hash→shard
/// map is a mask).
pub const SHARD_COUNT: usize = 16;

/// One cached object copy as served to clients.
///
/// Immutable after construction: [`CacheEntry::new`] renders the serving
/// header block once, so every later hit reuses it. Fields are private to
/// keep the pre-rendered head in sync with what it describes.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    body: Bytes,
    last_modified: Timestamp,
    value: Option<f64>,
    version: Option<String>,
    /// Pre-rendered response head: status line and headers (including
    /// `content-length`), **without** the terminating blank line, so the
    /// server can append per-response headers (`x-cache`,
    /// `connection: close`) before the body.
    head: Bytes,
}

impl CacheEntry {
    /// Builds an entry, rendering its serving head once.
    ///
    /// The head is exactly what [`Response::write_head`] produces for the
    /// equivalent response: status line, `last-modified`,
    /// `x-last-modified-ms`, optional `x-object-value` /
    /// `x-object-version`, and the derived `content-length`.
    pub fn new(
        body: Bytes,
        last_modified: Timestamp,
        value: Option<f64>,
        version: Option<String>,
    ) -> CacheEntry {
        let mut builder = Response::ok()
            .last_modified(last_modified)
            .header(X_LAST_MODIFIED_MS, last_modified.as_millis().to_string());
        if let Some(v) = value {
            builder = builder.header(HeaderName::X_OBJECT_VALUE, v.to_string());
        }
        if let Some(ver) = &version {
            builder = builder.header(HeaderName::X_OBJECT_VERSION, ver.clone());
        }
        let head = Bytes::from(builder.body(body.clone()).build().head_bytes());
        CacheEntry {
            body,
            last_modified,
            value,
            version,
            head,
        }
    }

    /// The object body (cloning is a refcount bump).
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// Millisecond-precise modification stamp.
    pub fn last_modified(&self) -> Timestamp {
        self.last_modified
    }

    /// The `x-object-value` payload, for value-bearing objects.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The `x-object-version` payload.
    pub fn version(&self) -> Option<&str> {
        self.version.as_deref()
    }

    /// The pre-rendered response head (no terminating blank line).
    pub fn head(&self) -> &Bytes {
        &self.head
    }
}

struct Shard {
    map: LruMap<String, Arc<CacheEntry>, u64>,
    /// Entries pushed out by the LRU bound (not replacements/removals),
    /// surfaced by the admin stats endpoint.
    evictions: u64,
}

/// One shard's occupancy and eviction count, as reported by
/// [`ShardedCache::shard_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Objects currently resident in the shard.
    pub len: usize,
    /// LRU evictions the shard has performed so far.
    pub evictions: u64,
}

/// A sharded, optionally bounded cache keyed by object path.
pub struct ShardedCache {
    shards: Vec<RwLock<Shard>>,
    /// Monotonic logical clock ordering recency across all shards.
    clock: AtomicU64,
    /// Whether a capacity bound is set; the unbounded cache (the
    /// paper's model, and the default) has no recency to maintain, so
    /// its hit path never touches a write lock at all.
    bounded: bool,
}

/// The shard a path maps to. Public so tests (and ops tooling) can
/// construct colliding key sets — e.g. hammering one shard from four
/// reactor threads to probe the lock discipline.
pub fn shard_of(path: &str) -> usize {
    shard_index(path)
}

/// FNV-1a; hand-rolled because the default `RandomState` hasher cannot
/// hash a bare `&str` to a shard index without building a `Hasher` per
/// call anyway, and the workspace vendors no external hashers.
fn shard_index(path: &str) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in path.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Fold the high bits in so the mask doesn't only see the low byte.
    ((hash ^ (hash >> 32)) as usize) & (SHARD_COUNT - 1)
}

impl ShardedCache {
    /// A cache bounded to roughly `capacity` objects in total (`None` =
    /// unbounded, the paper's infinite-cache model). The bound is
    /// enforced per shard at `ceil(capacity / SHARD_COUNT)`, so the
    /// worst-case total is within one object per shard of the target.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)`.
    pub fn new(capacity: Option<usize>) -> ShardedCache {
        let per_shard = capacity.map(|c| {
            assert!(c > 0, "cache capacity must be positive");
            c.div_ceil(SHARD_COUNT)
        });
        ShardedCache {
            shards: (0..SHARD_COUNT)
                .map(|_| {
                    RwLock::new(Shard {
                        map: match per_shard {
                            Some(cap) => LruMap::with_capacity(cap),
                            None => LruMap::unbounded(),
                        },
                        evictions: 0,
                    })
                })
                .collect(),
            clock: AtomicU64::new(0),
            bounded: per_shard.is_some(),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a copy; the returned `Arc` is a refcount bump, no byte
    /// copying. On a bounded cache LRU recency is refreshed only if the
    /// shard's write lock is free (see module docs); unbounded caches
    /// read under the shared lock unconditionally.
    pub fn get(&self, path: &str) -> Option<Arc<CacheEntry>> {
        let shard = &self.shards[shard_index(path)];
        if self.bounded {
            if let Some(mut guard) = shard.try_write() {
                let now = self.tick();
                return guard.map.touch(path, now).cloned();
            }
        }
        shard.read().map.get(path).cloned()
    }

    /// Stores (or replaces) a copy, evicting the shard's LRU entry if
    /// the shard is at capacity.
    pub fn insert(&self, path: &str, entry: CacheEntry) {
        let now = self.tick();
        let mut shard = self.shards[shard_index(path)].write();
        if shard
            .map
            .insert(path.to_owned(), Arc::new(entry), now)
            .is_some()
        {
            shard.evictions += 1;
        }
    }

    /// Stores a copy unless a strictly fresher one (by modification
    /// stamp) is already resident — the check and the insert happen
    /// under one shard write lock, so a slow fetch that raced a faster
    /// refresh can never clobber the newer copy. Returns the entry now
    /// resident (the given one, or the fresher incumbent).
    pub fn insert_if_newer(&self, path: &str, entry: CacheEntry) -> Arc<CacheEntry> {
        let now = self.tick();
        let entry = Arc::new(entry);
        let mut shard = self.shards[shard_index(path)].write();
        if let Some(existing) = shard.map.get(path) {
            if existing.last_modified > entry.last_modified {
                return Arc::clone(existing);
            }
        }
        if shard
            .map
            .insert(path.to_owned(), Arc::clone(&entry), now)
            .is_some()
        {
            shard.evictions += 1;
        }
        entry
    }

    /// Drops a copy (the admin plane evicts paths whose refresh rule was
    /// removed — an unrefreshed copy would otherwise be served stale
    /// forever). Returns the removed entry, if one was resident.
    pub fn remove(&self, path: &str) -> Option<Arc<CacheEntry>> {
        self.shards[shard_index(path)].write().map.remove(path)
    }

    /// Total cached objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of objects in one shard (tests assert the cross-shard
    /// bound with this).
    ///
    /// # Panics
    ///
    /// Panics if `index >= SHARD_COUNT`.
    pub fn shard_len(&self, index: usize) -> usize {
        self.shards[index].read().map.len()
    }

    /// Per-shard occupancy and eviction counts (the admin stats
    /// endpoint's view of the cache), in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.read();
                ShardStats {
                    len: shard.map.len(),
                    evictions: shard.evictions,
                }
            })
            .collect()
    }

    /// Total LRU evictions across all shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.read().evictions).sum()
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &SHARD_COUNT)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(stamp: u64) -> CacheEntry {
        CacheEntry::new(
            Bytes::copy_from_slice(format!("v{stamp}").as_bytes()),
            Timestamp::from_millis(stamp),
            Some(stamp as f64),
            Some(stamp.to_string()),
        )
    }

    #[test]
    fn round_trips_entries() {
        let cache = ShardedCache::new(None);
        assert!(cache.is_empty());
        assert!(cache.get("/a").is_none());
        cache.insert("/a", entry(1));
        let got = cache.get("/a").expect("stored");
        assert_eq!(got.last_modified(), Timestamp::from_millis(1));
        assert_eq!(&got.body()[..], b"v1");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_shares_one_entry_allocation() {
        let cache = ShardedCache::new(None);
        cache.insert("/a", entry(1));
        let first = cache.get("/a").unwrap();
        let second = cache.get("/a").unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "hits must hand out the same Arc, not clones"
        );
        // The bounded cache's try_write touch path must share too.
        let bounded = ShardedCache::new(Some(16));
        bounded.insert("/a", entry(1));
        let first = bounded.get("/a").unwrap();
        let second = bounded.get("/a").unwrap();
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn entries_pre_render_their_serving_head() {
        let e = CacheEntry::new(
            Bytes::from("payload"),
            Timestamp::from_millis(784_111_777_123),
            Some(2.5),
            Some("v7".to_owned()),
        );
        let head = std::str::from_utf8(e.head()).unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head:?}");
        assert!(head.contains("last-modified: "));
        assert!(head.contains("x-last-modified-ms: 784111777123\r\n"));
        assert!(head.contains("x-object-value: 2.5\r\n"));
        assert!(head.contains("x-object-version: v7\r\n"));
        assert!(head.contains("content-length: 7\r\n"));
        assert!(
            !head.ends_with("\r\n\r\n"),
            "head must leave room for per-response headers"
        );
        // Optional fields stay out of the head entirely.
        let bare = CacheEntry::new(Bytes::from("x"), Timestamp::from_millis(1), None, None);
        let head = std::str::from_utf8(bare.head()).unwrap();
        assert!(!head.contains("x-object-value"));
        assert!(!head.contains("x-object-version"));
    }

    #[test]
    fn replacement_keeps_len() {
        let cache = ShardedCache::new(None);
        cache.insert("/a", entry(1));
        cache.insert("/a", entry(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.get("/a").unwrap().last_modified(),
            Timestamp::from_millis(2)
        );
    }

    #[test]
    fn insert_if_newer_never_rolls_back() {
        let cache = ShardedCache::new(None);
        // A slow fetch (stamp 5) loses to the resident fresher copy.
        cache.insert("/a", entry(10));
        let resident = cache.insert_if_newer("/a", entry(5));
        assert_eq!(resident.last_modified(), Timestamp::from_millis(10));
        assert_eq!(
            cache.get("/a").unwrap().last_modified(),
            Timestamp::from_millis(10)
        );
        // A fresher fetch replaces.
        let resident = cache.insert_if_newer("/a", entry(20));
        assert_eq!(resident.last_modified(), Timestamp::from_millis(20));
        assert_eq!(
            cache.get("/a").unwrap().last_modified(),
            Timestamp::from_millis(20)
        );
        // Equal stamps re-store (idempotent refresh).
        let resident = cache.insert_if_newer("/a", entry(20));
        assert_eq!(resident.last_modified(), Timestamp::from_millis(20));
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache = ShardedCache::new(None);
        for i in 0..256 {
            cache.insert(&format!("/obj/{i}"), entry(i));
        }
        let populated = (0..SHARD_COUNT)
            .filter(|&s| cache.shard_len(s) > 0)
            .count();
        assert!(
            populated >= SHARD_COUNT / 2,
            "FNV spread only {populated}/{SHARD_COUNT} shards"
        );
        assert_eq!(cache.len(), 256);
    }

    #[test]
    fn capacity_bounds_hold_per_shard_and_in_total() {
        let capacity = 64;
        let cache = ShardedCache::new(Some(capacity));
        let per_shard = capacity / SHARD_COUNT; // 4
        for i in 0..10_000u64 {
            cache.insert(&format!("/spray/{i}"), entry(i));
        }
        for s in 0..SHARD_COUNT {
            assert!(
                cache.shard_len(s) <= per_shard,
                "shard {s} holds {} > {per_shard}",
                cache.shard_len(s)
            );
        }
        assert!(cache.len() <= capacity);
        assert!(cache.len() > 0);
    }

    #[test]
    fn recently_used_entries_survive_eviction_pressure() {
        let cache = ShardedCache::new(Some(SHARD_COUNT * 4));
        cache.insert("/hot", entry(0));
        for i in 0..5_000u64 {
            // Keep /hot recent while strangers pour into (among others)
            // its shard.
            let _ = cache.get("/hot");
            cache.insert(&format!("/cold/{i}"), entry(i));
        }
        assert!(
            cache.get("/hot").is_some(),
            "constantly-touched entry was evicted"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ShardedCache::new(Some(0));
    }

    #[test]
    fn remove_drops_the_entry() {
        let cache = ShardedCache::new(None);
        cache.insert("/a", entry(1));
        assert!(cache.remove("/a").is_some());
        assert!(cache.remove("/a").is_none());
        assert!(cache.get("/a").is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn eviction_counters_track_lru_pressure_only() {
        let cache = ShardedCache::new(Some(SHARD_COUNT)); // 1 per shard
        assert_eq!(cache.evictions(), 0);
        for i in 0..100u64 {
            cache.insert(&format!("/spray/{i}"), entry(i));
        }
        let stats = cache.shard_stats();
        assert_eq!(stats.len(), SHARD_COUNT);
        let total: u64 = stats.iter().map(|s| s.evictions).sum();
        assert_eq!(total, cache.evictions());
        assert!(total > 0, "100 inserts into 16 one-entry shards must evict");
        assert_eq!(stats.iter().map(|s| s.len).sum::<usize>(), cache.len());
        // Replacements and removals are not evictions.
        let unbounded = ShardedCache::new(None);
        unbounded.insert("/a", entry(1));
        unbounded.insert("/a", entry(2));
        unbounded.remove("/a");
        assert_eq!(unbounded.evictions(), 0);
    }
}
