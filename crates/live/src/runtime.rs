//! The hot-swappable consistency runtime behind the live proxy's
//! refresh plane.
//!
//! PR 4 extracted the refresher's scheduling state into
//! [`ConsistencyRuntime`], which owns a **versioned rules epoch**
//! ([`RulesEpoch`], an immutable snapshot behind an atomically swapped
//! `Arc`). This PR rebuilds the *execution* side of that plane for
//! throughput. The old loop picked each next path with an O(P) scan
//! over the whole rule map, issued one blocking poll at a time over a
//! single keep-alive connection, and woke every 20 ms even when idle —
//! so scheduled-vs-actual poll drift grew with both catalog size and
//! origin latency. The refresh plane is now three cooperating pieces:
//!
//! * **Due queue** — a binary heap keyed by `(due, path)`, handing out
//!   `Arc<str>` paths so the hot scheduling path allocates nothing.
//!   Reconciles are lazy: stale heap entries (rescheduled, changed, or
//!   removed paths) carry an out-of-date generation stamp and are
//!   discarded when they surface. Pop is O(log P) against the old
//!   O(P) scan, with the exact same `(due, path)` tiebreak order.
//! * **Poll workers** — [`ConsistencyRuntime::run`] spawns M workers
//!   (each given its own poller, i.e. its own origin connection) fed
//!   due paths over a bounded queue, so in-flight polls overlap origin
//!   latency while the scheduler thread keeps reconciling epochs and
//!   applying completions. A path is never handed to two workers at
//!   once, and Mt-triggered polls dedupe per target and ride the same
//!   workers instead of running inline.
//! * **Condvar parking** — the scheduler parks until the next due time,
//!   a worker completion, or [`ConsistencyRuntime::install`] (which
//!   notifies the runtime's wake signal), so an idle refresher burns no
//!   wakeups yet still adopts a fresh epoch immediately.
//!
//! Reconcile semantics are unchanged from PR 4:
//!
//! * **unchanged paths** keep their accumulated adaptive-TTR state (a
//!   grown TTR is exactly the state worth preserving across a reload);
//! * **changed paths** rebuild their [`Limd`] from the new config and
//!   poll immediately;
//! * **removed paths** stop polling, and a poll already in flight when
//!   the swap lands is discarded — it can neither panic the scheduler
//!   nor resurrect the path's (since-evicted) cache entry;
//! * **added paths** start polling immediately on adoption.
//!
//! Every poll records its **drift** — the gap between the scheduled due
//! time and the moment a worker actually started sending — into a
//! fixed-bucket histogram ([`DriftHistogram`]), published with the rest
//! of [`RefreshMetrics`] under the `refresh` section of
//! `GET /admin/stats`. Drift is the measurable form of the fidelity
//! erosion the paper's Δ guarantees suffer when polls fire late.
//!
//! The swap itself ([`ConsistencyRuntime::install`]) validates first
//! (duplicate paths, zero tolerances, inverted TTR bounds — the same
//! validator [`crate::proxy::LiveProxy::start`] uses) and never blocks
//! the reactors: readers clone the `Arc` out from under a briefly-held
//! lock. Nothing about the cache or the connection engine is touched, so
//! a reload keeps every cached object and every established socket.
//!
//! The runtime also publishes a per-path status snapshot
//! ([`ConsistencyRuntime::status`]) after every poll, which is what
//! `GET /admin/rules` serves.

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::time::{Duration as StdDuration, Instant, SystemTime, UNIX_EPOCH};

use parking_lot::RwLock;

use mutcon_core::error::ConfigError;
use mutcon_core::limd::{Limd, LimdConfig, PollResult};
use mutcon_core::mutual::temporal::MtCoordinator;
use mutcon_core::object::ObjectId;
use mutcon_core::time::{Duration, Timestamp};

use crate::proxy::{GroupRule, RefreshRule};

/// Current wall-clock time on the millisecond Unix timeline the
/// consistency algorithms run on.
pub(crate) fn unix_now() -> Timestamp {
    // Saturating: a clock jumped before the epoch (bad RTC, aggressive
    // NTP step) reads as 0 instead of panicking the refresher thread.
    Timestamp::from_millis(
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_millis() as u64,
    )
}

pub(crate) fn std_duration(d: Duration) -> StdDuration {
    StdDuration::from_millis(d.as_millis())
}

/// One immutable snapshot of the refresh rules in force. Epochs are
/// never mutated — a reload installs a fresh one with a bumped version.
#[derive(Debug, Clone, PartialEq)]
pub struct RulesEpoch {
    /// Monotonically increasing version; starts at 1, bumped by every
    /// [`ConsistencyRuntime::install`].
    pub version: u64,
    /// Per-path refresh rules (validated: paths unique).
    pub rules: Vec<RefreshRule>,
    /// Optional Mt coordination across all rule paths.
    pub group: Option<GroupRule>,
    /// Path → index into `rules`, so `rule()` is O(1): the scheduler
    /// reconciles 50k-path catalogs, and a linear lookup would make
    /// that O(P²).
    by_path: HashMap<String, usize>,
}

impl RulesEpoch {
    /// Builds an epoch, indexing the (validated-unique) paths.
    pub fn new(version: u64, rules: Vec<RefreshRule>, group: Option<GroupRule>) -> RulesEpoch {
        let by_path = rules
            .iter()
            .enumerate()
            .map(|(i, r)| (r.path.clone(), i))
            .collect();
        RulesEpoch {
            version,
            rules,
            group,
            by_path,
        }
    }

    /// The rule for `path`, if this epoch has one.
    pub fn rule(&self, path: &str) -> Option<&RefreshRule> {
        self.by_path.get(path).map(|&i| &self.rules[i])
    }

    /// Whether `path` is ruled in this epoch.
    pub fn contains(&self, path: &str) -> bool {
        self.by_path.contains_key(path)
    }
}

/// The full LIMD configuration a refresh rule implies. Rejects (rather
/// than silently clamping) inverted TTR bounds — the admin plane needs
/// the reason, not a guess.
pub(crate) fn limd_config(rule: &RefreshRule) -> Result<LimdConfig, ConfigError> {
    LimdConfig::builder(rule.delta).ttr_max(rule.ttr_max).build()
}

/// Validates a rule set + group the way both [`crate::proxy::LiveProxy::start`]
/// and the `PUT /admin/rules` endpoint require: unique paths that don't
/// shadow control endpoints, per-rule LIMD configs that build cleanly
/// (positive Δ, `ttr_max ≥ Δ`), and a positive group δ.
///
/// # Errors
///
/// Returns a human-readable reason (the PUT endpoint's 400 body).
pub fn validate(rules: &[RefreshRule], group: Option<&GroupRule>) -> Result<(), String> {
    let mut seen: HashSet<&str> = HashSet::with_capacity(rules.len());
    for rule in rules {
        if !rule.path.starts_with('/') {
            return Err(format!("rule path {:?} must start with '/'", rule.path));
        }
        if rule.path.starts_with("/admin/") || rule.path == "/__stats" {
            return Err(format!(
                "rule path {:?} shadows a proxy control endpoint",
                rule.path
            ));
        }
        if !seen.insert(rule.path.as_str()) {
            return Err(format!("duplicate rule for {}", rule.path));
        }
        limd_config(rule).map_err(|e| format!("rule for {}: {e}", rule.path))?;
    }
    if let Some(group) = group {
        if group.delta.is_zero() {
            return Err("group delta must be positive".to_owned());
        }
    }
    Ok(())
}

/// What a successful [`ConsistencyRuntime::install`] did, path by path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstallReport {
    /// The freshly installed epoch's version.
    pub version: u64,
    /// Paths ruled now but not before.
    pub added: Vec<String>,
    /// Paths ruled before and now, with a different Δ or TTR bound
    /// (their adaptive state is rebuilt).
    pub changed: Vec<String>,
    /// Paths no longer ruled (their poll schedule stops; the caller
    /// should evict their cache entries).
    pub removed: Vec<String>,
}

/// Whether a poll was LIMD-scheduled or triggered by the Mt coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollKind {
    /// A regular LIMD-scheduled poll.
    Scheduled,
    /// An extra poll the Mt coordinator requested to restore mutual
    /// consistency.
    Triggered,
}

/// Live per-path refresher state, as published for `GET /admin/rules`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStatus {
    /// The object path.
    pub path: String,
    /// The Δ tolerance in force.
    pub delta: Duration,
    /// The TTR ceiling in force.
    pub ttr_max: Duration,
    /// The current adaptive TTR (grows while the object stays quiet).
    pub ttr: Duration,
    /// Unix milliseconds of the most recent poll, if any.
    pub last_poll_unix_ms: Option<u64>,
    /// Scheduled polls performed for this path (triggered extras not
    /// included; those belong to the coordinator).
    pub polls: u64,
    /// The epoch that (last) installed this path's rule. An unchanged
    /// rule keeps its original epoch across swaps — proof its adaptive
    /// state survived.
    pub rule_epoch: u64,
}

/// Upper bounds (µs) of the fixed drift-histogram buckets; the last
/// bucket is open-ended. Roughly logarithmic from 100 µs to 10 s —
/// fine where a healthy refresh plane lives, coarse where it is
/// already on fire.
const DRIFT_BUCKET_BOUNDS_US: [u64; 16] = [
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
];

/// Lock-free fixed-bucket histogram of per-poll drift (scheduled due
/// time vs the instant a worker actually started the poll). Bucket
/// bounds are [`DRIFT_BUCKET_BOUNDS_US`]; the recorded maximum caps the
/// top occupied bucket, so interpolated quantiles stay honest even for
/// the open-ended tail.
#[derive(Debug, Default)]
pub struct DriftHistogram {
    buckets: [AtomicU64; DRIFT_BUCKET_BOUNDS_US.len() + 1],
    max_us: AtomicU64,
}

impl DriftHistogram {
    fn record(&self, drift: StdDuration) {
        let us = drift.as_micros().min(u64::MAX as u128) as u64;
        let at = DRIFT_BUCKET_BOUNDS_US.partition_point(|&bound| us > bound);
        self.buckets[at].fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time snapshot with interpolated quantiles.
    pub fn snapshot(&self) -> DriftSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let max_us = self.max_us.load(Ordering::Relaxed);
        DriftSnapshot {
            count: counts.iter().sum(),
            p50_ms: quantile_ms(&counts, max_us, 0.50),
            p99_ms: quantile_ms(&counts, max_us, 0.99),
            max_ms: max_us as f64 / 1000.0,
        }
    }
}

/// Linear interpolation within the bucket holding the requested rank;
/// the highest occupied bucket's upper bound is clamped to the recorded
/// maximum (the open-ended tail would otherwise invent drift).
fn quantile_ms(counts: &[u64], max_us: u64, q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let last = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
    let rank = q * total as f64;
    let mut cum = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let next = cum + c as f64;
        if next >= rank {
            let lower = if i == 0 {
                0.0
            } else {
                DRIFT_BUCKET_BOUNDS_US[i - 1] as f64
            };
            let mut upper = if i < DRIFT_BUCKET_BOUNDS_US.len() {
                DRIFT_BUCKET_BOUNDS_US[i] as f64
            } else {
                max_us as f64
            };
            if i == last {
                upper = upper.min(max_us as f64).max(lower);
            }
            let frac = ((rank - cum) / c as f64).clamp(0.0, 1.0);
            return (lower + frac * (upper - lower)) / 1000.0;
        }
        cum = next;
    }
    max_us as f64 / 1000.0
}

/// Interpolated drift quantiles, as served under `refresh.drift` in
/// `GET /admin/stats` (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSnapshot {
    /// Polls recorded.
    pub count: u64,
    /// Median drift, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile drift, milliseconds.
    pub p99_ms: f64,
    /// Worst recorded drift, milliseconds.
    pub max_ms: f64,
}

/// Shared refresh-plane counters, updated by the poll workers and read
/// by the stats plane (and the drift bench) without any lock.
#[derive(Debug, Default)]
pub struct RefreshMetrics {
    workers: AtomicU64,
    in_flight: AtomicU64,
    polls: AtomicU64,
    errors: AtomicU64,
    triggered_coalesced: AtomicU64,
    drift: DriftHistogram,
}

impl RefreshMetrics {
    /// Poll workers the running refresh plane was started with.
    pub fn workers(&self) -> u64 {
        self.workers.load(Ordering::Relaxed)
    }

    /// Polls currently on the wire.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Polls started (scheduled and triggered).
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Polls that ended in a network error.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Mt triggers satisfied by a poll already in flight or queued for
    /// the same target, instead of an extra origin round trip.
    pub fn triggered_coalesced(&self) -> u64 {
        self.triggered_coalesced.load(Ordering::Relaxed)
    }

    /// Drift histogram snapshot (scheduled-due vs actual-send gap).
    pub fn drift(&self) -> DriftSnapshot {
        self.drift.snapshot()
    }

    fn set_workers(&self, n: u64) {
        self.workers.store(n, Ordering::Relaxed);
    }

    fn poll_started(&self, drift: StdDuration) {
        self.polls.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        self.drift.record(drift);
    }

    fn poll_finished(&self, errored: bool) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        if errored {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn note_triggered_coalesced(&self) {
        self.triggered_coalesced.fetch_add(1, Ordering::Relaxed);
    }
}

/// The scheduler's parking spot. A `notify` that lands between a drain
/// and the following `park` is latched in the flag, so wakeups are
/// never lost to that gap.
#[derive(Debug, Default)]
struct WakeSignal {
    pending: StdMutex<bool>,
    cv: Condvar,
}

impl WakeSignal {
    fn notify(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        *pending = true;
        self.cv.notify_all();
    }

    /// Parks until notified, or until `timeout` elapses (`None` parks
    /// indefinitely — safe only when some future event is guaranteed to
    /// notify: a worker completion, an install, or shutdown's wake).
    fn park(&self, timeout: Option<StdDuration>) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        match timeout {
            Some(t) => {
                let deadline = Instant::now() + t;
                while !*pending {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    pending = self
                        .cv
                        .wait_timeout(pending, left)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
            None => {
                while !*pending {
                    pending = self.cv.wait(pending).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
        *pending = false;
    }
}

/// The versioned, hot-swappable rules store plus the refresher's
/// scheduling engine. See the module docs.
#[derive(Debug)]
pub struct ConsistencyRuntime {
    epoch: RwLock<Arc<RulesEpoch>>,
    status: RwLock<Vec<PathStatus>>,
    metrics: RefreshMetrics,
    wake: WakeSignal,
}

impl ConsistencyRuntime {
    /// A runtime whose first epoch (version 1) holds `rules`/`group`.
    ///
    /// # Errors
    ///
    /// Returns the validation reason (see [`validate`]).
    pub fn new(rules: Vec<RefreshRule>, group: Option<GroupRule>) -> Result<Arc<Self>, String> {
        validate(&rules, group.as_ref())?;
        Ok(Arc::new(ConsistencyRuntime {
            epoch: RwLock::new(Arc::new(RulesEpoch::new(1, rules, group))),
            status: RwLock::new(Vec::new()),
            metrics: RefreshMetrics::default(),
            wake: WakeSignal::default(),
        }))
    }

    /// The epoch currently in force.
    pub fn current(&self) -> Arc<RulesEpoch> {
        Arc::clone(&self.epoch.read())
    }

    /// Whether `path` is ruled in the current epoch.
    pub fn contains(&self, path: &str) -> bool {
        self.epoch.read().contains(path)
    }

    /// The refresh plane's shared counters and drift histogram.
    pub fn refresh_metrics(&self) -> &RefreshMetrics {
        &self.metrics
    }

    /// Wakes a parked [`ConsistencyRuntime::run`] scheduler. Installs
    /// and worker completions call this internally; a shutdown caller
    /// must call it after storing the flag, or the scheduler keeps
    /// parking until its next natural wakeup.
    pub fn wake(&self) {
        self.wake.notify();
    }

    /// Validates and atomically installs a new epoch, then wakes the
    /// scheduler so adoption is immediate. The swap is the whole
    /// reload: no thread restarts, no cache drop, no connection churn.
    ///
    /// # Errors
    ///
    /// Returns the validation reason; the current epoch stays in force.
    pub fn install(
        &self,
        rules: Vec<RefreshRule>,
        group: Option<GroupRule>,
    ) -> Result<InstallReport, String> {
        validate(&rules, group.as_ref())?;
        let mut slot = self.epoch.write();
        let old = Arc::clone(&slot);
        let version = old.version + 1;
        let report = InstallReport {
            version,
            added: rules
                .iter()
                .filter(|r| !old.contains(&r.path))
                .map(|r| r.path.clone())
                .collect(),
            changed: rules
                .iter()
                .filter(|r| old.contains(&r.path) && old.rule(&r.path) != Some(*r))
                .map(|r| r.path.clone())
                .collect(),
            removed: old
                .rules
                .iter()
                .filter(|r| !rules.iter().any(|n| n.path == r.path))
                .map(|r| r.path.clone())
                .collect(),
        };
        *slot = Arc::new(RulesEpoch::new(version, rules, group));
        drop(slot);
        self.wake.notify();
        Ok(report)
    }

    /// The per-path live state last published by the scheduler, sorted
    /// by path. May lag the current epoch by the time it takes the
    /// scheduler to wake and reconcile (one notify, no polling slice).
    pub fn status(&self) -> Vec<PathStatus> {
        self.status.read().clone()
    }

    /// Full status rebuild — reconcile-time only (rule sets change
    /// rarely; polls are the hot path and use [`Self::publish_one`]).
    fn publish(&self, sched: &Scheduler) {
        let mut rows: Vec<PathStatus> = sched
            .scheds
            .iter()
            .map(|(path, s)| status_row(path, s))
            .collect();
        rows.sort_by(|a, b| a.path.cmp(&b.path));
        *self.status.write() = rows;
    }

    /// Upserts (or removes) one path's row in the sorted status vector —
    /// O(log P) per poll instead of rebuilding and re-sorting all P
    /// rows.
    fn publish_one(&self, sched: &Scheduler, path: &str) {
        let mut rows = self.status.write();
        let at = rows.binary_search_by(|r| r.path.as_str().cmp(path));
        match (sched.scheds.get(path), at) {
            (Some(s), Ok(i)) => rows[i] = status_row(path, s),
            (Some(s), Err(i)) => rows.insert(i, status_row(path, s)),
            (None, Ok(i)) => {
                rows.remove(i);
            }
            (None, Err(_)) => {}
        }
    }

    /// The refresh plane: runs until `shutdown`, spawning `workers`
    /// scoped poll workers (each owning the poller `make_poller` builds
    /// for it — in the proxy, a dedicated origin connection) and
    /// feeding them due paths over a bounded queue while this thread
    /// keeps reconciling epochs and applying completions.
    ///
    /// A poller performs the actual origin round trip (and the cache
    /// store, gated on [`ConsistencyRuntime::contains`] so a removed
    /// path's in-flight poll cannot resurrect its entry); returning
    /// `None` marks a network error and backs the path off briefly. A
    /// path is never handed to two workers at once; Mt-triggered polls
    /// dedupe per target and ride the same workers. `on_removed` fires
    /// once per path a swap un-rules, as the scheduler adopts the new
    /// epoch — the proxy evicts the path's cache entry there, so the
    /// eviction happens for *every* install (HTTP PUT, SIGHUP reload,
    /// or a direct [`ConsistencyRuntime::install`] caller), not just
    /// the admin handler's. `on_adopted` fires once per epoch the
    /// scheduler adopts, with the new version — the proxy bumps its
    /// cache generation there, wholesale-invalidating every reactor's
    /// L1 for the same "every install" guarantee.
    ///
    /// Shutdown: store the flag, then call [`ConsistencyRuntime::wake`].
    /// Workers finish the polls already on the wire (their outcomes are
    /// applied, not dropped) and queued-but-unstarted jobs are
    /// discarded.
    pub fn run<P>(
        &self,
        shutdown: &AtomicBool,
        workers: usize,
        mut make_poller: impl FnMut(usize) -> P,
        mut on_removed: impl FnMut(&str),
        mut on_adopted: impl FnMut(u64),
    ) where
        P: FnMut(PollKind, &str) -> Option<PollResult> + Send,
    {
        let workers = workers.max(1);
        self.metrics.set_workers(workers as u64);
        // Twice the worker count keeps every worker busy without
        // hoarding due paths in a queue where their drift only grows.
        let queue = JobQueue::new(workers * 2);
        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let mut d = Dispatcher::new(Scheduler::new(self.current(), Instant::now()), &self.metrics);
        self.publish(&d.sched);

        // Adopt any epoch installed since the last look, before
        // dispatching or applying a completion against stale rules.
        macro_rules! sync_epoch {
            () => {{
                let current = self.current();
                if current.version != d.sched.epoch.version {
                    for path in d.sched.reconcile(current, Instant::now()) {
                        on_removed(&path);
                    }
                    on_adopted(d.sched.epoch.version);
                    self.publish(&d.sched);
                }
            }};
        }

        std::thread::scope(|scope| {
            for worker in 0..workers {
                let mut poller = make_poller(worker);
                let queue = &queue;
                let done_tx = done_tx.clone();
                let metrics = &self.metrics;
                let wake = &self.wake;
                scope.spawn(move || {
                    while let Some(job) = queue.pop() {
                        let drift = Instant::now().saturating_duration_since(job.due);
                        metrics.poll_started(drift);
                        let ts = unix_now();
                        let result = poller(job.kind, &job.path);
                        metrics.poll_finished(result.is_none());
                        let delivered = done_tx
                            .send(Completion {
                                kind: job.kind,
                                path: job.path,
                                ts,
                                result,
                            })
                            .is_ok();
                        wake.notify();
                        if !delivered {
                            break;
                        }
                    }
                });
            }
            drop(done_tx);

            loop {
                sync_epoch!();
                while let Ok(done) = done_rx.try_recv() {
                    // The epoch may have been swapped while this poll
                    // was on the wire; reconcile *before* touching
                    // per-path state so a since-removed path's outcome
                    // is discarded.
                    sync_epoch!();
                    d.complete(&done);
                    self.publish_one(&d.sched, &done.path);
                }
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let blocked = d.dispatch(&queue);
                let wait = if blocked {
                    // The queue is full or a due path is still on the
                    // wire — either way a completion is owed and will
                    // wake us; anything sooner is a spin.
                    None
                } else {
                    match d.sched.next_due_at() {
                        Some(at) => {
                            let now = Instant::now();
                            if at <= now {
                                continue; // became due since dispatch
                            }
                            Some(at - now)
                        }
                        // Nothing scheduled at all: park until an
                        // install (or shutdown) notifies.
                        None => None,
                    }
                };
                self.wake.park(wait);
            }

            // Unstarted jobs die here; polls already on the wire finish
            // and their outcomes are applied below, so a completed poll
            // is never silently dropped.
            queue.close();
            while let Ok(done) = done_rx.recv() {
                sync_epoch!();
                d.complete(&done);
                self.publish_one(&d.sched, &done.path);
            }
        });
    }
}

fn status_row(path: &str, s: &PathSched) -> PathStatus {
    PathStatus {
        path: path.to_owned(),
        delta: s.limd.config().delta(),
        ttr_max: s.limd.config().ttr_max(),
        ttr: s.limd.current_ttr(),
        last_poll_unix_ms: s.limd.last_poll().map(Timestamp::as_millis),
        polls: s.polls,
        rule_epoch: s.rule_epoch,
    }
}

/// One unit of work handed to a poll worker.
#[derive(Debug)]
struct Job {
    kind: PollKind,
    path: Arc<str>,
    /// When the poll was supposed to start — drift is measured against
    /// this the instant a worker picks the job up.
    due: Instant,
}

/// A finished poll, reported back to the scheduler thread.
#[derive(Debug)]
struct Completion {
    kind: PollKind,
    path: Arc<str>,
    /// Unix timestamp taken just before the poll hit the wire (the
    /// timeline the LIMD/Mt state machines run on).
    ts: Timestamp,
    result: Option<PollResult>,
}

/// Bounded MPMC job queue between the scheduler and the poll workers.
/// `try_push` never blocks (the scheduler must stay responsive);
/// workers block in `pop` until a job or close arrives. Closing drops
/// queued-but-unstarted jobs.
#[derive(Debug)]
struct JobQueue {
    state: StdMutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
    cap: usize,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            state: StdMutex::new((VecDeque::with_capacity(cap.max(1)), false)),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.1 || state.0.len() >= self.cap {
            return Err(job);
        }
        state.0.push_back(job);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.1 {
                return None;
            }
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.1 = true;
        state.0.clear();
        self.ready.notify_all();
    }
}

/// The scheduler thread's dispatch state: which paths are on the wire,
/// which Mt triggers are waiting for a worker, and the due-queue
/// scheduler itself. Split from the I/O loop so dedupe/coalescing
/// semantics are unit-testable without threads.
struct Dispatcher<'a> {
    sched: Scheduler,
    /// Paths currently handed to a worker — never dispatch a second
    /// poll for any of these.
    in_flight: HashSet<Arc<str>>,
    /// Mt-triggered targets waiting for queue space, FIFO.
    trig_queue: VecDeque<(Arc<str>, Instant)>,
    /// The set view of `trig_queue`, for O(1) dedupe.
    trig_pending: HashSet<Arc<str>>,
    metrics: &'a RefreshMetrics,
}

impl<'a> Dispatcher<'a> {
    fn new(sched: Scheduler, metrics: &'a RefreshMetrics) -> Dispatcher<'a> {
        Dispatcher {
            sched,
            in_flight: HashSet::new(),
            trig_queue: VecDeque::new(),
            trig_pending: HashSet::new(),
            metrics,
        }
    }

    /// Applies one finished poll to the scheduling state.
    fn complete(&mut self, done: &Completion) {
        self.in_flight.remove(&*done.path);
        match done.kind {
            PollKind::Scheduled => match &done.result {
                Some(result) => {
                    let triggers = self.sched.on_poll(&done.path, done.ts, result);
                    for target in triggers {
                        self.enqueue_trigger(target.as_str());
                    }
                }
                None => self.sched.on_error(&done.path, Instant::now()),
            },
            PollKind::Triggered => {
                // A failed triggered poll is simply dropped: the
                // target's own LIMD schedule still governs it.
                if let Some(result) = &done.result {
                    self.sched
                        .on_triggered(&ObjectId::new(&done.path), done.ts, result);
                }
            }
        }
    }

    /// Queues an Mt-triggered poll for `target`, deduping per target: a
    /// poll already on the wire or already queued satisfies every
    /// trigger that races in behind it.
    fn enqueue_trigger(&mut self, target: &str) {
        if self.in_flight.contains(target) || self.trig_pending.contains(target) {
            self.metrics.note_triggered_coalesced();
            return;
        }
        // Reuse the scheduler's Arc for the path — no allocation, and
        // a target un-ruled since the coordinator learned of it is
        // silently dropped.
        let Some((key, _)) = self.sched.scheds.get_key_value(target) else {
            return;
        };
        let key = Arc::clone(key);
        self.trig_pending.insert(Arc::clone(&key));
        self.trig_queue.push_back((key, Instant::now()));
    }

    /// Hands every dispatchable poll to the workers: queued triggers
    /// first (they exist to restore mutual consistency *now*), then
    /// every due scheduled path. Returns whether dispatch stalled on a
    /// full queue or an in-flight path — in which case a completion is
    /// owed and the caller should park until woken rather than spin.
    fn dispatch(&mut self, queue: &JobQueue) -> bool {
        let mut blocked = false;
        while let Some((path, due)) = self.trig_queue.pop_front() {
            if !self.sched.epoch.contains(&path) {
                self.trig_pending.remove(&path);
                continue; // target un-ruled since the trigger fired
            }
            if self.in_flight.contains(&path) {
                // A poll for the target went on the wire after this
                // trigger was queued; it satisfies the trigger.
                self.trig_pending.remove(&path);
                self.metrics.note_triggered_coalesced();
                continue;
            }
            let job = Job {
                kind: PollKind::Triggered,
                path: Arc::clone(&path),
                due,
            };
            match queue.try_push(job) {
                Ok(()) => {
                    self.trig_pending.remove(&path);
                    self.in_flight.insert(path);
                }
                Err(_) => {
                    self.trig_queue.push_front((path, due));
                    blocked = true;
                    break;
                }
            }
        }
        let now = Instant::now();
        let mut deferred: Vec<DueEntry> = Vec::new();
        while let Some(entry) = self.sched.pop_due(now) {
            if self.in_flight.contains(&entry.path) {
                // Still on the wire (a slow origin outlasted the TTR,
                // or a triggered poll covers it): park this entry
                // behind the completion, which re-evaluates it.
                deferred.push(entry);
                blocked = true;
                continue;
            }
            let job = Job {
                kind: PollKind::Scheduled,
                path: Arc::clone(&entry.path),
                due: entry.due,
            };
            match queue.try_push(job) {
                Ok(()) => {
                    self.in_flight.insert(Arc::clone(&entry.path));
                }
                Err(_) => {
                    deferred.push(entry);
                    blocked = true;
                    break;
                }
            }
        }
        for entry in deferred {
            self.sched.requeue(entry);
        }
        blocked
    }
}

/// One path's scheduling state.
#[derive(Debug)]
struct PathSched {
    limd: Limd,
    due: Instant,
    /// Generation of this path's live due-queue entry; heap entries
    /// with any other stamp are stale and discarded when they surface.
    gen: u64,
    polls: u64,
    rule_epoch: u64,
}

/// One due-queue entry. Ordered so [`BinaryHeap`] (a max-heap) surfaces
/// the *earliest* `(due, path)` first — the exact tiebreak order the
/// old O(P) scan used, which the 10k-path parity test pins down.
#[derive(Debug, Clone)]
struct DueEntry {
    due: Instant,
    path: Arc<str>,
    gen: u64,
}

impl PartialEq for DueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}

impl Eq for DueEntry {}

impl PartialOrd for DueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for DueEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.path.cmp(&self.path))
            .then_with(|| other.gen.cmp(&self.gen))
    }
}

/// The refresher's scheduling engine, owned by the scheduler thread and
/// reconciled against the shared epoch. Separated from the I/O loop so
/// epoch semantics are unit-testable without sockets or sleeps.
///
/// The due queue is a binary heap with **lazy invalidation**: a
/// reschedule pushes a fresh entry with a bumped generation instead of
/// finding and fixing the old one; stale entries are discarded as they
/// reach the top. Pop and peek are amortised O(log P), and popped
/// entries hand out `Arc<str>` — the hot scheduling path allocates
/// nothing.
#[derive(Debug)]
struct Scheduler {
    epoch: Arc<RulesEpoch>,
    scheds: HashMap<Arc<str>, PathSched>,
    due_queue: BinaryHeap<DueEntry>,
    next_gen: u64,
    coordinator: Option<MtCoordinator>,
}

impl Scheduler {
    fn new(epoch: Arc<RulesEpoch>, now: Instant) -> Scheduler {
        let mut sched = Scheduler {
            epoch: Arc::new(RulesEpoch::new(0, Vec::new(), None)),
            scheds: HashMap::new(),
            due_queue: BinaryHeap::new(),
            next_gen: 0,
            coordinator: None,
        };
        sched.reconcile(epoch, now);
        sched
    }

    /// Adopts a new epoch: unchanged paths keep their state, changed
    /// paths rebuild from the new config (due immediately), removed
    /// paths stop polling, added paths are due immediately. The Mt
    /// coordinator survives only if both the group rule and the
    /// membership are unchanged (its per-member rate estimators remain
    /// valid then, and only then). Returns the paths that stopped being
    /// ruled, for the caller's `on_removed` side effects.
    ///
    /// Heap entries for removed/changed paths are left behind and
    /// invalidated by generation; O(changed) work here, not O(heap).
    fn reconcile(&mut self, new: Arc<RulesEpoch>, now: Instant) -> Vec<Arc<str>> {
        if new.version == self.epoch.version {
            return Vec::new();
        }
        let mut next: HashMap<Arc<str>, PathSched> = HashMap::with_capacity(new.rules.len());
        let mut fresh: Vec<Arc<str>> = Vec::new();
        for rule in &new.rules {
            let unchanged = self.epoch.rule(&rule.path) == Some(rule);
            match self.scheds.remove_entry(rule.path.as_str()) {
                Some((key, existing)) if unchanged => {
                    next.insert(key, existing);
                }
                prior => {
                    let key: Arc<str> = prior
                        .map(|(key, _)| key)
                        .unwrap_or_else(|| Arc::from(rule.path.as_str()));
                    next.insert(
                        Arc::clone(&key),
                        PathSched {
                            limd: Limd::new(limd_config(rule).expect("epoch validated on install")),
                            due: now,
                            gen: 0,
                            polls: 0,
                            rule_epoch: new.version,
                        },
                    );
                    fresh.push(key);
                }
            }
        }
        // Whatever the keep/rebuild loop did not claim has no rule in
        // the new epoch.
        let mut removed: Vec<Arc<str>> = self.scheds.drain().map(|(path, _)| path).collect();
        removed.sort();
        let members_changed = new.rules.len() != self.epoch.rules.len()
            || new.rules.iter().any(|r| !self.epoch.contains(&r.path));
        if new.group != self.epoch.group || members_changed {
            self.coordinator = new.group.map(|g| {
                MtCoordinator::new(g.delta, g.policy, new.rules.iter().map(|r| ObjectId::new(&r.path)))
            });
        }
        self.scheds = next;
        self.epoch = new;
        for path in fresh {
            self.reschedule(&path, now);
        }
        removed
    }

    /// Moves `path`'s next scheduled poll to `due`: bumps its
    /// generation (invalidating any older heap entry) and pushes a
    /// fresh one. No-op for unruled paths.
    fn reschedule(&mut self, path: &str, due: Instant) {
        let Some((key, _)) = self.scheds.get_key_value(path) else {
            return;
        };
        let key = Arc::clone(key);
        self.next_gen += 1;
        let gen = self.next_gen;
        let sched = self.scheds.get_mut(path).expect("key just seen");
        sched.due = due;
        sched.gen = gen;
        self.due_queue.push(DueEntry { due, path: key, gen });
    }

    /// Puts a still-valid popped entry back (dispatch deferred it).
    fn requeue(&mut self, entry: DueEntry) {
        self.due_queue.push(entry);
    }

    /// When the earliest live entry is due, discarding stale tops.
    fn next_due_at(&mut self) -> Option<Instant> {
        loop {
            let entry = self.due_queue.peek()?;
            if self
                .scheds
                .get(&*entry.path)
                .is_some_and(|s| s.gen == entry.gen)
            {
                return Some(entry.due);
            }
            self.due_queue.pop();
        }
    }

    /// Pops the earliest live entry if it is due by `now`; `(due,
    /// path)` order, stale entries discarded along the way.
    fn pop_due(&mut self, now: Instant) -> Option<DueEntry> {
        loop {
            let head = self.due_queue.peek()?;
            if head.due > now {
                return None;
            }
            let entry = self.due_queue.pop().expect("peeked just above");
            if self
                .scheds
                .get(&*entry.path)
                .is_some_and(|s| s.gen == entry.gen)
            {
                return Some(entry);
            }
        }
    }

    /// Feeds a scheduled poll's outcome; returns the Mt-triggered
    /// targets. A path removed while its poll was in flight is a no-op.
    fn on_poll(&mut self, path: &str, now_ts: Timestamp, result: &PollResult) -> Vec<ObjectId> {
        let Some(sched) = self.scheds.get_mut(path) else {
            return Vec::new(); // rule removed mid-poll: outcome discarded
        };
        let decision = sched.limd.on_poll(now_ts, result);
        sched.polls += 1;
        self.reschedule(path, Instant::now() + std_duration(decision.ttr));
        match self.coordinator.as_mut() {
            Some(coord) => {
                let id = ObjectId::new(path);
                let triggers = coord.on_poll(&id, now_ts, result);
                coord.record_scheduled_poll(&id, now_ts + decision.ttr);
                triggers
            }
            None => Vec::new(),
        }
    }

    /// Feeds a triggered poll's outcome to the coordinator.
    fn on_triggered(&mut self, target: &ObjectId, now_ts: Timestamp, result: &PollResult) {
        if let Some(coord) = self.coordinator.as_mut() {
            coord.on_poll(target, now_ts, result);
        }
    }

    /// Backs a path off after a network error; the rule's Δ governs how
    /// aggressive a retry is sensible.
    fn on_error(&mut self, path: &str, now: Instant) {
        if let Some(sched) = self.scheds.get(path) {
            let retry = std_duration(sched.limd.config().delta().min(Duration::from_millis(200)));
            self.reschedule(path, now + retry.max(StdDuration::from_millis(20)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_core::mutual::temporal::MtPolicy;
    use std::sync::atomic::AtomicU64;

    fn rule(path: &str, delta_ms: u64) -> RefreshRule {
        RefreshRule::new(path, Duration::from_millis(delta_ms))
    }

    fn epoch(version: u64, rules: Vec<RefreshRule>, group: Option<GroupRule>) -> Arc<RulesEpoch> {
        Arc::new(RulesEpoch::new(version, rules, group))
    }

    #[test]
    fn validate_rejects_bad_rule_sets() {
        let ok = [rule("/a", 10), rule("/b", 10)];
        assert!(validate(&ok, None).is_ok());

        let dup = [rule("/a", 10), rule("/a", 20)];
        assert!(validate(&dup, None).unwrap_err().contains("duplicate"));

        let zero = [rule("/a", 0)];
        assert!(validate(&zero, None).unwrap_err().contains("/a"));

        let inverted = [rule("/a", 100).ttr_max(Duration::from_millis(50))];
        assert!(validate(&inverted, None).unwrap_err().contains("ttr"));

        let shadowing = [rule("/admin/rules", 10)];
        assert!(validate(&shadowing, None).unwrap_err().contains("control endpoint"));

        let relative = [rule("x", 10)];
        assert!(validate(&relative, None).unwrap_err().contains("start with"));

        let bad_group = GroupRule {
            delta: Duration::ZERO,
            policy: MtPolicy::TriggeredPolls,
        };
        assert!(validate(&ok, Some(&bad_group)).unwrap_err().contains("group"));
    }

    #[test]
    fn install_bumps_version_and_reports_the_diff() {
        let runtime =
            ConsistencyRuntime::new(vec![rule("/keep", 10), rule("/drop", 10)], None).unwrap();
        assert_eq!(runtime.current().version, 1);

        let report = runtime
            .install(vec![rule("/keep", 10), rule("/grow", 10), rule("/drop2", 10)], None)
            .unwrap();
        assert_eq!(report.version, 2);
        assert_eq!(report.added, vec!["/grow", "/drop2"]);
        assert!(report.changed.is_empty());
        assert_eq!(report.removed, vec!["/drop"]);
        assert_eq!(runtime.current().version, 2);

        let report = runtime
            .install(vec![rule("/keep", 25), rule("/grow", 10)], None)
            .unwrap();
        assert_eq!(report.version, 3);
        assert_eq!(report.changed, vec!["/keep"]);
        assert_eq!(report.removed, vec!["/drop2"]);

        // A rejected install leaves the current epoch untouched.
        let err = runtime.install(vec![rule("/x", 0)], None).unwrap_err();
        assert!(err.contains("/x"));
        assert_eq!(runtime.current().version, 3);
        assert!(runtime.contains("/keep"));
        assert!(!runtime.contains("/drop"));
    }

    #[test]
    fn reconcile_preserves_unchanged_paths_and_rebuilds_changed_ones() {
        let now = Instant::now();
        let mut sched = Scheduler::new(
            epoch(1, vec![rule("/keep", 10), rule("/change", 10), rule("/drop", 10)], None),
            now,
        );

        // Grow /keep's TTR with a few quiet polls.
        let mut ts = unix_now();
        for _ in 0..4 {
            ts += Duration::from_millis(50);
            sched.on_poll("/keep", ts, &PollResult::NotModified);
        }
        let grown = sched.scheds["/keep"].limd.current_ttr();
        assert!(grown > Duration::from_millis(10), "TTR must have grown");

        sched.reconcile(
            epoch(2, vec![rule("/keep", 10), rule("/change", 25), rule("/new", 10)], None),
            Instant::now(),
        );

        // Unchanged: adaptive state and origin epoch preserved.
        assert_eq!(sched.scheds["/keep"].limd.current_ttr(), grown);
        assert_eq!(sched.scheds["/keep"].rule_epoch, 1);
        assert_eq!(sched.scheds["/keep"].polls, 4);
        // Changed: rebuilt from the new config.
        assert_eq!(
            sched.scheds["/change"].limd.config().delta(),
            Duration::from_millis(25)
        );
        assert_eq!(sched.scheds["/change"].rule_epoch, 2);
        assert_eq!(sched.scheds["/change"].polls, 0);
        // Added: fresh; removed: gone.
        assert_eq!(sched.scheds["/new"].rule_epoch, 2);
        assert!(!sched.scheds.contains_key("/drop"));
        assert_eq!(sched.scheds.len(), 3);
    }

    #[test]
    fn poll_for_a_removed_path_is_discarded() {
        let now = Instant::now();
        let mut sched = Scheduler::new(epoch(1, vec![rule("/gone", 10)], None), now);
        sched.reconcile(epoch(2, vec![], None), now);
        // The in-flight poll's outcome arrives after the swap: no panic,
        // no state, no triggers — and the stale heap entry is discarded.
        let triggers = sched.on_poll("/gone", unix_now(), &PollResult::NotModified);
        assert!(triggers.is_empty());
        assert!(sched.scheds.is_empty());
        assert_eq!(sched.next_due_at(), None);
        assert!(sched.pop_due(Instant::now() + StdDuration::from_secs(1)).is_none());
    }

    #[test]
    fn group_coordinator_triggers_and_survives_only_compatible_swaps() {
        let group = GroupRule {
            delta: Duration::from_millis(100),
            policy: MtPolicy::TriggeredPolls,
        };
        let now = Instant::now();
        let mut sched = Scheduler::new(
            epoch(1, vec![rule("/a", 10), rule("/b", 10)], Some(group)),
            now,
        );
        let ts = unix_now();
        let triggers = sched.on_poll("/a", ts, &PollResult::modified(ts - Duration::from_millis(5)));
        assert_eq!(triggers, vec![ObjectId::new("/b")]);
        sched.on_triggered(&ObjectId::new("/b"), ts + Duration::from_millis(1), &PollResult::NotModified);

        // Same group, same membership, changed Δ on one path: the
        // coordinator (with its rate estimators) survives.
        let coord_before = format!("{:?}", sched.coordinator);
        sched.reconcile(
            epoch(2, vec![rule("/a", 25), rule("/b", 10)], Some(group)),
            Instant::now(),
        );
        assert_eq!(format!("{:?}", sched.coordinator), coord_before);

        // Membership change rebuilds it; dropping the group removes it.
        sched.reconcile(
            epoch(3, vec![rule("/a", 25), rule("/c", 10)], Some(group)),
            Instant::now(),
        );
        assert_ne!(format!("{:?}", sched.coordinator), coord_before);
        sched.reconcile(epoch(4, vec![rule("/a", 25)], None), Instant::now());
        assert!(sched.coordinator.is_none());
    }

    #[test]
    fn run_polls_until_shutdown_and_publishes_status() {
        let runtime = ConsistencyRuntime::new(vec![rule("/obj", 1)], None).unwrap();
        let shutdown = AtomicBool::new(false);
        let polls = AtomicU64::new(0);
        runtime.run(
            &shutdown,
            1,
            |_| {
                |kind: PollKind, path: &str| {
                    assert_eq!(kind, PollKind::Scheduled);
                    assert_eq!(path, "/obj");
                    if polls.fetch_add(1, Ordering::SeqCst) + 1 >= 5 {
                        shutdown.store(true, Ordering::SeqCst);
                    }
                    Some(PollResult::NotModified)
                }
            },
            |removed| panic!("nothing was removed, got {removed}"),
            |version| panic!("no swap happened, got adoption of epoch {version}"),
        );
        assert_eq!(polls.load(Ordering::SeqCst), 5);
        let status = runtime.status();
        assert_eq!(status.len(), 1);
        assert_eq!(status[0].path, "/obj");
        assert_eq!(status[0].polls, 5);
        assert_eq!(status[0].rule_epoch, 1);
        assert!(status[0].last_poll_unix_ms.is_some());
        assert!(status[0].ttr >= status[0].delta);
        let metrics = runtime.refresh_metrics();
        assert_eq!(metrics.workers(), 1);
        assert_eq!(metrics.polls(), 5);
        assert_eq!(metrics.in_flight(), 0);
        assert_eq!(metrics.errors(), 0);
        assert_eq!(metrics.drift().count, 5);
    }

    #[test]
    fn run_adopts_an_install_made_mid_flight() {
        let runtime = ConsistencyRuntime::new(vec![rule("/old", 1)], None).unwrap();
        let shutdown = AtomicBool::new(false);
        let seen = RwLock::new(Vec::<String>::new());
        let removed = RwLock::new(Vec::<String>::new());
        let adopted = RwLock::new(Vec::<u64>::new());
        runtime.run(
            &shutdown,
            1,
            |_| {
                |_: PollKind, path: &str| {
                    seen.write().push(path.to_owned());
                    let count = seen.read().len();
                    if count == 2 {
                        // Swap mid-run: /old out, /new in — a *direct*
                        // install, no HTTP handler involved.
                        runtime.install(vec![rule("/new", 1)], None).unwrap();
                    }
                    if count >= 5 {
                        shutdown.store(true, Ordering::SeqCst);
                    }
                    Some(PollResult::NotModified)
                }
            },
            |path| removed.write().push(path.to_owned()),
            |version| adopted.write().push(version),
        );
        // The adoption hook fired exactly once, with the new epoch — the
        // proxy's L1 bulk invalidation rides on it.
        assert_eq!(adopted.into_inner(), vec![2]);
        let seen = seen.into_inner();
        assert_eq!(&seen[..2], &["/old", "/old"]);
        // Everything after the swap polls the new path only — including
        // the in-flight poll's outcome being discarded for /old.
        assert!(seen[2..].iter().all(|p| p == "/new"), "{seen:?}");
        // The removal hook fired for the direct install, so eviction
        // side effects don't depend on the HTTP plane.
        assert_eq!(removed.into_inner(), vec!["/old"]);
        let status = runtime.status();
        assert_eq!(status.len(), 1);
        assert_eq!(status[0].path, "/new");
        assert_eq!(status[0].rule_epoch, 2);
    }

    #[test]
    fn due_queue_matches_the_linear_scan_order_at_10k_paths() {
        // Insertion order is a permutation (7 is coprime with 10k), so
        // nothing about the heap order can ride on insertion order.
        let paths: Vec<String> = (0..10_000u64).map(|i| format!("/obj/{:05}", i * 7 % 10_000)).collect();
        let now = Instant::now();
        let mut sched = Scheduler::new(
            epoch(1, paths.iter().map(|p| rule(p, 10)).collect(), None),
            now,
        );
        // Re-stamp every path with a clustered pseudo-random due — ~20
        // paths share each of 500 distinct µs stamps, so the (due, path)
        // tiebreak is exercised hard, and each reschedule leaves a stale
        // entry (the reconcile-time one) behind for lazy invalidation.
        for (i, path) in paths.iter().enumerate() {
            let due = now + StdDuration::from_micros((i as u64).wrapping_mul(2_654_435_761) % 500);
            sched.reschedule(path, due);
        }
        // Oracle: exactly what the old O(P) full-map scan returned —
        // min by (due, path).
        let mut expected: Vec<(Instant, String)> = sched
            .scheds
            .iter()
            .map(|(p, s)| (s.due, p.to_string()))
            .collect();
        expected.sort();
        let horizon = now + StdDuration::from_secs(5);
        let mut order: Vec<(Instant, String)> = Vec::with_capacity(expected.len());
        while let Some(entry) = sched.pop_due(horizon) {
            order.push((entry.due, entry.path.to_string()));
        }
        assert_eq!(order.len(), 10_000, "each path pops exactly once");
        assert_eq!(order, expected);
    }

    #[test]
    fn due_queue_stays_consistent_under_reconcile_churn() {
        let all: Vec<String> = (0..2_000).map(|i| format!("/p/{i:04}")).collect();
        let mut sched = Scheduler::new(
            epoch(1, all.iter().map(|p| rule(p, 10)).collect(), None),
            Instant::now(),
        );
        let mut drained: HashSet<String> = HashSet::new();
        for round in 2..6u64 {
            // Each round keeps a shifting half of the catalog, changes
            // every third survivor's Δ, and drops the rest.
            let rules: Vec<RefreshRule> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i as u64 + round) % 2 == 0)
                .map(|(i, p)| rule(p, if i % 3 == 0 { 10 + round } else { 10 }))
                .collect();
            let live: HashSet<String> = rules.iter().map(|r| r.path.clone()).collect();
            let removed = sched.reconcile(epoch(round, rules, None), Instant::now());
            for gone in &removed {
                assert!(!live.contains(&**gone), "{gone} reported removed but still ruled");
            }
            // Drain: every live path exactly once, no ghosts from the
            // stale entries the previous rounds left in the heap.
            let horizon = Instant::now() + StdDuration::from_secs(5);
            drained.clear();
            while let Some(entry) = sched.pop_due(horizon) {
                assert!(drained.insert(entry.path.to_string()), "double pop of {}", entry.path);
            }
            assert_eq!(drained, live, "round {round} drained set != ruled set");
            // Put everything back on the schedule for the next round.
            for path in &drained {
                sched.reschedule(path, Instant::now());
            }
        }
    }

    #[test]
    fn drift_histogram_interpolates_quantiles_and_caps_the_tail() {
        let h = DriftHistogram::default();
        assert_eq!(h.snapshot().count, 0);
        for ms in 1..=100u64 {
            h.record(StdDuration::from_millis(ms));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert!((snap.max_ms - 100.0).abs() < 1e-9, "max {}", snap.max_ms);
        assert!((40.0..=60.0).contains(&snap.p50_ms), "p50 {}", snap.p50_ms);
        // The ramp's true p99 is 99 ms; interpolation against the
        // max-capped top bucket must land close, not at a bucket edge.
        assert!((90.0..=100.0).contains(&snap.p99_ms), "p99 {}", snap.p99_ms);
        assert!(snap.p50_ms <= snap.p99_ms && snap.p99_ms <= snap.max_ms);
    }

    #[test]
    fn job_queue_bounds_pushes_and_close_wakes_poppers() {
        let job = |p: &str| Job {
            kind: PollKind::Scheduled,
            path: Arc::from(p),
            due: Instant::now(),
        };
        let q = JobQueue::new(2);
        assert!(q.try_push(job("/a")).is_ok());
        assert!(q.try_push(job("/b")).is_ok());
        assert!(q.try_push(job("/c")).is_err(), "cap 2 rejects the third job");
        assert_eq!(&*q.pop().unwrap().path, "/a");
        std::thread::scope(|scope| {
            let popper = scope.spawn(|| {
                let first = q.pop().map(|j| j.path.to_string());
                // The second pop blocks on an empty queue until close.
                (first, q.pop().is_none())
            });
            std::thread::sleep(StdDuration::from_millis(20));
            q.close();
            let (first, closed) = popper.join().unwrap();
            assert_eq!(first.as_deref(), Some("/b"));
            assert!(closed, "close must wake and release a blocked pop");
        });
        assert!(q.try_push(job("/d")).is_err(), "closed queue rejects pushes");
        assert!(q.pop().is_none());
    }

    #[test]
    fn dispatcher_dedupes_triggered_polls_per_target() {
        let metrics = RefreshMetrics::default();
        let mut d = Dispatcher::new(
            Scheduler::new(epoch(1, vec![rule("/a", 10), rule("/b", 10)], None), Instant::now()),
            &metrics,
        );
        d.enqueue_trigger("/b");
        d.enqueue_trigger("/b"); // already queued: coalesced
        assert_eq!(metrics.triggered_coalesced(), 1);
        assert_eq!(d.trig_queue.len(), 1);
        d.in_flight.insert(Arc::from("/a"));
        d.enqueue_trigger("/a"); // already on the wire: coalesced
        assert_eq!(metrics.triggered_coalesced(), 2);
        d.enqueue_trigger("/zzz"); // un-ruled target: dropped, not counted
        assert_eq!(metrics.triggered_coalesced(), 2);
        assert_eq!(d.trig_queue.len(), 1);

        // Dispatch hands the trigger to a worker ahead of scheduled
        // work, and an in-flight path defers rather than double-polls.
        let q = JobQueue::new(8);
        let blocked = d.dispatch(&q);
        let first = q.pop().unwrap();
        assert_eq!(first.kind, PollKind::Triggered);
        assert_eq!(&*first.path, "/b");
        // /a (in flight) and /b (just dispatched) both deferred their
        // scheduled due entries — a completion is owed.
        assert!(blocked);
    }

    #[test]
    fn dispatcher_never_double_polls_and_respects_queue_capacity() {
        let metrics = RefreshMetrics::default();
        let q = JobQueue::new(1);
        let mut d = Dispatcher::new(
            Scheduler::new(epoch(1, vec![rule("/a", 10), rule("/b", 10)], None), Instant::now()),
            &metrics,
        );
        // Cap 1: only /a (path tiebreak) fits; /b defers.
        assert!(d.dispatch(&q));
        assert_eq!(d.in_flight.len(), 1);
        assert!(d.in_flight.contains("/a"));
        let job = q.pop().unwrap();
        assert_eq!((&*job.path, job.kind), ("/a", PollKind::Scheduled));

        // Queue drained (but /a still on the wire): /b dispatches, /a
        // must not be handed out a second time.
        d.dispatch(&q);
        assert_eq!(&*q.pop().unwrap().path, "/b");
        assert_eq!(d.in_flight.len(), 2);

        // Nothing due and both in flight: a no-op, no spin demanded.
        assert!(!d.dispatch(&q));

        // /a's completion clears it for future dispatch and reschedules
        // it one TTR out.
        d.complete(&Completion {
            kind: PollKind::Scheduled,
            path: Arc::from("/a"),
            ts: unix_now(),
            result: Some(PollResult::NotModified),
        });
        assert!(!d.in_flight.contains("/a"));
        assert!(d.sched.next_due_at().is_some());
    }

    #[test]
    fn worker_pool_overlaps_polls_without_double_polling() {
        let rules: Vec<RefreshRule> = (0..8).map(|i| rule(&format!("/p{i}"), 1)).collect();
        let runtime = ConsistencyRuntime::new(rules, None).unwrap();
        let shutdown = AtomicBool::new(false);
        let on_wire: StdMutex<HashSet<String>> = StdMutex::new(HashSet::new());
        let cur = AtomicU64::new(0);
        let max_overlap = AtomicU64::new(0);
        let total = AtomicU64::new(0);
        runtime.run(
            &shutdown,
            4,
            |_| {
                |_: PollKind, path: &str| {
                    assert!(
                        on_wire.lock().unwrap().insert(path.to_owned()),
                        "double poll on {path}"
                    );
                    let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                    max_overlap.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(StdDuration::from_millis(3));
                    cur.fetch_sub(1, Ordering::SeqCst);
                    on_wire.lock().unwrap().remove(path);
                    if total.fetch_add(1, Ordering::SeqCst) + 1 >= 60 {
                        shutdown.store(true, Ordering::SeqCst);
                    }
                    Some(PollResult::NotModified)
                }
            },
            |_| {},
            |_| {},
        );
        let total = total.load(Ordering::SeqCst);
        assert!(total >= 60);
        assert!(
            max_overlap.load(Ordering::SeqCst) > 1,
            "4 workers against a 3 ms origin must overlap polls"
        );
        let metrics = runtime.refresh_metrics();
        assert_eq!(metrics.workers(), 4);
        assert_eq!(metrics.polls(), total, "every started poll completed and was counted");
        assert_eq!(metrics.in_flight(), 0);
        let drift = metrics.drift();
        assert_eq!(drift.count, total);
        assert!(drift.p50_ms <= drift.p99_ms && drift.p99_ms <= drift.max_ms + 1e-9);
    }

    #[test]
    fn install_wakes_an_idle_scheduler_promptly() {
        let runtime = ConsistencyRuntime::new(Vec::new(), None).unwrap();
        let shutdown = AtomicBool::new(false);
        let polled_at: StdMutex<Option<Instant>> = StdMutex::new(None);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                runtime.run(
                    &shutdown,
                    1,
                    |_| {
                        |_: PollKind, path: &str| {
                            assert_eq!(path, "/fresh");
                            polled_at.lock().unwrap().get_or_insert_with(Instant::now);
                            shutdown.store(true, Ordering::SeqCst);
                            Some(PollResult::NotModified)
                        }
                    },
                    |_| {},
                    |_| {},
                );
            });
            // Let the scheduler reach its idle (indefinite) park, then
            // install: only the install's notify can end that park.
            std::thread::sleep(StdDuration::from_millis(30));
            let installed = Instant::now();
            runtime.install(vec![rule("/fresh", 50)], None).unwrap();
            while polled_at.lock().unwrap().is_none() {
                assert!(
                    installed.elapsed() < StdDuration::from_secs(5),
                    "install never woke the idle scheduler"
                );
                std::thread::sleep(StdDuration::from_millis(1));
            }
        });
        assert!(polled_at.lock().unwrap().unwrap() >= Instant::now() - StdDuration::from_secs(5));
    }
}
