//! The hot-swappable consistency runtime behind the live proxy's
//! refresher.
//!
//! PR 3's refresher built its per-path [`Limd`] map once, privately,
//! inside the thread closure: changing a single Δ meant restarting the
//! proxy — dropping the sharded cache and every keep-alive connection
//! with it. This module extracts that scheduling state into
//! [`ConsistencyRuntime`], which owns a **versioned rules epoch**
//! ([`RulesEpoch`], an immutable snapshot behind an atomically swapped
//! `Arc`). The refresher thread runs [`ConsistencyRuntime::run`] and
//! reconciles against the current epoch at every step:
//!
//! * **unchanged paths** keep their accumulated adaptive-TTR state (a
//!   grown TTR is exactly the state worth preserving across a reload);
//! * **changed paths** rebuild their [`Limd`] from the new config and
//!   poll immediately;
//! * **removed paths** stop polling, and a poll already in flight when
//!   the swap lands is discarded — it can neither panic the scheduler
//!   nor resurrect the path's (since-evicted) cache entry;
//! * **added paths** start polling within one scheduler slice.
//!
//! The swap itself ([`ConsistencyRuntime::install`]) validates first
//! (duplicate paths, zero tolerances, inverted TTR bounds — the same
//! validator [`crate::proxy::LiveProxy::start`] uses) and never blocks
//! the reactors: readers clone the `Arc` out from under a briefly-held
//! lock. Nothing about the cache or the connection engine is touched, so
//! a reload keeps every cached object and every established socket.
//!
//! The runtime also publishes a per-path status snapshot
//! ([`ConsistencyRuntime::status`]) after every poll, which is what
//! `GET /admin/rules` serves.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant, SystemTime, UNIX_EPOCH};

use parking_lot::RwLock;

use mutcon_core::error::ConfigError;
use mutcon_core::limd::{Limd, LimdConfig, PollResult};
use mutcon_core::mutual::temporal::MtCoordinator;
use mutcon_core::object::ObjectId;
use mutcon_core::time::{Duration, Timestamp};

use crate::proxy::{GroupRule, RefreshRule};

/// How finely the scheduler slices its sleeps: the bound on how long a
/// freshly installed epoch waits before the refresher notices it (and on
/// shutdown latency).
const SLICE: StdDuration = StdDuration::from_millis(20);

/// Current wall-clock time on the millisecond Unix timeline the
/// consistency algorithms run on.
pub(crate) fn unix_now() -> Timestamp {
    // Saturating: a clock jumped before the epoch (bad RTC, aggressive
    // NTP step) reads as 0 instead of panicking the refresher thread.
    Timestamp::from_millis(
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_millis() as u64,
    )
}

pub(crate) fn std_duration(d: Duration) -> StdDuration {
    StdDuration::from_millis(d.as_millis())
}

/// One immutable snapshot of the refresh rules in force. Epochs are
/// never mutated — a reload installs a fresh one with a bumped version.
#[derive(Debug, Clone, PartialEq)]
pub struct RulesEpoch {
    /// Monotonically increasing version; starts at 1, bumped by every
    /// [`ConsistencyRuntime::install`].
    pub version: u64,
    /// Per-path refresh rules (validated: paths unique).
    pub rules: Vec<RefreshRule>,
    /// Optional Mt coordination across all rule paths.
    pub group: Option<GroupRule>,
}

impl RulesEpoch {
    /// The rule for `path`, if this epoch has one.
    pub fn rule(&self, path: &str) -> Option<&RefreshRule> {
        self.rules.iter().find(|r| r.path == path)
    }

    /// Whether `path` is ruled in this epoch.
    pub fn contains(&self, path: &str) -> bool {
        self.rule(path).is_some()
    }
}

/// The full LIMD configuration a refresh rule implies. Rejects (rather
/// than silently clamping) inverted TTR bounds — the admin plane needs
/// the reason, not a guess.
pub(crate) fn limd_config(rule: &RefreshRule) -> Result<LimdConfig, ConfigError> {
    LimdConfig::builder(rule.delta).ttr_max(rule.ttr_max).build()
}

/// Validates a rule set + group the way both [`crate::proxy::LiveProxy::start`]
/// and the `PUT /admin/rules` endpoint require: unique paths that don't
/// shadow control endpoints, per-rule LIMD configs that build cleanly
/// (positive Δ, `ttr_max ≥ Δ`), and a positive group δ.
///
/// # Errors
///
/// Returns a human-readable reason (the PUT endpoint's 400 body).
pub fn validate(rules: &[RefreshRule], group: Option<&GroupRule>) -> Result<(), String> {
    let mut seen: HashSet<&str> = HashSet::with_capacity(rules.len());
    for rule in rules {
        if !rule.path.starts_with('/') {
            return Err(format!("rule path {:?} must start with '/'", rule.path));
        }
        if rule.path.starts_with("/admin/") || rule.path == "/__stats" {
            return Err(format!(
                "rule path {:?} shadows a proxy control endpoint",
                rule.path
            ));
        }
        if !seen.insert(rule.path.as_str()) {
            return Err(format!("duplicate rule for {}", rule.path));
        }
        limd_config(rule).map_err(|e| format!("rule for {}: {e}", rule.path))?;
    }
    if let Some(group) = group {
        if group.delta.is_zero() {
            return Err("group delta must be positive".to_owned());
        }
    }
    Ok(())
}

/// What a successful [`ConsistencyRuntime::install`] did, path by path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstallReport {
    /// The freshly installed epoch's version.
    pub version: u64,
    /// Paths ruled now but not before.
    pub added: Vec<String>,
    /// Paths ruled before and now, with a different Δ or TTR bound
    /// (their adaptive state is rebuilt).
    pub changed: Vec<String>,
    /// Paths no longer ruled (their poll schedule stops; the caller
    /// should evict their cache entries).
    pub removed: Vec<String>,
}

/// Whether a poll was LIMD-scheduled or triggered by the Mt coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollKind {
    /// A regular LIMD-scheduled poll.
    Scheduled,
    /// An extra poll the Mt coordinator requested to restore mutual
    /// consistency.
    Triggered,
}

/// Live per-path refresher state, as published for `GET /admin/rules`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStatus {
    /// The object path.
    pub path: String,
    /// The Δ tolerance in force.
    pub delta: Duration,
    /// The TTR ceiling in force.
    pub ttr_max: Duration,
    /// The current adaptive TTR (grows while the object stays quiet).
    pub ttr: Duration,
    /// Unix milliseconds of the most recent poll, if any.
    pub last_poll_unix_ms: Option<u64>,
    /// Scheduled polls performed for this path (triggered extras not
    /// included; those belong to the coordinator).
    pub polls: u64,
    /// The epoch that (last) installed this path's rule. An unchanged
    /// rule keeps its original epoch across swaps — proof its adaptive
    /// state survived.
    pub rule_epoch: u64,
}

/// The versioned, hot-swappable rules store plus the refresher's
/// scheduling engine. See the module docs.
#[derive(Debug)]
pub struct ConsistencyRuntime {
    epoch: RwLock<Arc<RulesEpoch>>,
    status: RwLock<Vec<PathStatus>>,
}

impl ConsistencyRuntime {
    /// A runtime whose first epoch (version 1) holds `rules`/`group`.
    ///
    /// # Errors
    ///
    /// Returns the validation reason (see [`validate`]).
    pub fn new(rules: Vec<RefreshRule>, group: Option<GroupRule>) -> Result<Arc<Self>, String> {
        validate(&rules, group.as_ref())?;
        Ok(Arc::new(ConsistencyRuntime {
            epoch: RwLock::new(Arc::new(RulesEpoch {
                version: 1,
                rules,
                group,
            })),
            status: RwLock::new(Vec::new()),
        }))
    }

    /// The epoch currently in force.
    pub fn current(&self) -> Arc<RulesEpoch> {
        Arc::clone(&self.epoch.read())
    }

    /// Whether `path` is ruled in the current epoch.
    pub fn contains(&self, path: &str) -> bool {
        self.epoch.read().contains(path)
    }

    /// Validates and atomically installs a new epoch. The swap is the
    /// whole reload: no thread restarts, no cache drop, no connection
    /// churn — the running scheduler reconciles within one slice.
    ///
    /// # Errors
    ///
    /// Returns the validation reason; the current epoch stays in force.
    pub fn install(
        &self,
        rules: Vec<RefreshRule>,
        group: Option<GroupRule>,
    ) -> Result<InstallReport, String> {
        validate(&rules, group.as_ref())?;
        let mut slot = self.epoch.write();
        let old = Arc::clone(&slot);
        let version = old.version + 1;
        let report = InstallReport {
            version,
            added: rules
                .iter()
                .filter(|r| !old.contains(&r.path))
                .map(|r| r.path.clone())
                .collect(),
            changed: rules
                .iter()
                .filter(|r| old.contains(&r.path) && old.rule(&r.path) != Some(*r))
                .map(|r| r.path.clone())
                .collect(),
            removed: old
                .rules
                .iter()
                .filter(|r| !rules.iter().any(|n| n.path == r.path))
                .map(|r| r.path.clone())
                .collect(),
        };
        *slot = Arc::new(RulesEpoch {
            version,
            rules,
            group,
        });
        Ok(report)
    }

    /// The per-path live state last published by the scheduler, sorted
    /// by path. May lag the current epoch by up to one scheduler slice.
    pub fn status(&self) -> Vec<PathStatus> {
        self.status.read().clone()
    }

    /// Full status rebuild — reconcile-time only (rule sets change
    /// rarely; polls are the hot path and use [`Self::publish_one`]).
    fn publish(&self, sched: &Scheduler) {
        let mut rows: Vec<PathStatus> = sched
            .scheds
            .iter()
            .map(|(path, s)| status_row(path, s))
            .collect();
        rows.sort_by(|a, b| a.path.cmp(&b.path));
        *self.status.write() = rows;
    }

    /// Upserts (or removes) one path's row in the sorted status vector —
    /// O(log P) per poll instead of rebuilding and re-sorting all P
    /// rows.
    fn publish_one(&self, sched: &Scheduler, path: &str) {
        let mut rows = self.status.write();
        let at = rows.binary_search_by(|r| r.path.as_str().cmp(path));
        match (sched.scheds.get(path), at) {
            (Some(s), Ok(i)) => rows[i] = status_row(path, s),
            (Some(s), Err(i)) => rows.insert(i, status_row(path, s)),
            (None, Ok(i)) => {
                rows.remove(i);
            }
            (None, Err(_)) => {}
        }
    }

    /// The refresher loop: runs until `shutdown`, driving `poll` for
    /// every due path and feeding the outcomes back into the adaptive
    /// state. `poll` performs the actual origin round trip (and the
    /// cache store, gated on [`ConsistencyRuntime::contains`] so a
    /// removed path's in-flight poll cannot resurrect its entry);
    /// returning `None` marks a network error and backs the path off
    /// briefly. `on_removed` fires once per path a swap un-rules, as
    /// the scheduler adopts the new epoch — the proxy evicts the path's
    /// cache entry there, so the eviction happens for *every* install
    /// (HTTP PUT or a direct [`ConsistencyRuntime::install`] caller),
    /// not just the admin handler's. `on_adopted` fires once per epoch
    /// the scheduler adopts, with the new version — the proxy bumps its
    /// cache generation there, wholesale-invalidating every reactor's
    /// L1 for the same "every install" guarantee.
    pub fn run(
        &self,
        shutdown: &AtomicBool,
        mut poll: impl FnMut(PollKind, &str) -> Option<PollResult>,
        mut on_removed: impl FnMut(&str),
        mut on_adopted: impl FnMut(u64),
    ) {
        let mut sched = Scheduler::new(self.current(), Instant::now());
        self.publish(&sched);
        while !shutdown.load(Ordering::SeqCst) {
            let current = self.current();
            if current.version != sched.epoch.version {
                for path in sched.reconcile(current, Instant::now()) {
                    on_removed(&path);
                }
                on_adopted(sched.epoch.version);
                self.publish(&sched);
            }
            let Some((path, at)) = sched.next_due() else {
                // No rules in force; idle until an install adds some.
                std::thread::sleep(SLICE);
                continue;
            };
            let now = Instant::now();
            if at > now {
                // Sleep in short slices so shutdown and epoch swaps stay
                // responsive.
                std::thread::sleep((at - now).min(SLICE));
                continue;
            }

            let now_ts = unix_now();
            let outcome = poll(PollKind::Scheduled, &path);
            // The epoch may have been swapped while the poll was on the
            // wire; reconcile *before* touching per-path state so a
            // since-removed path's outcome is discarded.
            let current = self.current();
            if current.version != sched.epoch.version {
                for path in sched.reconcile(current, Instant::now()) {
                    on_removed(&path);
                }
                on_adopted(sched.epoch.version);
                self.publish(&sched);
            }
            match outcome {
                Some(result) => {
                    let triggers = sched.on_poll(&path, now_ts, &result);
                    for target in triggers {
                        // Triggered polls are additional: refresh the
                        // cache and tell the coordinator, but leave the
                        // target's LIMD schedule alone.
                        if let Some(result) = poll(PollKind::Triggered, target.as_str()) {
                            sched.on_triggered(&target, unix_now(), &result);
                        }
                    }
                }
                None => sched.on_error(&path, Instant::now()),
            }
            self.publish_one(&sched, &path);
        }
    }
}

fn status_row(path: &str, s: &PathSched) -> PathStatus {
    PathStatus {
        path: path.to_owned(),
        delta: s.limd.config().delta(),
        ttr_max: s.limd.config().ttr_max(),
        ttr: s.limd.current_ttr(),
        last_poll_unix_ms: s.limd.last_poll().map(Timestamp::as_millis),
        polls: s.polls,
        rule_epoch: s.rule_epoch,
    }
}

/// One path's scheduling state.
#[derive(Debug)]
struct PathSched {
    limd: Limd,
    due: Instant,
    polls: u64,
    rule_epoch: u64,
}

/// The refresher's scheduling engine, owned by the refresher thread and
/// reconciled against the shared epoch. Separated from the I/O loop so
/// epoch semantics are unit-testable without sockets or sleeps.
#[derive(Debug)]
struct Scheduler {
    epoch: Arc<RulesEpoch>,
    scheds: HashMap<String, PathSched>,
    coordinator: Option<MtCoordinator>,
}

impl Scheduler {
    fn new(epoch: Arc<RulesEpoch>, now: Instant) -> Scheduler {
        let mut sched = Scheduler {
            epoch: Arc::new(RulesEpoch {
                version: 0,
                rules: Vec::new(),
                group: None,
            }),
            scheds: HashMap::new(),
            coordinator: None,
        };
        sched.reconcile(epoch, now);
        sched
    }

    /// Adopts a new epoch: unchanged paths keep their state, changed
    /// paths rebuild from the new config (due immediately), removed
    /// paths stop polling, added paths are due immediately. The Mt
    /// coordinator survives only if both the group rule and the
    /// membership are unchanged (its per-member rate estimators remain
    /// valid then, and only then). Returns the paths that stopped being
    /// ruled, for the caller's `on_removed` side effects.
    fn reconcile(&mut self, new: Arc<RulesEpoch>, now: Instant) -> Vec<String> {
        if new.version == self.epoch.version {
            return Vec::new();
        }
        let mut next: HashMap<String, PathSched> = HashMap::with_capacity(new.rules.len());
        for rule in &new.rules {
            let unchanged = self.epoch.rule(&rule.path) == Some(rule);
            let entry = match self.scheds.remove(&rule.path) {
                Some(existing) if unchanged => existing,
                _ => PathSched {
                    limd: Limd::new(limd_config(rule).expect("epoch validated on install")),
                    due: now,
                    polls: 0,
                    rule_epoch: new.version,
                },
            };
            next.insert(rule.path.clone(), entry);
        }
        // Whatever the keep/rebuild loop did not claim has no rule in
        // the new epoch.
        let mut removed: Vec<String> = self.scheds.drain().map(|(path, _)| path).collect();
        removed.sort();
        let members_changed = new.rules.len() != self.epoch.rules.len()
            || new.rules.iter().any(|r| !self.epoch.contains(&r.path));
        if new.group != self.epoch.group || members_changed {
            self.coordinator = new.group.map(|g| {
                MtCoordinator::new(g.delta, g.policy, new.rules.iter().map(|r| ObjectId::new(&r.path)))
            });
        }
        self.scheds = next;
        self.epoch = new;
        removed
    }

    /// The path due soonest (ties broken by path for determinism).
    fn next_due(&self) -> Option<(String, Instant)> {
        self.scheds
            .iter()
            .min_by(|a, b| a.1.due.cmp(&b.1.due).then_with(|| a.0.cmp(b.0)))
            .map(|(path, s)| (path.clone(), s.due))
    }

    /// Feeds a scheduled poll's outcome; returns the Mt-triggered
    /// targets. A path removed while its poll was in flight is a no-op.
    fn on_poll(&mut self, path: &str, now_ts: Timestamp, result: &PollResult) -> Vec<ObjectId> {
        let Some(sched) = self.scheds.get_mut(path) else {
            return Vec::new(); // rule removed mid-poll: outcome discarded
        };
        let decision = sched.limd.on_poll(now_ts, result);
        sched.polls += 1;
        sched.due = Instant::now() + std_duration(decision.ttr);
        match self.coordinator.as_mut() {
            Some(coord) => {
                let id = ObjectId::new(path);
                let triggers = coord.on_poll(&id, now_ts, result);
                coord.record_scheduled_poll(&id, now_ts + decision.ttr);
                triggers
            }
            None => Vec::new(),
        }
    }

    /// Feeds a triggered poll's outcome to the coordinator.
    fn on_triggered(&mut self, target: &ObjectId, now_ts: Timestamp, result: &PollResult) {
        if let Some(coord) = self.coordinator.as_mut() {
            coord.on_poll(target, now_ts, result);
        }
    }

    /// Backs a path off after a network error; the rule's Δ governs how
    /// aggressive a retry is sensible.
    fn on_error(&mut self, path: &str, now: Instant) {
        if let Some(sched) = self.scheds.get_mut(path) {
            let retry = std_duration(sched.limd.config().delta().min(Duration::from_millis(200)));
            sched.due = now + retry.max(StdDuration::from_millis(20));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_core::mutual::temporal::MtPolicy;
    use std::sync::atomic::AtomicU64;

    fn rule(path: &str, delta_ms: u64) -> RefreshRule {
        RefreshRule::new(path, Duration::from_millis(delta_ms))
    }

    #[test]
    fn validate_rejects_bad_rule_sets() {
        let ok = [rule("/a", 10), rule("/b", 10)];
        assert!(validate(&ok, None).is_ok());

        let dup = [rule("/a", 10), rule("/a", 20)];
        assert!(validate(&dup, None).unwrap_err().contains("duplicate"));

        let zero = [rule("/a", 0)];
        assert!(validate(&zero, None).unwrap_err().contains("/a"));

        let inverted = [rule("/a", 100).ttr_max(Duration::from_millis(50))];
        assert!(validate(&inverted, None).unwrap_err().contains("ttr"));

        let shadowing = [rule("/admin/rules", 10)];
        assert!(validate(&shadowing, None).unwrap_err().contains("control endpoint"));

        let relative = [rule("x", 10)];
        assert!(validate(&relative, None).unwrap_err().contains("start with"));

        let bad_group = GroupRule {
            delta: Duration::ZERO,
            policy: MtPolicy::TriggeredPolls,
        };
        assert!(validate(&ok, Some(&bad_group)).unwrap_err().contains("group"));
    }

    #[test]
    fn install_bumps_version_and_reports_the_diff() {
        let runtime =
            ConsistencyRuntime::new(vec![rule("/keep", 10), rule("/drop", 10)], None).unwrap();
        assert_eq!(runtime.current().version, 1);

        let report = runtime
            .install(vec![rule("/keep", 10), rule("/grow", 10), rule("/drop2", 10)], None)
            .unwrap();
        assert_eq!(report.version, 2);
        assert_eq!(report.added, vec!["/grow", "/drop2"]);
        assert!(report.changed.is_empty());
        assert_eq!(report.removed, vec!["/drop"]);
        assert_eq!(runtime.current().version, 2);

        let report = runtime
            .install(vec![rule("/keep", 25), rule("/grow", 10)], None)
            .unwrap();
        assert_eq!(report.version, 3);
        assert_eq!(report.changed, vec!["/keep"]);
        assert_eq!(report.removed, vec!["/drop2"]);

        // A rejected install leaves the current epoch untouched.
        let err = runtime.install(vec![rule("/x", 0)], None).unwrap_err();
        assert!(err.contains("/x"));
        assert_eq!(runtime.current().version, 3);
        assert!(runtime.contains("/keep"));
        assert!(!runtime.contains("/drop"));
    }

    fn epoch(version: u64, rules: Vec<RefreshRule>, group: Option<GroupRule>) -> Arc<RulesEpoch> {
        Arc::new(RulesEpoch {
            version,
            rules,
            group,
        })
    }

    #[test]
    fn reconcile_preserves_unchanged_paths_and_rebuilds_changed_ones() {
        let now = Instant::now();
        let mut sched = Scheduler::new(
            epoch(1, vec![rule("/keep", 10), rule("/change", 10), rule("/drop", 10)], None),
            now,
        );

        // Grow /keep's TTR with a few quiet polls.
        let mut ts = unix_now();
        for _ in 0..4 {
            ts += Duration::from_millis(50);
            sched.on_poll("/keep", ts, &PollResult::NotModified);
        }
        let grown = sched.scheds["/keep"].limd.current_ttr();
        assert!(grown > Duration::from_millis(10), "TTR must have grown");

        sched.reconcile(
            epoch(2, vec![rule("/keep", 10), rule("/change", 25), rule("/new", 10)], None),
            Instant::now(),
        );

        // Unchanged: adaptive state and origin epoch preserved.
        assert_eq!(sched.scheds["/keep"].limd.current_ttr(), grown);
        assert_eq!(sched.scheds["/keep"].rule_epoch, 1);
        assert_eq!(sched.scheds["/keep"].polls, 4);
        // Changed: rebuilt from the new config.
        assert_eq!(
            sched.scheds["/change"].limd.config().delta(),
            Duration::from_millis(25)
        );
        assert_eq!(sched.scheds["/change"].rule_epoch, 2);
        assert_eq!(sched.scheds["/change"].polls, 0);
        // Added: fresh; removed: gone.
        assert_eq!(sched.scheds["/new"].rule_epoch, 2);
        assert!(!sched.scheds.contains_key("/drop"));
        assert_eq!(sched.scheds.len(), 3);
    }

    #[test]
    fn poll_for_a_removed_path_is_discarded() {
        let now = Instant::now();
        let mut sched = Scheduler::new(epoch(1, vec![rule("/gone", 10)], None), now);
        sched.reconcile(epoch(2, vec![], None), now);
        // The in-flight poll's outcome arrives after the swap: no panic,
        // no state, no triggers.
        let triggers = sched.on_poll("/gone", unix_now(), &PollResult::NotModified);
        assert!(triggers.is_empty());
        assert!(sched.scheds.is_empty());
        assert_eq!(sched.next_due(), None);
    }

    #[test]
    fn group_coordinator_triggers_and_survives_only_compatible_swaps() {
        let group = GroupRule {
            delta: Duration::from_millis(100),
            policy: MtPolicy::TriggeredPolls,
        };
        let now = Instant::now();
        let mut sched = Scheduler::new(
            epoch(1, vec![rule("/a", 10), rule("/b", 10)], Some(group)),
            now,
        );
        let ts = unix_now();
        let triggers = sched.on_poll("/a", ts, &PollResult::modified(ts - Duration::from_millis(5)));
        assert_eq!(triggers, vec![ObjectId::new("/b")]);
        sched.on_triggered(&ObjectId::new("/b"), ts + Duration::from_millis(1), &PollResult::NotModified);

        // Same group, same membership, changed Δ on one path: the
        // coordinator (with its rate estimators) survives.
        let coord_before = format!("{:?}", sched.coordinator);
        sched.reconcile(
            epoch(2, vec![rule("/a", 25), rule("/b", 10)], Some(group)),
            Instant::now(),
        );
        assert_eq!(format!("{:?}", sched.coordinator), coord_before);

        // Membership change rebuilds it; dropping the group removes it.
        sched.reconcile(
            epoch(3, vec![rule("/a", 25), rule("/c", 10)], Some(group)),
            Instant::now(),
        );
        assert_ne!(format!("{:?}", sched.coordinator), coord_before);
        sched.reconcile(epoch(4, vec![rule("/a", 25)], None), Instant::now());
        assert!(sched.coordinator.is_none());
    }

    #[test]
    fn run_polls_until_shutdown_and_publishes_status() {
        let runtime = ConsistencyRuntime::new(vec![rule("/obj", 1)], None).unwrap();
        let shutdown = AtomicBool::new(false);
        let polls = AtomicU64::new(0);
        runtime.run(
            &shutdown,
            |kind, path| {
                assert_eq!(kind, PollKind::Scheduled);
                assert_eq!(path, "/obj");
                if polls.fetch_add(1, Ordering::SeqCst) + 1 >= 5 {
                    shutdown.store(true, Ordering::SeqCst);
                }
                Some(PollResult::NotModified)
            },
            |removed| panic!("nothing was removed, got {removed}"),
            |version| panic!("no swap happened, got adoption of epoch {version}"),
        );
        assert_eq!(polls.load(Ordering::SeqCst), 5);
        let status = runtime.status();
        assert_eq!(status.len(), 1);
        assert_eq!(status[0].path, "/obj");
        assert_eq!(status[0].polls, 5);
        assert_eq!(status[0].rule_epoch, 1);
        assert!(status[0].last_poll_unix_ms.is_some());
        assert!(status[0].ttr >= status[0].delta);
    }

    #[test]
    fn run_adopts_an_install_made_mid_flight() {
        let runtime = ConsistencyRuntime::new(vec![rule("/old", 1)], None).unwrap();
        let shutdown = AtomicBool::new(false);
        let seen = RwLock::new(Vec::<String>::new());
        let removed = RwLock::new(Vec::<String>::new());
        let adopted = RwLock::new(Vec::<u64>::new());
        runtime.run(
            &shutdown,
            |_, path| {
                seen.write().push(path.to_owned());
                let count = seen.read().len();
                if count == 2 {
                    // Swap mid-run: /old out, /new in — a *direct*
                    // install, no HTTP handler involved.
                    runtime.install(vec![rule("/new", 1)], None).unwrap();
                }
                if count >= 5 {
                    shutdown.store(true, Ordering::SeqCst);
                }
                Some(PollResult::NotModified)
            },
            |path| removed.write().push(path.to_owned()),
            |version| adopted.write().push(version),
        );
        // The adoption hook fired exactly once, with the new epoch — the
        // proxy's L1 bulk invalidation rides on it.
        assert_eq!(adopted.into_inner(), vec![2]);
        let seen = seen.into_inner();
        assert_eq!(&seen[..2], &["/old", "/old"]);
        // Everything after the swap polls the new path only — including
        // the in-flight poll's outcome being discarded for /old.
        assert!(seen[2..].iter().all(|p| p == "/new"), "{seen:?}");
        // The removal hook fired for the direct install, so eviction
        // side effects don't depend on the HTTP plane.
        assert_eq!(removed.into_inner(), vec!["/old"]);
        let status = runtime.status();
        assert_eq!(status.len(), 1);
        assert_eq!(status[0].path, "/new");
        assert_eq!(status[0].rule_epoch, 2);
    }
}
