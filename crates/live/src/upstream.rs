//! Bookkeeping for the keep-alive origin connection pool.
//!
//! PR 2's upstream path opened one socket per cache miss — a 2001-era
//! `Connection: close` client. This module is the ledger behind its
//! replacement: per-reactor pools of persistent nonblocking origin
//! connections with
//!
//! * **miss coalescing** — concurrent misses whose serialized request
//!   bytes match share one *job*; N waiters, one origin fetch;
//! * **connection reuse** — a connection that finishes a response with
//!   keep-alive semantics parks in an idle list and serves the next
//!   queued job without a fresh TCP handshake;
//! * **bounded fan-out** — a per-origin connection cap; excess jobs
//!   queue FIFO. The cap starts at [`MAX_CONNS_PER_ORIGIN`] and, once a
//!   [`Limiter`] is installed, adapts to observed per-fetch latency and
//!   errors ([`PoolCore::record_fetch`]) — LIMD's AIMD shape applied to
//!   origin concurrency;
//! * **stale-socket retry** — a *reused* connection that dies before
//!   yielding a single response byte was a pooled socket the origin had
//!   already closed; the job is requeued (once) instead of failed.
//!
//! The pool here is pure bookkeeping — no sockets, no I/O — so every
//! transition is unit-testable deterministically. The reactor in
//! [`crate::server`] owns the actual connections (as slab entries) and
//! drives this ledger from its event handlers. The ledger is generic
//! over the waiter payload `W` (the reactor uses the waiting client's
//! slab index plus its completion callback; tests use plain integers).

use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use mutcon_core::error::ConfigError;
use mutcon_core::limit::{Limiter, LimiterConfig, Sample};
use mutcon_core::time::Duration as CoreDuration;

/// Default (and initial) upper bound on simultaneously open connections
/// per origin address (per reactor). Misses beyond the cap queue rather
/// than fan out — the origin sees bounded concurrency no matter how
/// bursty the misses are. With an adaptive [`Limiter`] installed this is
/// only the starting point; the live cap follows the limiter.
pub const MAX_CONNS_PER_ORIGIN: usize = 32;

/// How many recent fetch samples the ledger keeps for observability
/// (`/admin/stats` overload section).
const RECENT_SAMPLES: usize = 16;

/// One recorded origin fetch, as exposed to the stats plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchSample {
    /// Wall-clock latency of the fetch in milliseconds.
    pub latency_ms: u64,
    /// Whether the fetch completed with a response.
    pub ok: bool,
    /// The per-origin cap after this sample was applied.
    pub limit_after: usize,
}

/// A read-only snapshot of the adaptive fan-out state for stats.
#[derive(Debug, Clone)]
pub struct LimitSnapshot {
    /// The live per-origin connection cap.
    pub limit: usize,
    /// Spec form of the governing algorithm (`None` while static).
    pub algorithm: Option<String>,
    /// Fetches recorded as successes.
    pub samples_ok: u64,
    /// Fetches recorded as overload signals (errors/timeouts).
    pub samples_overload: u64,
    /// The most recent samples, oldest first.
    pub recent: Vec<FetchSample>,
}

/// Identifies one fetch job within a pool.
pub type JobId = usize;

/// How a submitted miss was filed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// An identical fetch was already in flight (or queued); the waiter
    /// was added to it. No new origin work.
    Coalesced(JobId),
    /// A new job was created and queued; the caller should try to start
    /// it ([`PoolCore::claim_idle`] / [`PoolCore::can_open`]).
    New(JobId),
}

impl Submit {
    /// The job the waiter ended up on, either way.
    pub fn job(self) -> JobId {
        match self {
            Submit::Coalesced(id) | Submit::New(id) => id,
        }
    }
}

/// What remains of a job after a waiter leaves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AfterLeave {
    /// Other waiters remain; the fetch continues.
    StillWanted,
    /// No waiters remain but a connection is already fetching; let it
    /// finish (the result is discarded, the connection returns to the
    /// pool).
    Orphaned,
    /// No waiters remained and the job was still queued — it has been
    /// dropped entirely.
    Dropped,
}

/// One coalesced fetch: the serialized request plus everyone awaiting
/// its outcome.
#[derive(Debug)]
pub struct Job<W> {
    /// Origin address.
    pub addr: SocketAddr,
    /// Serialized request — the wire bytes *and* the coalescing key
    /// (shared with the key index, so neither side copies it).
    pub request: Arc<[u8]>,
    /// Waiters to deliver the outcome to.
    pub waiters: Vec<W>,
    /// Slab index of the connection fetching this job, once assigned.
    pub assigned: Option<usize>,
    /// Whether the stale-socket retry has been spent.
    pub retried: bool,
}

/// The per-reactor pool ledger. See the module docs.
#[derive(Debug)]
pub struct PoolCore<W> {
    jobs: Vec<Option<Job<W>>>,
    free_jobs: Vec<usize>,
    /// Coalescing index: origin → request bytes → live job. Nested so
    /// lookups borrow the caller's bytes (`Arc<[u8]>: Borrow<[u8]>`)
    /// instead of cloning a key per miss.
    by_key: HashMap<SocketAddr, HashMap<Arc<[u8]>, JobId>>,
    /// Jobs awaiting a connection, FIFO per origin.
    queued: HashMap<SocketAddr, VecDeque<JobId>>,
    /// Idle pooled connections per origin (slab index, parked-at), most
    /// recently parked last.
    idle: HashMap<SocketAddr, Vec<(usize, Instant)>>,
    /// Open connections per origin (connecting + busy + idle).
    open: HashMap<SocketAddr, usize>,
    max_per_origin: usize,
    /// Adaptive controller for `max_per_origin`; `None` keeps the cap
    /// static at whatever `new` was given.
    limiter: Option<Limiter>,
    /// Recent fetch samples, oldest first (stats only).
    recent: VecDeque<FetchSample>,
    samples_ok: u64,
    samples_overload: u64,
}

impl<W> Default for PoolCore<W> {
    fn default() -> Self {
        PoolCore::new(MAX_CONNS_PER_ORIGIN)
    }
}

impl<W> PoolCore<W> {
    /// A ledger bounding each origin to `max_per_origin` connections.
    ///
    /// # Panics
    ///
    /// Panics if `max_per_origin` is zero.
    pub fn new(max_per_origin: usize) -> PoolCore<W> {
        assert!(max_per_origin > 0, "pool needs at least one connection per origin");
        PoolCore {
            jobs: Vec::new(),
            free_jobs: Vec::new(),
            by_key: HashMap::new(),
            queued: HashMap::new(),
            idle: HashMap::new(),
            open: HashMap::new(),
            max_per_origin,
            limiter: None,
            recent: VecDeque::new(),
            samples_ok: 0,
            samples_overload: 0,
        }
    }

    /// Installs (or replaces) the adaptive controller for the per-origin
    /// cap. The current cap is carried into the limiter's bounds rather
    /// than reset, so a hot-swap keeps the learned operating point.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation errors; on error the
    /// previous controller (or static cap) stays in force.
    pub fn set_limiter(&mut self, config: LimiterConfig) -> Result<(), ConfigError> {
        match self.limiter.as_mut() {
            Some(limiter) => limiter.reconfigure(config)?,
            None => self.limiter = Some(Limiter::new(config, self.max_per_origin)?),
        }
        self.max_per_origin = self.limiter.as_ref().expect("just installed").limit();
        Ok(())
    }

    /// Removes the adaptive controller, restoring a static cap.
    pub fn clear_limiter(&mut self, cap: usize) {
        self.limiter = None;
        self.max_per_origin = cap.max(1);
    }

    /// Records one finished origin fetch: `ok` fetches feed their latency
    /// to the limiter as successes, failed ones (connect errors, broken
    /// transfers, timeouts) as overload signals. Returns the possibly
    /// updated per-origin cap. With no limiter installed this still
    /// counts the sample for stats but leaves the cap alone.
    pub fn record_fetch(
        &mut self,
        addr: SocketAddr,
        latency: std::time::Duration,
        ok: bool,
    ) -> usize {
        let latency_ms = u64::try_from(latency.as_millis()).unwrap_or(u64::MAX);
        if ok {
            self.samples_ok += 1;
        } else {
            self.samples_overload += 1;
        }
        if let Some(limiter) = self.limiter.as_mut() {
            // In-flight from the limiter's point of view: connections
            // actually fetching (open minus parked-idle) at this origin.
            let open = self.open.get(&addr).copied().unwrap_or(0);
            let idle = self.idle.get(&addr).map_or(0, Vec::len);
            let sample = Sample {
                in_flight: open.saturating_sub(idle),
                latency: CoreDuration::from_millis(latency_ms),
                outcome: if ok {
                    mutcon_core::limit::Outcome::Success
                } else {
                    mutcon_core::limit::Outcome::Overload
                },
            };
            self.max_per_origin = limiter.on_sample(&sample);
        }
        if self.recent.len() == RECENT_SAMPLES {
            self.recent.pop_front();
        }
        self.recent.push_back(FetchSample {
            latency_ms,
            ok,
            limit_after: self.max_per_origin,
        });
        self.max_per_origin
    }

    /// The live per-origin connection cap.
    pub fn current_cap(&self) -> usize {
        self.max_per_origin
    }

    /// Snapshot of the adaptive fan-out state for the stats plane.
    pub fn limit_snapshot(&self) -> LimitSnapshot {
        LimitSnapshot {
            limit: self.max_per_origin,
            algorithm: self.limiter.as_ref().map(|l| l.config().to_spec()),
            samples_ok: self.samples_ok,
            samples_overload: self.samples_overload,
            recent: self.recent.iter().copied().collect(),
        }
    }

    /// Files a miss: coalesces onto an identical live job, or creates
    /// and queues a new one. The coalescing lookup borrows `request`;
    /// only a genuinely new job takes ownership of the bytes.
    pub fn submit(&mut self, addr: SocketAddr, request: Vec<u8>, waiter: W) -> Submit {
        if let Some(&id) = self
            .by_key
            .get(&addr)
            .and_then(|keys| keys.get(request.as_slice()))
        {
            self.jobs[id]
                .as_mut()
                .expect("indexed job is live")
                .waiters
                .push(waiter);
            return Submit::Coalesced(id);
        }
        let id = match self.free_jobs.pop() {
            Some(id) => id,
            None => {
                self.jobs.push(None);
                self.jobs.len() - 1
            }
        };
        let request: Arc<[u8]> = request.into();
        self.by_key
            .entry(addr)
            .or_default()
            .insert(Arc::clone(&request), id);
        self.jobs[id] = Some(Job {
            addr,
            request,
            waiters: vec![waiter],
            assigned: None,
            retried: false,
        });
        self.queued.entry(addr).or_default().push_back(id);
        Submit::New(id)
    }

    /// The next queued job for `addr` without removing it.
    pub fn front_queued(&self, addr: SocketAddr) -> Option<JobId> {
        self.queued.get(&addr)?.front().copied()
    }

    /// Removes and returns the next queued job for `addr`.
    pub fn pop_queued(&mut self, addr: SocketAddr) -> Option<JobId> {
        let id = self.queued.get_mut(&addr)?.pop_front();
        if self.queued.get(&addr).is_some_and(VecDeque::is_empty) {
            self.queued.remove(&addr);
        }
        id
    }

    /// Claims the most recently parked idle connection for `addr`.
    pub fn claim_idle(&mut self, addr: SocketAddr) -> Option<usize> {
        let list = self.idle.get_mut(&addr)?;
        let (conn, _) = list.pop()?;
        if list.is_empty() {
            self.idle.remove(&addr);
        }
        Some(conn)
    }

    /// Whether another connection to `addr` may be opened.
    pub fn can_open(&self, addr: SocketAddr) -> bool {
        self.open.get(&addr).copied().unwrap_or(0) < self.max_per_origin
    }

    /// Records a connection opened to `addr` (connecting counts).
    pub fn note_opened(&mut self, addr: SocketAddr) {
        *self.open.entry(addr).or_insert(0) += 1;
    }

    /// Records a connection to `addr` closed (for any reason).
    pub fn note_closed(&mut self, addr: SocketAddr) {
        if let Some(n) = self.open.get_mut(&addr) {
            *n -= 1;
            if *n == 0 {
                self.open.remove(&addr);
            }
        }
    }

    /// Marks `job` as being fetched by connection `conn`.
    pub fn assign(&mut self, job: JobId, conn: usize) {
        if let Some(j) = self.jobs[job].as_mut() {
            j.assigned = Some(conn);
        }
    }

    /// Read access to a job.
    pub fn job(&self, job: JobId) -> Option<&Job<W>> {
        self.jobs.get(job).and_then(Option::as_ref)
    }

    /// Completes (or fails) a job: removes it from every index and
    /// returns it so the caller can deliver to the waiters.
    pub fn complete(&mut self, job: JobId) -> Option<Job<W>> {
        let j = self.jobs.get_mut(job)?.take()?;
        self.free_jobs.push(job);
        if let Some(keys) = self.by_key.get_mut(&j.addr) {
            keys.remove(&j.request[..]);
            if keys.is_empty() {
                self.by_key.remove(&j.addr);
            }
        }
        if j.assigned.is_none() {
            // Still queued (synchronous failure): unlink it.
            if let Some(q) = self.queued.get_mut(&j.addr) {
                q.retain(|&id| id != job);
                if q.is_empty() {
                    self.queued.remove(&j.addr);
                }
            }
        }
        Some(j)
    }

    /// Whether `job` may use its stale-socket retry, given that the
    /// connection serving it had already served `served` responses and
    /// `got_bytes` says whether any response bytes arrived this time. A
    /// reused pooled socket that dies *before the first response byte*
    /// was simply closed by the origin while parked — retry on a fresh
    /// socket; anything else is a real failure.
    pub fn retry_eligible(&self, job: JobId, served: u32, got_bytes: bool) -> bool {
        served > 0
            && !got_bytes
            && self
                .job(job)
                .is_some_and(|j| !j.retried && !j.waiters.is_empty())
    }

    /// Returns a failed job to the *front* of its origin's queue for the
    /// one-shot stale-socket retry.
    pub fn requeue_for_retry(&mut self, job: JobId) {
        if let Some(j) = self.jobs[job].as_mut() {
            j.assigned = None;
            j.retried = true;
            self.queued.entry(j.addr).or_default().push_front(job);
        }
    }

    /// Removes the waiters matching `leaving` from a job (a client that
    /// closed before its fetch finished) and reports what is left.
    pub fn leave(&mut self, job: JobId, mut leaving: impl FnMut(&W) -> bool) -> AfterLeave {
        let Some(j) = self.jobs.get_mut(job).and_then(Option::as_mut) else {
            return AfterLeave::Dropped;
        };
        j.waiters.retain(|w| !leaving(w));
        if !j.waiters.is_empty() {
            return AfterLeave::StillWanted;
        }
        if j.assigned.is_some() {
            return AfterLeave::Orphaned;
        }
        self.complete(job);
        AfterLeave::Dropped
    }

    /// Parks a connection as idle for `addr`.
    pub fn release_idle(&mut self, addr: SocketAddr, conn: usize, now: Instant) {
        self.idle.entry(addr).or_default().push((conn, now));
    }

    /// Removes a connection from the idle lists (it died while parked).
    /// Returns its origin if it was indeed idle.
    pub fn forget_idle(&mut self, conn: usize) -> Option<SocketAddr> {
        let mut hit = None;
        for (addr, list) in self.idle.iter_mut() {
            if let Some(pos) = list.iter().position(|&(c, _)| c == conn) {
                list.remove(pos);
                hit = Some(*addr);
                break;
            }
        }
        if let Some(addr) = hit {
            if self.idle.get(&addr).is_some_and(Vec::is_empty) {
                self.idle.remove(&addr);
            }
        }
        hit
    }

    /// Idle connections parked longer than `max_age`, removed from the
    /// ledger and returned (with their origin) for the caller to close.
    pub fn reap_idle(&mut self, now: Instant, max_age: std::time::Duration) -> Vec<(usize, SocketAddr)> {
        let mut reaped = Vec::new();
        for (addr, list) in self.idle.iter_mut() {
            list.retain(|&(conn, since)| {
                if now.duration_since(since) > max_age {
                    reaped.push((conn, *addr));
                    false
                } else {
                    true
                }
            });
        }
        self.idle.retain(|_, list| !list.is_empty());
        reaped
    }

    /// Number of idle pooled connections for `addr` (tests).
    pub fn idle_len(&self, addr: SocketAddr) -> usize {
        self.idle.get(&addr).map_or(0, Vec::len)
    }

    /// Number of queued jobs for `addr` (tests).
    pub fn queued_len(&self, addr: SocketAddr) -> usize {
        self.queued.get(&addr).map_or(0, VecDeque::len)
    }

    /// Open connections recorded for `addr` (tests).
    pub fn open_len(&self, addr: SocketAddr) -> usize {
        self.open.get(&addr).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn identical_requests_coalesce_onto_one_job() {
        let mut pool: PoolCore<u32> = PoolCore::default();
        let a = addr(9000);
        let first = pool.submit(a, b"GET /x".to_vec(), 1);
        let Submit::New(job) = first else {
            panic!("first submit must create the job")
        };
        for waiter in 2..=100 {
            assert_eq!(
                pool.submit(a, b"GET /x".to_vec(), waiter),
                Submit::Coalesced(job),
                "waiter {waiter} must coalesce"
            );
        }
        assert_eq!(pool.queued_len(a), 1, "one job, not one per waiter");
        assert_eq!(pool.job(job).unwrap().waiters.len(), 100);
    }

    #[test]
    fn different_keys_and_origins_do_not_coalesce() {
        let mut pool: PoolCore<u32> = PoolCore::default();
        let a = addr(9000);
        let b = addr(9001);
        assert!(matches!(pool.submit(a, b"GET /x".to_vec(), 1), Submit::New(_)));
        assert!(matches!(pool.submit(a, b"GET /y".to_vec(), 2), Submit::New(_)));
        assert!(matches!(pool.submit(b, b"GET /x".to_vec(), 3), Submit::New(_)));
        assert_eq!(pool.queued_len(a), 2);
        assert_eq!(pool.queued_len(b), 1);
    }

    #[test]
    fn completion_unlinks_the_key_so_later_misses_refetch() {
        let mut pool: PoolCore<u32> = PoolCore::default();
        let a = addr(9000);
        let job = pool.submit(a, b"GET /x".to_vec(), 1).job();
        pool.pop_queued(a);
        pool.assign(job, 7);
        let done = pool.complete(job).unwrap();
        assert_eq!(done.waiters, vec![1]);
        // The key is free again: a new miss is a new fetch.
        assert!(matches!(pool.submit(a, b"GET /x".to_vec(), 2), Submit::New(_)));
    }

    #[test]
    fn job_slots_are_recycled() {
        let mut pool: PoolCore<u32> = PoolCore::default();
        let a = addr(9000);
        let first = pool.submit(a, b"GET /x".to_vec(), 1).job();
        pool.pop_queued(a);
        pool.assign(first, 0);
        pool.complete(first);
        let second = pool.submit(a, b"GET /y".to_vec(), 2).job();
        assert_eq!(first, second, "freed slot is reused");
    }

    #[test]
    fn queue_caps_fan_out_per_origin() {
        let mut pool: PoolCore<u32> = PoolCore::new(2);
        let a = addr(9000);
        assert!(pool.can_open(a));
        pool.note_opened(a);
        assert!(pool.can_open(a));
        pool.note_opened(a);
        assert!(!pool.can_open(a), "cap reached");
        pool.note_closed(a);
        assert!(pool.can_open(a));
        assert_eq!(pool.open_len(a), 1);
    }

    #[test]
    fn idle_connections_are_claimed_lifo() {
        let mut pool: PoolCore<u32> = PoolCore::default();
        let a = addr(9000);
        let now = Instant::now();
        pool.release_idle(a, 11, now);
        pool.release_idle(a, 12, now);
        // Most recently parked first: its socket is warmest.
        assert_eq!(pool.claim_idle(a), Some(12));
        assert_eq!(pool.claim_idle(a), Some(11));
        assert_eq!(pool.claim_idle(a), None);
    }

    #[test]
    fn idle_reaping_is_age_based() {
        let mut pool: PoolCore<u32> = PoolCore::default();
        let a = addr(9000);
        let old = Instant::now() - Duration::from_secs(60);
        let now = Instant::now();
        pool.release_idle(a, 1, old);
        pool.release_idle(a, 2, now);
        let reaped = pool.reap_idle(now, Duration::from_secs(10));
        assert_eq!(reaped, vec![(1, a)]);
        assert_eq!(pool.idle_len(a), 1);
    }

    #[test]
    fn forget_idle_removes_a_dead_parked_conn() {
        let mut pool: PoolCore<u32> = PoolCore::default();
        let a = addr(9000);
        pool.release_idle(a, 5, Instant::now());
        assert_eq!(pool.forget_idle(5), Some(a));
        assert_eq!(pool.forget_idle(5), None);
        assert_eq!(pool.idle_len(a), 0);
    }

    #[test]
    fn stale_socket_retry_is_single_shot_and_reuse_only() {
        let mut pool: PoolCore<u32> = PoolCore::default();
        let a = addr(9000);
        let job = pool.submit(a, b"GET /x".to_vec(), 1).job();
        pool.pop_queued(a);
        pool.assign(job, 3);

        // A fresh (never-reused) connection failing is a real failure.
        assert!(!pool.retry_eligible(job, 0, false));
        // Response bytes arrived → mid-transfer death, not staleness.
        assert!(!pool.retry_eligible(job, 2, true));
        // Reused + zero bytes → retry once.
        assert!(pool.retry_eligible(job, 2, false));
        pool.requeue_for_retry(job);
        assert_eq!(pool.front_queued(a), Some(job));
        assert!(pool.job(job).unwrap().retried);
        // The retry is spent.
        pool.pop_queued(a);
        pool.assign(job, 4);
        assert!(!pool.retry_eligible(job, 5, false));
    }

    #[test]
    fn retry_requeues_at_the_front() {
        let mut pool: PoolCore<u32> = PoolCore::default();
        let a = addr(9000);
        let first = pool.submit(a, b"GET /x".to_vec(), 1).job();
        let second = pool.submit(a, b"GET /y".to_vec(), 2).job();
        pool.pop_queued(a);
        pool.assign(first, 3);
        pool.requeue_for_retry(first);
        // The retried job goes ahead of the still-queued one.
        assert_eq!(pool.pop_queued(a), Some(first));
        assert_eq!(pool.pop_queued(a), Some(second));
    }

    #[test]
    fn leaving_waiters_drop_queued_jobs_but_orphan_running_ones() {
        let mut pool: PoolCore<u32> = PoolCore::default();
        let a = addr(9000);

        // Queued job, last waiter leaves → dropped entirely.
        let queued = pool.submit(a, b"GET /q".to_vec(), 1).job();
        assert_eq!(pool.leave(queued, |&w| w == 1), AfterLeave::Dropped);
        assert_eq!(pool.queued_len(a), 0);
        assert!(pool.job(queued).is_none());

        // Running job: one of two waiters leaves → still wanted; the
        // second leaves → orphaned (connection finishes, result binned).
        let running = pool.submit(a, b"GET /r".to_vec(), 1).job();
        pool.submit(a, b"GET /r".to_vec(), 2);
        pool.pop_queued(a);
        pool.assign(running, 9);
        assert_eq!(pool.leave(running, |&w| w == 1), AfterLeave::StillWanted);
        assert_eq!(pool.leave(running, |&w| w == 2), AfterLeave::Orphaned);
        assert!(pool.job(running).unwrap().waiters.is_empty());
        // Completion still works and frees the key.
        pool.complete(running);
        assert!(matches!(pool.submit(a, b"GET /r".to_vec(), 3), Submit::New(_)));
    }

    #[test]
    #[should_panic(expected = "at least one connection")]
    fn zero_cap_rejected() {
        let _ = PoolCore::<u32>::new(0);
    }

    #[test]
    fn static_pool_counts_samples_but_keeps_its_cap() {
        let mut pool: PoolCore<u32> = PoolCore::new(4);
        let a = addr(9000);
        pool.note_opened(a);
        assert_eq!(pool.record_fetch(a, Duration::from_millis(5), true), 4);
        assert_eq!(pool.record_fetch(a, Duration::from_millis(5), false), 4);
        let snap = pool.limit_snapshot();
        assert_eq!(snap.limit, 4);
        assert_eq!(snap.algorithm, None);
        assert_eq!((snap.samples_ok, snap.samples_overload), (1, 1));
        assert_eq!(snap.recent.len(), 2);
    }

    #[test]
    fn adaptive_cap_shrinks_on_errors_and_regrows_under_pressure() {
        use mutcon_core::limit::{AimdConfig, LimiterConfig};

        let mut pool: PoolCore<u32> = PoolCore::new(8);
        let a = addr(9000);
        pool.set_limiter(LimiterConfig::Aimd(AimdConfig {
            min: 1,
            max: 16,
            ..AimdConfig::default()
        }))
        .unwrap();
        assert_eq!(pool.current_cap(), 8, "installed at the current cap");

        // Two failed fetches: 8 → 6 → 4.
        pool.record_fetch(a, Duration::from_millis(100), false);
        assert_eq!(pool.current_cap(), 6);
        pool.record_fetch(a, Duration::from_millis(100), false);
        assert_eq!(pool.current_cap(), 4);
        assert!(!pool.can_open(a) || pool.open_len(a) < 4);

        // Healthy fetches with the (shrunken) cap fully used: regrow.
        for _ in 0..4 {
            pool.note_opened(a);
        }
        pool.record_fetch(a, Duration::from_millis(5), true);
        assert_eq!(pool.current_cap(), 5);
        let snap = pool.limit_snapshot();
        assert_eq!(snap.limit, 5);
        assert!(snap.algorithm.as_deref().unwrap().starts_with("aimd:"));
        assert_eq!(snap.recent.last().unwrap().limit_after, 5);
    }

    #[test]
    fn can_open_follows_the_shrunken_cap() {
        use mutcon_core::limit::{AimdConfig, LimiterConfig};

        let mut pool: PoolCore<u32> = PoolCore::new(4);
        let a = addr(9000);
        pool.set_limiter(LimiterConfig::Aimd(AimdConfig {
            min: 1,
            max: 8,
            ..AimdConfig::default()
        }))
        .unwrap();
        pool.note_opened(a);
        pool.note_opened(a);
        assert!(pool.can_open(a));
        // One error: cap 4 → 3; with 2 open, one more may open — then no
        // more.
        pool.record_fetch(a, Duration::from_millis(50), false);
        assert_eq!(pool.current_cap(), 3);
        pool.note_opened(a);
        assert!(!pool.can_open(a));
    }

    #[test]
    fn hot_swap_keeps_the_learned_cap() {
        use mutcon_core::limit::{AimdConfig, LimiterConfig, VegasConfig};

        let mut pool: PoolCore<u32> = PoolCore::new(8);
        let a = addr(9000);
        pool.set_limiter(LimiterConfig::Aimd(AimdConfig::default())).unwrap();
        pool.record_fetch(a, Duration::from_millis(50), false);
        let learned = pool.current_cap();
        assert_eq!(learned, 6);
        pool.set_limiter(LimiterConfig::Vegas(VegasConfig::default())).unwrap();
        assert_eq!(pool.current_cap(), learned, "swap must not reset the cap");
        let bad = pool.set_limiter(LimiterConfig::Aimd(AimdConfig {
            min: 3,
            max: 2,
            ..AimdConfig::default()
        }));
        assert!(bad.is_err());
        assert_eq!(pool.current_cap(), learned, "a rejected swap changes nothing");
    }
}
