//! The live origin server: replays an [`UpdateTrace`] in wall-clock time
//! over real TCP.
//!
//! Trace time 0 is anchored to the server's start instant; every
//! `Last-Modified` (and the millisecond-precise `x-last-modified-ms`
//! extension) is reported in absolute Unix-epoch milliseconds, so the
//! proxy and origin share one timeline without clock negotiation.
//!
//! Connections are served by the shared reactor engine
//! ([`crate::server`]); there is no worker pool. Fault injection
//! ([`LiveOrigin::set_fault`]) lets tests exercise the proxy's
//! resilience: connections can be dropped on accept, or responses
//! stalled ~300 ms — implemented as a *deferred* write on the event
//! loop, so even a stalling origin keeps serving its other connections.

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant, SystemTime, UNIX_EPOCH};

use mutcon_core::time::Timestamp;
use mutcon_http::extensions::set_modification_history;
use mutcon_http::headers::HeaderName;
use mutcon_http::message::{Request, Response};
use mutcon_http::types::{Method, StatusCode};
use mutcon_traces::UpdateTrace;

use crate::client::X_LAST_MODIFIED_MS;
use crate::server::{EventLoop, Service, ServiceResult};

/// How long a [`Fault::Stall`] defers each response.
const STALL: StdDuration = StdDuration::from_millis(300);

/// Injectable failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Behave normally.
    None,
    /// Drop every connection: new ones on arrival, established
    /// (keep-alive) ones at their next request — a persistent client
    /// must not ride through this fault on a pooled socket.
    DropConnections,
    /// Stall ~300 ms before each response (exceeds aggressive client
    /// timeouts).
    Stall,
}

impl Fault {
    fn from_u8(v: u8) -> Fault {
        match v {
            1 => Fault::DropConnections,
            2 => Fault::Stall,
            _ => Fault::None,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Fault::None => 0,
            Fault::DropConnections => 1,
            Fault::Stall => 2,
        }
    }
}

/// Builder for [`LiveOrigin`].
#[derive(Debug, Default)]
pub struct LiveOriginBuilder {
    objects: Vec<(String, UpdateTrace)>,
    history: bool,
    reactors: Option<usize>,
}

impl LiveOriginBuilder {
    /// Hosts `trace` at `path`.
    pub fn object(mut self, path: impl Into<String>, trace: UpdateTrace) -> Self {
        self.objects.push((path.into(), trace));
        self
    }

    /// Enables the §5.1 modification-history extension header.
    pub fn with_history(mut self, yes: bool) -> Self {
        self.history = yes;
        self
    }

    /// Overrides the reactor-thread count (default:
    /// `MUTCON_LIVE_REACTORS` / one per core, see
    /// [`crate::server::num_reactors`]).
    pub fn reactors(mut self, reactors: usize) -> Self {
        self.reactors = Some(reactors);
        self
    }

    /// Binds a localhost listener on an ephemeral port and starts serving.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn start(self) -> io::Result<LiveOrigin> {
        let shared = Arc::new(Shared {
            objects: self.objects.into_iter().collect(),
            epoch_unix_ms: unix_now_ms(),
            epoch: Instant::now(),
            history: self.history,
            fault: AtomicU8::new(Fault::None.as_u8()),
            requests: AtomicU64::new(0),
        });
        let server = EventLoop::with_options(
            "mutcon-live-origin-reactor",
            Arc::new(OriginService {
                shared: Arc::clone(&shared),
            }),
            crate::server::max_conns(),
            self.reactors.unwrap_or_else(crate::server::num_reactors),
        )?;
        Ok(LiveOrigin { server, shared })
    }
}

struct Shared {
    objects: HashMap<String, UpdateTrace>,
    /// Unix-epoch milliseconds corresponding to trace time 0.
    epoch_unix_ms: u64,
    epoch: Instant,
    history: bool,
    fault: AtomicU8,
    requests: AtomicU64,
}

/// A running origin server; shuts down (and joins its reactor) on drop.
pub struct LiveOrigin {
    server: EventLoop,
    shared: Arc<Shared>,
}

impl LiveOrigin {
    /// Starts building an origin.
    pub fn builder() -> LiveOriginBuilder {
        LiveOriginBuilder::default()
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Requests served so far.
    pub fn request_count(&self) -> u64 {
        self.shared.requests.load(Ordering::SeqCst)
    }

    /// Unix-epoch milliseconds of trace time 0 (for converting reported
    /// stamps back to trace time in tests).
    pub fn epoch_unix_ms(&self) -> u64 {
        self.shared.epoch_unix_ms
    }

    /// Injects (or clears) a fault.
    pub fn set_fault(&self, fault: Fault) {
        self.shared.fault.store(fault.as_u8(), Ordering::SeqCst);
    }
}

impl std::fmt::Debug for LiveOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveOrigin")
            .field("addr", &self.local_addr())
            .field("objects", &self.shared.objects.len())
            .finish()
    }
}

fn unix_now_ms() -> u64 {
    // Saturating: a clock jumped before the epoch (bad RTC, aggressive
    // NTP step) reads as 0 instead of panicking the reactor thread.
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis() as u64
}

/// The request handler running on the reactor thread.
struct OriginService {
    shared: Arc<Shared>,
}

impl Service for OriginService {
    fn accept_connection(&self) -> bool {
        Fault::from_u8(self.shared.fault.load(Ordering::SeqCst)) != Fault::DropConnections
    }

    fn respond(&self, request: &Request) -> ServiceResult {
        match Fault::from_u8(self.shared.fault.load(Ordering::SeqCst)) {
            // Established keep-alive connections die at their next
            // request, mirroring the accept-time drop.
            Fault::DropConnections => return ServiceResult::Close,
            _ => {}
        }
        self.shared.requests.fetch_add(1, Ordering::SeqCst);
        let response = respond(&self.shared, request);
        match Fault::from_u8(self.shared.fault.load(Ordering::SeqCst)) {
            // The stall is a deferred write on the reactor, not a sleep:
            // other connections keep being served meanwhile.
            Fault::Stall => ServiceResult::RespondAfter(response, STALL),
            _ => ServiceResult::Respond(response),
        }
    }
}

fn respond(shared: &Shared, request: &Request) -> Response {
    if request.method() != &Method::Get {
        return Response::builder(StatusCode::METHOD_NOT_ALLOWED).build();
    }
    if request.target() == "/__health" {
        return Response::ok().body(&b"ok\n"[..]).build();
    }
    let Some(trace) = shared.objects.get(request.target()) else {
        return Response::builder(StatusCode::NOT_FOUND).build();
    };

    // Current trace time.
    let elapsed_ms = shared.epoch.elapsed().as_millis() as u64;
    let now_rel = Timestamp::from_millis(elapsed_ms.min(trace.end().as_millis()));
    let Some(version_index) = trace.version_index_at(now_rel.max(trace.start())) else {
        return Response::builder(StatusCode::NOT_FOUND).build();
    };
    let event = &trace.events()[version_index];
    let event_abs = Timestamp::from_millis(shared.epoch_unix_ms + event.at.as_millis());

    // Conditional handling on the absolute millisecond timeline.
    let validator = crate::client::validator_ms(request);
    if let Some(v) = validator {
        if event_abs <= v {
            return Response::not_modified()
                .header(X_LAST_MODIFIED_MS, event_abs.as_millis().to_string())
                .build();
        }
    }

    let body = match event.value {
        Some(value) => format!(
            "object={} version={} value={}\n",
            request.target(),
            version_index,
            value.as_f64()
        ),
        None => format!("object={} version={}\n", request.target(), version_index),
    };
    let mut builder = Response::ok()
        .last_modified(event_abs)
        .header(X_LAST_MODIFIED_MS, event_abs.as_millis().to_string())
        .header(HeaderName::X_OBJECT_VERSION, version_index.to_string())
        .header(HeaderName::CONTENT_TYPE, "text/plain");
    if let Some(value) = event.value {
        builder = builder.header(HeaderName::X_OBJECT_VALUE, value.as_f64().to_string());
    }
    let mut response = builder.body(body.into_bytes()).build();

    if shared.history {
        let since_rel = validator
            .map(|v| Timestamp::from_millis(v.as_millis().saturating_sub(shared.epoch_unix_ms)))
            .unwrap_or(Timestamp::ZERO);
        let history: Vec<Timestamp> = trace
            .events_between(since_rel, now_rel)
            .iter()
            .map(|e| Timestamp::from_millis(shared.epoch_unix_ms + e.at.as_millis()))
            .collect();
        set_modification_history(response.headers_mut(), &history);
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{last_modified_ms, object_value, HttpClient};
    use mutcon_core::value::Value;
    use mutcon_traces::UpdateEvent;

    fn fast_trace() -> UpdateTrace {
        // Updates every 50 ms for 10 s.
        let mut events = vec![UpdateEvent::valued(Timestamp::ZERO, Value::new(1.0))];
        for i in 1..200u64 {
            events.push(UpdateEvent::valued(
                Timestamp::from_millis(i * 50),
                Value::new(1.0 + i as f64),
            ));
        }
        UpdateTrace::new(
            "fast",
            Timestamp::ZERO,
            Timestamp::from_millis(10_000),
            events,
        )
        .unwrap()
    }

    #[test]
    fn serves_health_and_404() {
        let origin = LiveOrigin::builder()
            .object("/obj", fast_trace())
            .start()
            .unwrap();
        let client = HttpClient::new();
        let resp = client.get(origin.local_addr(), "/__health", None).unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        let resp = client.get(origin.local_addr(), "/missing", None).unwrap();
        assert_eq!(resp.status(), StatusCode::NOT_FOUND);
        assert!(origin.request_count() >= 2);
    }

    #[test]
    fn serves_object_with_metadata() {
        let origin = LiveOrigin::builder()
            .object("/obj", fast_trace())
            .start()
            .unwrap();
        let client = HttpClient::new();
        let resp = client.get(origin.local_addr(), "/obj", None).unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        let lm = last_modified_ms(&resp).expect("stamped");
        assert!(lm.as_millis() >= origin.epoch_unix_ms());
        assert!(object_value(&resp).is_some());
        assert!(std::str::from_utf8(resp.body()).unwrap().contains("/obj"));
    }

    #[test]
    fn conditional_requests_get_304_then_200() {
        let origin = LiveOrigin::builder()
            .object("/obj", fast_trace())
            .start()
            .unwrap();
        let client = HttpClient::new();
        let first = client.get(origin.local_addr(), "/obj", None).unwrap();
        let lm = last_modified_ms(&first).unwrap();
        // Immediately revalidating may race a 50 ms update; ask with the
        // freshly returned validator and accept 304 or a *newer* 200.
        let second = client.get(origin.local_addr(), "/obj", Some(lm)).unwrap();
        if second.status() == StatusCode::OK {
            assert!(last_modified_ms(&second).unwrap() > lm);
        } else {
            assert_eq!(second.status(), StatusCode::NOT_MODIFIED);
        }
        // After waiting past several updates, a conditional GET must be 200.
        std::thread::sleep(StdDuration::from_millis(200));
        let third = client.get(origin.local_addr(), "/obj", Some(lm)).unwrap();
        assert_eq!(third.status(), StatusCode::OK);
        assert!(last_modified_ms(&third).unwrap() > lm);
    }

    #[test]
    fn history_extension_reports_missed_updates() {
        let origin = LiveOrigin::builder()
            .object("/obj", fast_trace())
            .with_history(true)
            .start()
            .unwrap();
        let client = HttpClient::new();
        let first = client.get(origin.local_addr(), "/obj", None).unwrap();
        let lm = last_modified_ms(&first).unwrap();
        std::thread::sleep(StdDuration::from_millis(300));
        let later = client.get(origin.local_addr(), "/obj", Some(lm)).unwrap();
        assert_eq!(later.status(), StatusCode::OK);
        let history =
            mutcon_http::extensions::modification_history(later.headers()).expect("history");
        assert!(history.len() >= 2, "expected several missed updates");
        assert!(history.iter().all(|&t| t > lm));
    }

    #[test]
    fn static_object_stays_not_modified() {
        let trace = UpdateTrace::new(
            "static",
            Timestamp::ZERO,
            Timestamp::from_millis(60_000),
            vec![UpdateEvent::temporal(Timestamp::ZERO)],
        )
        .unwrap();
        let origin = LiveOrigin::builder().object("/s", trace).start().unwrap();
        let client = HttpClient::new();
        let first = client.get(origin.local_addr(), "/s", None).unwrap();
        let lm = last_modified_ms(&first).unwrap();
        std::thread::sleep(StdDuration::from_millis(100));
        let again = client.get(origin.local_addr(), "/s", Some(lm)).unwrap();
        assert_eq!(again.status(), StatusCode::NOT_MODIFIED);
    }

    #[test]
    fn fault_injection_drops_connections() {
        let origin = LiveOrigin::builder()
            .object("/obj", fast_trace())
            .start()
            .unwrap();
        origin.set_fault(Fault::DropConnections);
        let client = HttpClient::with_timeout(StdDuration::from_millis(500));
        assert!(client.get(origin.local_addr(), "/obj", None).is_err());
        origin.set_fault(Fault::None);
        assert!(client.get(origin.local_addr(), "/obj", None).is_ok());
    }

    #[test]
    fn stall_fault_defers_but_still_serves() {
        let origin = LiveOrigin::builder()
            .object("/obj", fast_trace())
            .start()
            .unwrap();
        origin.set_fault(Fault::Stall);
        // Too impatient for the 300 ms stall.
        let hasty = HttpClient::with_timeout(StdDuration::from_millis(100));
        assert!(hasty.get(origin.local_addr(), "/obj", None).is_err());
        // Patient clients get their (late) response.
        let patient = HttpClient::with_timeout(StdDuration::from_secs(2));
        let started = Instant::now();
        let resp = patient.get(origin.local_addr(), "/obj", None).unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert!(started.elapsed() >= STALL, "response was not deferred");
    }

    #[test]
    fn put_is_rejected() {
        let origin = LiveOrigin::builder()
            .object("/obj", fast_trace())
            .start()
            .unwrap();
        let client = HttpClient::new();
        let req = Request::builder(Method::Put, "/obj").build();
        let resp = client.send(origin.local_addr(), &req).unwrap();
        assert_eq!(resp.status(), StatusCode::METHOD_NOT_ALLOWED);
    }
}
