//! Blocking socket I/O for `mutcon-http` messages.
//!
//! Reads accumulate into a `BytesMut` and drive the resumable parser
//! until a complete message (or EOF/error) arrives; writes serialize and
//! flush in one call. The reactor-driven server ([`crate::server`]) uses
//! the same parsers nonblockingly; these helpers remain for clients
//! (the refresher, tests, load generators) where blocking is fine.

use std::io::{self, Read, Write};

use bytes::BytesMut;

use mutcon_http::message::{Request, Response};
use mutcon_http::parse::{ParseError, RequestParser, ResponseParser};

/// Converts a parse failure into an I/O error (the connection is beyond
/// saving either way).
fn parse_io_error(e: ParseError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// `read` retrying `EINTR`. The io_uring backend's task-work
/// notifications can interrupt blocking syscalls on any thread of the
/// process, so these helpers must not surface `Interrupted` to callers
/// (`write_all` already retries it internally).
fn read_uninterrupted(stream: &mut impl Read, chunk: &mut [u8]) -> io::Result<usize> {
    loop {
        match stream.read(chunk) {
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            other => return other,
        }
    }
}

/// Reads one request from `stream`. Returns `Ok(None)` on a clean EOF
/// before any bytes (the peer closed an idle connection).
///
/// # Errors
///
/// I/O errors, malformed messages ([`io::ErrorKind::InvalidData`]), or an
/// EOF in the middle of a message ([`io::ErrorKind::UnexpectedEof`]).
pub fn read_request(stream: &mut impl Read, buf: &mut BytesMut) -> io::Result<Option<Request>> {
    let mut parser = RequestParser::new();
    loop {
        if let Some((req, consumed)) = parser.advance(buf).map_err(parse_io_error)? {
            let _ = buf.split_to(consumed);
            return Ok(Some(req));
        }
        let mut chunk = [0u8; 4096];
        let n = read_uninterrupted(stream, &mut chunk)?;
        if n == 0 {
            return if buf.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Reads one response from `stream`.
///
/// # Errors
///
/// I/O errors, malformed messages, or EOF before a complete response.
pub fn read_response(stream: &mut impl Read, buf: &mut BytesMut) -> io::Result<Response> {
    let mut parser = ResponseParser::new();
    loop {
        if let Some((resp, consumed)) = parser.advance(buf).map_err(parse_io_error)? {
            let _ = buf.split_to(consumed);
            return Ok(resp);
        }
        let mut chunk = [0u8; 4096];
        let n = read_uninterrupted(stream, &mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Writes a request and flushes.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_request(stream: &mut impl Write, request: &Request) -> io::Result<()> {
    stream.write_all(&request.to_bytes())?;
    stream.flush()
}

/// Writes a response and flushes.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_response(stream: &mut impl Write, response: &Response) -> io::Result<()> {
    stream.write_all(&response.to_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_http::types::StatusCode;
    use std::io::Cursor;

    #[test]
    fn round_trips_request_over_a_stream() {
        let req = Request::get("/x").host("h").body(&b"abc"[..]).build();
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();

        let mut cursor = Cursor::new(wire);
        let mut buf = BytesMut::new();
        let parsed = read_request(&mut cursor, &mut buf).unwrap().unwrap();
        assert_eq!(parsed.target(), "/x");
        assert_eq!(&parsed.body()[..], b"abc");
        // Idle close afterwards → None.
        assert!(read_request(&mut cursor, &mut buf).unwrap().is_none());
    }

    #[test]
    fn round_trips_response() {
        let resp = Response::ok().body(&b"payload"[..]).build();
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let mut cursor = Cursor::new(wire);
        let mut buf = BytesMut::new();
        let parsed = read_response(&mut cursor, &mut buf).unwrap();
        assert_eq!(parsed.status(), StatusCode::OK);
        assert_eq!(&parsed.body()[..], b"payload");
    }

    #[test]
    fn pipelined_requests_read_one_at_a_time() {
        let mut wire = Request::get("/a").build().to_bytes();
        wire.extend(Request::get("/b").build().to_bytes());
        let mut cursor = Cursor::new(wire);
        let mut buf = BytesMut::new();
        let first = read_request(&mut cursor, &mut buf).unwrap().unwrap();
        let second = read_request(&mut cursor, &mut buf).unwrap().unwrap();
        assert_eq!(first.target(), "/a");
        assert_eq!(second.target(), "/b");
    }

    #[test]
    fn eof_mid_message_is_an_error() {
        let full = Request::get("/abc").host("h").build().to_bytes();
        let mut cursor = Cursor::new(full[..10].to_vec());
        let mut buf = BytesMut::new();
        let err = read_request(&mut cursor, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_is_invalid_data() {
        let mut cursor = Cursor::new(b"not http at all\r\n\r\n".to_vec());
        let mut buf = BytesMut::new();
        let err = read_request(&mut cursor, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
