//! The zero-copy send path: write plans and buffer pooling.
//!
//! A response leaves the reactor as **two logical segments**: a small
//! contiguous buffer (status line + headers + any per-response additions
//! + blank line, and inlined small bodies) and an optional **shared body
//! slice** — a refcounted `Bytes` handed out by the cache, never copied.
//! [`WritePlan`] tracks flush progress across both segments and pushes
//! them with one `writev(2)` per readiness while both still have
//! unwritten bytes, falling back to plain `write(2)` when only one
//! remains.
//!
//! The contiguous buffers come from a per-reactor [`BufPool`]: a
//! connection keeps its buffer across keep-alive responses (cleared, not
//! freed) and returns it to the pool when the connection closes, so a
//! steady-state reactor allocates no per-request buffers at all. A
//! one-off huge response doesn't pin memory: buffers above
//! [`MAX_RETAINED_CAP`] are dropped instead of retained or pooled.
//!
//! Flushing is abstracted over [`WriteSink`] so tests can drive a plan
//! through every possible partial-write split (the write-side mirror of
//! the parser's byte-at-a-time tests) without a socket.

use std::io;
use std::net::TcpStream;
use std::os::fd::AsRawFd;

use bytes::Bytes;

use mutcon_sim::reactor;

/// Per-buffer capacity ceiling for retention and pooling: a buffer grown
/// past this by an outsized response is dropped at reset/close instead
/// of kept hot.
pub const MAX_RETAINED_CAP: usize = 64 * 1024;

/// Most free buffers a [`BufPool`] holds; beyond this, returned buffers
/// are dropped.
pub const MAX_POOLED: usize = 64;

/// Bodies at or below this many bytes are cheaper to memcpy into the
/// contiguous buffer (one `write`) than to gather with a second iovec.
/// The cache hit path ignores this and always shares — its body slice
/// already exists for the entry's whole lifetime.
pub const INLINE_BODY: usize = 4 * 1024;

/// Destination of a flush: a socket in production, a scripted sink in
/// tests.
pub trait WriteSink {
    /// Writes one slice, returning how many bytes were taken.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when the sink is full; any other error is fatal to
    /// the connection.
    fn write_one(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Gathers two slices in order with one call, returning how many
    /// bytes were taken (possibly a partial prefix crossing the
    /// boundary).
    ///
    /// # Errors
    ///
    /// Same contract as [`WriteSink::write_one`].
    fn write_two(&mut self, first: &[u8], second: &[u8]) -> io::Result<usize>;
}

impl WriteSink for TcpStream {
    fn write_one(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(self, buf)
    }

    fn write_two(&mut self, first: &[u8], second: &[u8]) -> io::Result<usize> {
        reactor::writev(self.as_raw_fd(), &[first, second])
    }
}

/// Syscall counts from one flush, merged into the engine metrics by the
/// caller (one atomic update per flush, not per syscall).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlushStats {
    /// Plain `write(2)` calls issued.
    pub write_calls: u64,
    /// `writev(2)` calls issued.
    pub writev_calls: u64,
    /// Flush passes that ended [`FlushOutcome::Blocked`] — the client
    /// socket back-pressured mid-response. The engine counts these as
    /// write stalls; the stall *duration* reaches the admission limiter
    /// through the deferred latency sample (the ticket releases only
    /// once the response is fully flushed).
    pub blocked: u64,
}

/// What a flush ended on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Every queued byte reached the sink; the plan was reset and the
    /// (capacity-capped) buffer is ready for the next response.
    Done,
    /// The sink is full; re-flush when it reports writable again.
    Blocked,
}

/// Flush progress over a contiguous buffer plus an optional shared body
/// slice.
///
/// Queue a response by appending its head (and any inlined body) to
/// [`WritePlan::buf_mut`] and, for large or shared bodies, attaching the
/// refcounted slice with [`WritePlan::set_body`]. Then call
/// [`WritePlan::flush`] whenever the socket is writable.
#[derive(Debug, Default)]
pub struct WritePlan {
    buf: Vec<u8>,
    body: Option<Bytes>,
    written: usize,
}

impl WritePlan {
    /// An empty plan with no buffer capacity.
    pub fn new() -> WritePlan {
        WritePlan::default()
    }

    /// An empty plan adopting `buf` (typically from a [`BufPool`]) as
    /// its contiguous buffer.
    pub fn with_buf(mut buf: Vec<u8>) -> WritePlan {
        buf.clear();
        WritePlan {
            buf,
            body: None,
            written: 0,
        }
    }

    /// The contiguous buffer, for queueing head bytes (and inlined
    /// bodies). Appending while a previous response is still partially
    /// flushed is fine — pipelined responses queue back to back.
    pub fn buf_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Attaches the shared body slice to send after the buffer. Only one
    /// may be pending at a time; empty bodies are ignored.
    ///
    /// # Panics
    ///
    /// Panics if a shared body is already attached (the engine flushes a
    /// body-bearing response fully before queueing the next).
    pub fn set_body(&mut self, body: Bytes) {
        if body.is_empty() {
            return;
        }
        assert!(self.body.is_none(), "shared body already pending");
        self.body = Some(body);
    }

    /// Total bytes queued (flushed or not).
    fn total(&self) -> usize {
        self.buf.len() + self.body.as_ref().map_or(0, |b| b.len())
    }

    /// Whether nothing is queued at all.
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty() && self.body.is_none()
    }

    /// Whether queued bytes are still waiting for the sink.
    pub fn has_unwritten(&self) -> bool {
        self.written < self.total()
    }

    /// Drops any queued bytes and resets progress, keeping the buffer's
    /// capacity for the next response unless it grew past `max_retain`.
    pub fn reset(&mut self, max_retain: usize) {
        if self.buf.capacity() > max_retain {
            self.buf = Vec::new();
        } else {
            self.buf.clear();
        }
        self.body = None;
        self.written = 0;
    }

    /// Takes the contiguous buffer out (for returning to a [`BufPool`]
    /// when the connection closes), leaving the plan empty.
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.body = None;
        self.written = 0;
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        buf
    }

    /// Pushes queued bytes into `sink` until everything is out
    /// ([`FlushOutcome::Done`] — the plan auto-resets, retaining at most
    /// `max_retain` buffer capacity) or the sink blocks
    /// ([`FlushOutcome::Blocked`]). Uses one gathering `write_two` per
    /// pass while both segments have unwritten bytes.
    ///
    /// # Errors
    ///
    /// A sink error (other than `WouldBlock`/`Interrupted`) aborts the
    /// flush; a sink that accepts 0 bytes reports `WriteZero`. Either
    /// way the connection should be closed.
    pub fn flush(
        &mut self,
        sink: &mut impl WriteSink,
        max_retain: usize,
        stats: &mut FlushStats,
    ) -> io::Result<FlushOutcome> {
        loop {
            if !self.has_unwritten() {
                self.reset(max_retain);
                return Ok(FlushOutcome::Done);
            }
            let result = if self.written < self.buf.len() {
                match &self.body {
                    Some(body) => {
                        stats.writev_calls += 1;
                        sink.write_two(&self.buf[self.written..], body)
                    }
                    None => {
                        stats.write_calls += 1;
                        sink.write_one(&self.buf[self.written..])
                    }
                }
            } else {
                let body = self.body.as_ref().expect("has_unwritten implies a body");
                let offset = self.written - self.buf.len();
                stats.write_calls += 1;
                sink.write_one(&body[offset..])
            };
            match result {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "sink accepted no bytes",
                    ))
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    stats.blocked += 1;
                    return Ok(FlushOutcome::Blocked)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// A reactor-local free list of contiguous buffers.
///
/// Not thread-safe by design — each reactor owns one, so takes and
/// returns are plain vector ops with no locking. The pool only retains
/// buffers whose capacity is at most [`MAX_RETAINED_CAP`] and holds at
/// most [`MAX_POOLED`] of them; everything else is dropped on return.
#[derive(Debug, Default)]
pub struct BufPool {
    free: Vec<Vec<u8>>,
    high_water: usize,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> BufPool {
        BufPool::default()
    }

    /// Hands out a cleared buffer and whether it was recycled (`true`)
    /// or freshly allocated (`false`).
    pub fn take(&mut self) -> (Vec<u8>, bool) {
        match self.free.pop() {
            Some(buf) => (buf, true),
            None => (Vec::new(), false),
        }
    }

    /// Returns a buffer to the pool (cleared); oversized or surplus
    /// buffers are dropped instead.
    pub fn give(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() == 0
            || buf.capacity() > MAX_RETAINED_CAP
            || self.free.len() >= MAX_POOLED
        {
            return;
        }
        buf.clear();
        self.free.push(buf);
        self.high_water = self.high_water.max(self.free.len());
    }

    /// Buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Most buffers ever pooled at once — bounded by [`MAX_POOLED`], so
    /// a leak of returns shows up as a plateau here, not growth.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink accepting at most `per_call` bytes per call, optionally
    /// blocking every other call, recording everything it takes.
    struct TrickleSink {
        out: Vec<u8>,
        per_call: usize,
        block_alternate: bool,
        calls: usize,
        gathers: usize,
    }

    impl TrickleSink {
        fn new(per_call: usize, block_alternate: bool) -> TrickleSink {
            TrickleSink {
                out: Vec::new(),
                per_call,
                block_alternate,
                calls: 0,
                gathers: 0,
            }
        }

        fn admit(&mut self) -> io::Result<usize> {
            self.calls += 1;
            if self.block_alternate && self.calls % 2 == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            Ok(self.per_call)
        }
    }

    impl WriteSink for TrickleSink {
        fn write_one(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = self.admit()?.min(buf.len());
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn write_two(&mut self, first: &[u8], second: &[u8]) -> io::Result<usize> {
            let mut n = self.admit()?;
            self.gathers += 1;
            let take_first = n.min(first.len());
            self.out.extend_from_slice(&first[..take_first]);
            n -= take_first;
            let take_second = n.min(second.len());
            self.out.extend_from_slice(&second[..take_second]);
            Ok(take_first + take_second)
        }
    }

    fn plan_with(head: &[u8], body: &[u8]) -> WritePlan {
        let mut plan = WritePlan::new();
        plan.buf_mut().extend_from_slice(head);
        plan.set_body(Bytes::copy_from_slice(body));
        plan
    }

    fn drain(plan: &mut WritePlan, sink: &mut TrickleSink) -> FlushStats {
        let mut stats = FlushStats::default();
        loop {
            match plan.flush(sink, MAX_RETAINED_CAP, &mut stats).unwrap() {
                FlushOutcome::Done => return stats,
                FlushOutcome::Blocked => continue,
            }
        }
    }

    #[test]
    fn every_split_point_yields_identical_bytes() {
        let head = b"HTTP/1.1 200 OK\r\ncontent-length: 11\r\n\r\n";
        let body = b"hello world";
        let mut expected = head.to_vec();
        expected.extend_from_slice(body);
        for per_call in 1..=expected.len() {
            for block_alternate in [false, true] {
                let mut plan = plan_with(head, body);
                let mut sink = TrickleSink::new(per_call, block_alternate);
                let stats = drain(&mut plan, &mut sink);
                assert_eq!(sink.out, expected, "per_call={per_call}");
                assert!(plan.is_idle());
                assert!(stats.writev_calls >= 1, "head+body must gather");
            }
        }
    }

    #[test]
    fn gather_stops_once_the_buffer_is_out() {
        // Take exactly the head on the first call: the remainder must go
        // out with plain writes, not gathers.
        let head = b"head-bytes\r\n\r\n";
        let body = b"tail";
        let mut plan = plan_with(head, body);
        let mut sink = TrickleSink::new(head.len(), false);
        let stats = drain(&mut plan, &mut sink);
        let mut expected = head.to_vec();
        expected.extend_from_slice(body);
        assert_eq!(sink.out, expected);
        assert_eq!(stats.writev_calls, 1);
        assert_eq!(sink.gathers, 1);
        assert_eq!(stats.write_calls, 1);
    }

    #[test]
    fn buffer_only_plan_never_gathers() {
        let mut plan = WritePlan::new();
        plan.buf_mut().extend_from_slice(b"just a head");
        let mut sink = TrickleSink::new(3, true);
        let stats = drain(&mut plan, &mut sink);
        assert_eq!(sink.out, b"just a head");
        assert_eq!(stats.writev_calls, 0);
        assert!(stats.write_calls >= 1);
    }

    #[test]
    fn blocked_passes_are_counted() {
        let mut plan = plan_with(b"0123456789", b"abcdefghij");
        let mut sink = TrickleSink::new(4, true);
        let stats = drain(&mut plan, &mut sink);
        assert!(stats.blocked >= 1, "alternating sink must block");
        assert!(plan.is_idle());
        // An unobstructed drain records no stalls.
        let mut plan = plan_with(b"head", b"body");
        let mut sink = TrickleSink::new(usize::MAX, false);
        let stats = drain(&mut plan, &mut sink);
        assert_eq!(stats.blocked, 0);
    }

    #[test]
    fn write_zero_is_an_error() {
        let mut plan = plan_with(b"x", b"");
        let mut sink = TrickleSink::new(0, false);
        let mut stats = FlushStats::default();
        let err = plan
            .flush(&mut sink, MAX_RETAINED_CAP, &mut stats)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn reset_caps_retained_capacity() {
        let mut plan = WritePlan::new();
        plan.buf_mut().extend_from_slice(&vec![0u8; 100]);
        plan.reset(64);
        assert_eq!(plan.buf_mut().capacity(), 0, "oversized buffer dropped");
        plan.buf_mut().extend_from_slice(&[1, 2, 3]);
        let cap = plan.buf_mut().capacity();
        plan.reset(64);
        assert_eq!(plan.buf_mut().capacity(), cap, "small buffer retained");
        assert!(plan.is_idle());
    }

    #[test]
    fn flush_done_retains_capacity_across_responses() {
        let mut sink = TrickleSink::new(usize::MAX, false);
        let mut plan = WritePlan::new();
        plan.buf_mut().extend_from_slice(b"response one");
        drain(&mut plan, &mut sink);
        let cap = plan.buf_mut().capacity();
        assert!(cap >= b"response one".len());
        plan.buf_mut().extend_from_slice(b"two");
        drain(&mut plan, &mut sink);
        assert_eq!(
            plan.buf_mut().capacity(),
            cap,
            "keep-alive reuse must not reallocate"
        );
        assert_eq!(sink.out, b"response onetwo");
    }

    #[test]
    fn pool_recycles_and_bounds_retention() {
        let mut pool = BufPool::new();
        let (buf, reused) = pool.take();
        assert!(!reused, "empty pool allocates");
        assert_eq!(pool.high_water(), 0);
        let mut buf = buf;
        buf.extend_from_slice(b"data");
        pool.give(buf);
        assert_eq!(pool.pooled(), 1);
        assert_eq!(pool.high_water(), 1);
        let (back, reused) = pool.take();
        assert!(reused);
        assert!(back.is_empty(), "pooled buffers come back cleared");
        assert!(back.capacity() >= 4);

        // Oversized buffers are dropped, not pooled.
        pool.give(Vec::with_capacity(MAX_RETAINED_CAP + 1));
        assert_eq!(pool.pooled(), 0);
        // Zero-capacity buffers aren't worth pooling.
        pool.give(Vec::new());
        assert_eq!(pool.pooled(), 0);
        // The pool itself is bounded.
        for _ in 0..(MAX_POOLED + 10) {
            pool.give(Vec::with_capacity(8));
        }
        assert_eq!(pool.pooled(), MAX_POOLED);
        assert_eq!(pool.high_water(), MAX_POOLED);
    }
}
