//! A small fixed-size worker pool, built from scratch on crossbeam
//! channels.
//!
//! Each accepted connection is handled by one job; the pool bounds
//! concurrency without spawning a thread per connection. Dropping the
//! pool performs a clean shutdown: the job channel closes, workers drain
//! what they already received and exit, and `Drop` joins them.

use std::fmt;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool of `size` workers.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "thread pool needs at least one worker");
        let (sender, receiver) = channel::unbounded::<Job>();
        let workers = (0..size)
            .map(|i| {
                let receiver = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("mutcon-live-worker-{i}"))
                    .spawn(move || {
                        // The loop ends when every sender is dropped. A
                        // panicking job must not take the worker with it
                        // (a connection handler crash would otherwise
                        // permanently shrink the pool).
                        while let Ok(job) = receiver.recv() {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job; returns `false` if the pool is already shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.sender {
            Some(s) => s.send(Box::new(job)).is_ok(),
            None => false,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit...
        drop(self.sender.take());
        // ...then join them. Worker panics are swallowed: a connection
        // handler crashing must not poison server shutdown.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .field("alive", &self.sender.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.size(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // joins workers, so all jobs are done
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_run_concurrently() {
        let pool = ThreadPool::new(2);
        let (tx, rx) = crossbeam::channel::bounded::<()>(0);
        let tx2 = tx.clone();
        // Two rendezvous jobs can only complete if two workers run them
        // at the same time.
        pool.execute(move || {
            tx.send(()).expect("partner is running");
        });
        pool.execute(move || {
            tx2.send(()).expect("partner is running");
        });
        rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
    }

    #[test]
    fn survives_panicking_job() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("job goes boom"));
        // Pool shutdown (Drop) must not propagate the panic.
        drop(pool);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_size_rejected() {
        let _ = ThreadPool::new(0);
    }
}
