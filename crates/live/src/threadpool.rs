//! Connection worker pool.
//!
//! The pool implementation was generalized into
//! [`mutcon_sim::parallel`] so the experiment engine and the live
//! daemons share one worker-pool abstraction; this module re-exports it
//! under the historical path.

pub use mutcon_sim::parallel::ThreadPool;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_pool_works() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
