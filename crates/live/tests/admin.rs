//! The admin control plane + hot-swappable consistency runtime, driven
//! by the deterministic in-process harness (fake clock + scripted
//! origin; see `harness/`).
//!
//! The scenarios pin down the epoch semantics the tentpole promises:
//! a `PUT /admin/rules` takes effect in place (new Δ, new poll cadence)
//! while the sharded cache and every established keep-alive connection
//! survive; unchanged paths keep their accumulated adaptive-TTR state;
//! removed paths stop polling and an in-flight poll cannot resurrect
//! their evicted cache entry; and refresh-vs-read monotonicity holds
//! across epoch bumps.

mod harness;

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use bytes::BytesMut;
use harness::{stamp_of, Behavior, FakeClock, ScriptedOrigin, CLOCK_BASE_MS};
use mutcon_core::time::Duration;
use mutcon_live::client::HttpClient;
use mutcon_live::proxy::{LiveProxy, ProxyConfig, RefreshRule};
use mutcon_live::wire::read_response;
use mutcon_http::message::Request;
use mutcon_http::types::StatusCode;
use mutcon_sim::rng::SimRng;
use mutcon_traces::json::{self, Json};

fn proxy_with(origin: &ScriptedOrigin, rules: Vec<RefreshRule>, reactors: usize) -> LiveProxy {
    LiveProxy::start(ProxyConfig {
        rules,
        reactors: Some(reactors),
        ..ProxyConfig::new(origin.addr())
    })
    .expect("start proxy")
}

/// Fetches and parses an admin JSON endpoint.
fn admin_get(proxy: &LiveProxy, path: &str) -> Json {
    let client = HttpClient::new();
    let resp = client.get(proxy.local_addr(), path, None).expect(path);
    assert_eq!(resp.status(), StatusCode::OK, "{path}");
    json::parse(std::str::from_utf8(resp.body()).expect("utf8")).expect("admin JSON")
}

/// PUTs a rules document; returns (status, parsed body).
fn put_rules(proxy: &LiveProxy, body: &str) -> (StatusCode, Json) {
    let client = HttpClient::new();
    let resp = client
        .put(proxy.local_addr(), "/admin/rules", body.as_bytes().to_vec())
        .expect("PUT /admin/rules");
    let parsed = json::parse(std::str::from_utf8(resp.body()).expect("utf8")).expect("JSON body");
    (resp.status(), parsed)
}

/// Waits (5 s cap) until `pred` on the proxy holds.
fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + StdDuration::from_secs(5);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(StdDuration::from_millis(2));
    }
}

/// The acceptance scenario: a PUT changing Δ for one path takes effect —
/// visible in `GET /admin/rules` and in the refresher's poll cadence —
/// while the cache contents and all established keep-alive connections
/// survive the swap.
#[test]
fn put_changes_delta_in_place_without_dropping_cache_or_connections() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    // Δ = 60 s: after the first poll the refresher goes quiet for a
    // minute, so any post-PUT polling is attributable to the new rule.
    let proxy = proxy_with(
        &origin,
        vec![RefreshRule::new("/obj", Duration::from_secs(60))],
        2,
    );
    let addr = proxy.local_addr();

    // Warm: the refresher's first poll (or this miss) caches /obj.
    let warm = HttpClient::new();
    assert_eq!(warm.get(addr, "/obj", None).unwrap().status(), StatusCode::OK);
    wait_until("first poll + cached copy", || {
        proxy.stats().polls >= 1 && proxy.cached_objects() == 1
    });

    // Establish keep-alive connections and serve one hit on each.
    let mut conns: Vec<(TcpStream, BytesMut)> = (0..4)
        .map(|_| {
            let sock = TcpStream::connect(addr).expect("connect");
            sock.set_read_timeout(Some(StdDuration::from_secs(5))).unwrap();
            (sock, BytesMut::new())
        })
        .collect();
    let wire = Request::get("/obj").build().to_bytes();
    let mut stamps = Vec::new();
    for (sock, buf) in &mut conns {
        sock.write_all(&wire).unwrap();
        let resp = read_response(sock, buf).unwrap();
        assert_eq!(resp.headers().get("x-cache"), Some("hit"));
        stamps.push(stamp_of(&resp));
    }

    // The old cadence really is quiet: no further polls for 60 s.
    let polls_before = proxy.stats().polls;
    std::thread::sleep(StdDuration::from_millis(150));
    assert_eq!(proxy.stats().polls, polls_before, "Δ=60s must not poll again yet");

    // Rules as the control plane sees them, pre-swap.
    let doc = admin_get(&proxy, "/admin/rules");
    assert_eq!(doc.get("epoch").unwrap().as_u64(), Some(1));
    let rule = &doc.get("rules").unwrap().as_array().unwrap()[0];
    assert_eq!(rule.get("path").unwrap().as_str(), Some("/obj"));
    assert_eq!(rule.get("delta_ms").unwrap().as_u64(), Some(60_000));
    assert!(rule.get("limd").unwrap().as_str().unwrap().contains("delta_ms=60000"));

    // The swap: Δ 60 s → 25 ms.
    let (status, body) =
        put_rules(&proxy, r#"{"rules": [{"path": "/obj", "delta_ms": 25}]}"#);
    assert_eq!(status, StatusCode::OK, "{body}");
    assert_eq!(body.get("epoch").unwrap().as_u64(), Some(2));
    assert_eq!(
        body.get("changed").unwrap().as_array().unwrap()[0].as_str(),
        Some("/obj")
    );

    // Takes effect #1: the control plane reports the new Δ and epoch.
    let doc = admin_get(&proxy, "/admin/rules");
    assert_eq!(doc.get("epoch").unwrap().as_u64(), Some(2));
    let rule = &doc.get("rules").unwrap().as_array().unwrap()[0];
    assert_eq!(rule.get("delta_ms").unwrap().as_u64(), Some(25));

    // Takes effect #2: the poll cadence follows the new Δ — the quiet
    // 60-second schedule turns into a ~25 ms one.
    wait_until("polls under the new 25 ms cadence", || {
        proxy.stats().polls >= polls_before + 5
    });

    // Survival: the same keep-alive sockets still serve, from the same
    // cached copy (the fake clock never advanced, so the stamp is
    // bit-identical to the pre-swap one).
    for ((sock, buf), stamp) in conns.iter_mut().zip(&stamps) {
        sock.write_all(&wire).unwrap();
        let resp = read_response(sock, buf)
            .expect("established keep-alive connection must survive the swap");
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.headers().get("x-cache"), Some("hit"), "cache survived");
        assert_eq!(stamp_of(&resp), *stamp, "same cached copy as before the swap");
    }
    assert_eq!(proxy.cached_objects(), 1, "the swap dropped no cache entries");
    assert_eq!(proxy.stats().reloads, 1);
}

/// A rule removed while its poll is parked at the origin: the completing
/// poll must not resurrect the evicted cache entry, and the path stops
/// polling.
#[test]
fn removed_path_in_flight_poll_cannot_resurrect_cache_entry() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    let proxy = proxy_with(
        &origin,
        vec![RefreshRule::new("/gone", Duration::from_millis(30))],
        1,
    );

    // First poll caches the object.
    wait_until("refresher caches /gone", || proxy.cached_objects() == 1);

    // Park the *next* poll behind the gate, then remove the rule while
    // that poll is in flight.
    origin.script("/gone", vec![Behavior::Hold]);
    origin.wait_for_held(1);
    let (status, body) = put_rules(&proxy, r#"{"rules": []}"#);
    assert_eq!(status, StatusCode::OK);
    assert_eq!(
        body.get("removed").unwrap().as_array().unwrap()[0].as_str(),
        Some("/gone")
    );
    assert_eq!(proxy.cached_objects(), 0, "removal evicts the cache entry");

    // Release the parked poll: its 200 arrives for a path that is no
    // longer ruled.
    origin.release_all();
    std::thread::sleep(StdDuration::from_millis(150));
    assert_eq!(
        proxy.cached_objects(),
        0,
        "the in-flight poll must not resurrect the evicted entry"
    );
    let doc = admin_get(&proxy, "/admin/rules");
    assert!(doc.get("rules").unwrap().as_array().unwrap().is_empty());

    // And polling for the removed path has stopped entirely.
    let polls = proxy.stats().polls;
    std::thread::sleep(StdDuration::from_millis(120));
    assert_eq!(proxy.stats().polls, polls, "a removed path must stop polling");
}

/// Unchanged paths carry their accumulated adaptive-TTR state across a
/// swap; changed/added paths rebuild from scratch.
#[test]
fn unchanged_paths_preserve_adaptive_ttr_state_across_swap() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    let proxy = proxy_with(
        &origin,
        vec![
            RefreshRule::new("/keep", Duration::from_millis(20)),
            RefreshRule::new("/drop", Duration::from_millis(20)),
        ],
        1,
    );

    // The fake clock never advances, so after the first poll every poll
    // is a 304 and LIMD grows the TTR linearly — accumulated adaptive
    // state worth preserving.
    let keep_status = |proxy: &LiveProxy| {
        proxy
            .runtime()
            .status()
            .into_iter()
            .find(|s| s.path == "/keep")
    };
    wait_until("/keep TTR growth", || {
        keep_status(&proxy)
            .is_some_and(|s| s.polls >= 4 && s.ttr > Duration::from_millis(20))
    });
    let before = keep_status(&proxy).expect("/keep status");

    // Swap: /keep identical, /drop removed, /add new.
    let (status, _) = put_rules(
        &proxy,
        r#"{"rules": [{"path": "/keep", "delta_ms": 20},
                      {"path": "/add", "delta_ms": 20}]}"#,
    );
    assert_eq!(status, StatusCode::OK);

    wait_until("scheduler adopts epoch 2", || {
        proxy.runtime().status().iter().any(|s| s.path == "/add")
    });
    let after = keep_status(&proxy).expect("/keep status after swap");
    assert!(
        after.ttr >= before.ttr,
        "unchanged /keep lost its grown TTR: {:?} → {:?}",
        before.ttr,
        after.ttr
    );
    assert!(after.polls >= before.polls, "poll count must carry over");
    assert_eq!(after.rule_epoch, 1, "unchanged rule keeps its original epoch");

    let statuses = proxy.runtime().status();
    let add = statuses.iter().find(|s| s.path == "/add").unwrap();
    assert_eq!(add.rule_epoch, 2, "added rule belongs to the new epoch");
    assert!(!statuses.iter().any(|s| s.path == "/drop"), "removed rule gone");

    // /drop's cached copy was evicted with its rule: the next client
    // read is a miss (refetched fresh), not a stale never-refreshed hit.
    let client = HttpClient::new();
    let resp = client.get(proxy.local_addr(), "/drop", None).unwrap();
    assert_eq!(resp.headers().get("x-cache"), Some("miss"));
}

/// Validation: bad rule sets are rejected with 400 + reason and change
/// nothing; the same validator guards `LiveProxy::start`.
#[test]
fn bad_rules_are_rejected_by_put_and_by_start() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    let proxy = proxy_with(
        &origin,
        vec![RefreshRule::new("/obj", Duration::from_millis(500))],
        1,
    );

    for (body, needle) in [
        // Duplicate paths: the silent last-wins of old ProxyConfig is gone.
        (
            r#"{"rules": [{"path": "/a", "delta_ms": 5}, {"path": "/a", "delta_ms": 9}]}"#,
            "duplicate",
        ),
        (r#"{"rules": [{"path": "/a", "delta_ms": 0}]}"#, "positive"),
        (
            r#"{"rules": [{"path": "/a", "delta_ms": 100, "ttr_max_ms": 50}]}"#,
            "ttr",
        ),
        (r#"{"rules": [{"path": "relative", "delta_ms": 5}]}"#, "start with"),
        (r#"not json at all"#, "invalid JSON"),
        (r#"{"rules": 5}"#, "rules"),
        (
            r#"{"rules": [], "group": {"delta_ms": 5, "policy": "wat"}}"#,
            "group",
        ),
    ] {
        let (status, parsed) = put_rules(&proxy, body);
        assert_eq!(status, StatusCode::BAD_REQUEST, "{body}");
        let reason = parsed.get("error").unwrap().as_str().unwrap();
        assert!(reason.contains(needle), "{reason:?} lacks {needle:?}");
    }
    // Nothing changed.
    let doc = admin_get(&proxy, "/admin/rules");
    assert_eq!(doc.get("epoch").unwrap().as_u64(), Some(1));
    assert_eq!(proxy.stats().reloads, 0);

    // The same validator runs at startup: duplicates are a config error.
    let err = LiveProxy::start(ProxyConfig {
        rules: vec![
            RefreshRule::new("/dup", Duration::from_millis(5)),
            RefreshRule::new("/dup", Duration::from_millis(9)),
        ],
        reactors: Some(1),
        ..ProxyConfig::new(origin.addr())
    })
    .expect_err("duplicate paths must be rejected at start");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("duplicate"));

    // Unknown admin endpoints 404; wrong methods 405.
    let client = HttpClient::new();
    let resp = client.get(proxy.local_addr(), "/admin/nope", None).unwrap();
    assert_eq!(resp.status(), StatusCode::NOT_FOUND);
    let resp = client
        .put(proxy.local_addr(), "/admin/stats", &b"{}"[..])
        .unwrap();
    assert_eq!(resp.status(), StatusCode::METHOD_NOT_ALLOWED);
}

/// `GET /admin/stats` reports the threaded-through counters: per-shard
/// cache state, per-reactor connections, origin-pool activity.
#[test]
fn admin_stats_reports_shards_reactors_and_pool_counters() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    let proxy = proxy_with(&origin, vec![], 2);
    let client = HttpClient::new();

    // Generate misses (pool opens + possibly reuses) and hits.
    for i in 0..6 {
        let resp = client.get(proxy.local_addr(), &format!("/s/{i}"), None).unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
    }
    let resp = client.get(proxy.local_addr(), "/s/0", None).unwrap();
    assert_eq!(resp.headers().get("x-cache"), Some("hit"));

    let doc = admin_get(&proxy, "/admin/stats");
    let cache = doc.get("cache").unwrap();
    assert_eq!(cache.get("objects").unwrap().as_u64(), Some(6));
    assert_eq!(cache.get("shards").unwrap().as_array().unwrap().len(), 16);
    assert_eq!(cache.get("evictions").unwrap().as_u64(), Some(0));
    let reactors = doc.get("reactors").unwrap().as_array().unwrap();
    assert_eq!(reactors.len(), 2);
    let accepted: u64 = reactors
        .iter()
        .map(|r| r.get("accepted").unwrap().as_u64().unwrap())
        .sum();
    assert!(accepted >= 7, "every client connection is accounted: {accepted}");
    let pool = doc.get("origin_pool").unwrap();
    assert!(pool.get("opened").unwrap().as_u64().unwrap() >= 1);
    let proxy_counters = doc.get("proxy").unwrap();
    assert_eq!(proxy_counters.get("misses").unwrap().as_u64(), Some(6));
    assert!(proxy_counters.get("hits").unwrap().as_u64().unwrap() >= 1);
}

/// With `admin_token` set, every `/admin/*` endpoint demands a matching
/// bearer token; the data plane and `/__stats` stay open.
#[test]
fn admin_endpoints_demand_the_configured_bearer_token() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![RefreshRule::new("/obj", Duration::from_millis(500))],
        reactors: Some(1),
        admin_token: Some("s3cret".to_owned()),
        ..ProxyConfig::new(origin.addr())
    })
    .expect("start proxy");
    let addr = proxy.local_addr();

    // A GET with an optional `authorization` header, over a raw socket
    // (the convenience client never sends credentials).
    let raw_get = |path: &str, auth: Option<&str>| {
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.set_read_timeout(Some(StdDuration::from_secs(5))).unwrap();
        let mut builder = Request::get(path);
        if let Some(credentials) = auth {
            builder = builder.header("authorization", credentials);
        }
        sock.write_all(&builder.build().to_bytes()).unwrap();
        let mut buf = BytesMut::new();
        read_response(&mut sock, &mut buf).expect("response")
    };

    // No credentials, wrong scheme, wrong token: 401 with a challenge.
    for auth in [None, Some("Basic s3cret"), Some("Bearer nope"), Some("Bearer")] {
        let resp = raw_get("/admin/stats", auth);
        assert_eq!(resp.status(), StatusCode::UNAUTHORIZED, "auth {auth:?}");
        assert_eq!(
            resp.headers().get("www-authenticate"),
            Some("Bearer"),
            "401 must carry the challenge (auth {auth:?})"
        );
    }

    // The matching token opens every admin endpoint.
    let resp = raw_get("/admin/stats", Some("Bearer s3cret"));
    assert_eq!(resp.status(), StatusCode::OK);
    let resp = raw_get("/admin/rules", Some("Bearer s3cret"));
    assert_eq!(resp.status(), StatusCode::OK);

    // Mutations are gated too: an unauthenticated PUT changes nothing.
    let client = HttpClient::new();
    let resp = client
        .put(addr, "/admin/rules", &br#"{"rules": []}"#[..])
        .unwrap();
    assert_eq!(resp.status(), StatusCode::UNAUTHORIZED);
    let doc = json::parse(
        std::str::from_utf8(raw_get("/admin/rules", Some("Bearer s3cret")).body()).unwrap(),
    )
    .unwrap();
    assert_eq!(doc.get("epoch").unwrap().as_u64(), Some(1), "PUT was rejected");

    // The data plane and the plain-text stats page never ask for auth.
    assert_eq!(client.get(addr, "/obj", None).unwrap().status(), StatusCode::OK);
    assert_eq!(client.get(addr, "/__stats", None).unwrap().status(), StatusCode::OK);
}

/// SIGHUP re-reads the configured rules file through the same
/// validated install path as `PUT /admin/rules`; a bad file is counted
/// and changes nothing.
#[test]
fn sighup_rereads_the_rules_file() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    let rules_path = std::env::temp_dir().join(format!(
        "mutcon-sighup-{}-{:x}.json",
        std::process::id(),
        &origin as *const _ as usize
    ));
    std::fs::write(
        &rules_path,
        r#"{"rules": [{"path": "/hup", "delta_ms": 40}]}"#,
    )
    .expect("write rules file");

    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![RefreshRule::new("/initial", Duration::from_millis(500))],
        reactors: Some(1),
        rules_file: Some(rules_path.clone()),
        ..ProxyConfig::new(origin.addr())
    })
    .expect("start proxy");

    // The file is a reload source, not a startup source.
    let doc = admin_get(&proxy, "/admin/rules");
    assert_eq!(doc.get("epoch").unwrap().as_u64(), Some(1));

    mutcon_sim::signal::raise_sighup();
    wait_until("SIGHUP reload to land", || proxy.stats().reloads == 1);
    let doc = admin_get(&proxy, "/admin/rules");
    assert_eq!(doc.get("epoch").unwrap().as_u64(), Some(2));
    let rule = &doc.get("rules").unwrap().as_array().unwrap()[0];
    assert_eq!(rule.get("path").unwrap().as_str(), Some("/hup"));
    assert_eq!(rule.get("delta_ms").unwrap().as_u64(), Some(40));
    wait_until("the reloaded rule to start polling", || {
        origin.fetches("/hup") >= 1
    });

    // A broken file: the reload is rejected, counted, and nothing moves.
    std::fs::write(&rules_path, "not json at all").expect("write bad rules file");
    mutcon_sim::signal::raise_sighup();
    wait_until("bad reload to be counted", || {
        proxy.stats().reload_errors == 1
    });
    let doc = admin_get(&proxy, "/admin/rules");
    assert_eq!(doc.get("epoch").unwrap().as_u64(), Some(2), "bad file changed nothing");
    assert_eq!(proxy.stats().reloads, 1);

    drop(proxy);
    let _ = std::fs::remove_file(&rules_path);
}

/// Refresh-vs-read monotonicity must hold *across epoch bumps*: seeded
/// readers hammer the hot object while a control thread keeps swapping
/// its Δ — stamps never go backwards and no request ever fails.
#[test]
fn refresh_vs_read_monotonicity_holds_across_epoch_bumps() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock.clone());
    let proxy = proxy_with(
        &origin,
        vec![RefreshRule::new("/obj", Duration::from_millis(20))],
        2,
    );
    let addr = proxy.local_addr();
    let warm = HttpClient::new();
    assert_eq!(warm.get(addr, "/obj", None).unwrap().status(), StatusCode::OK);

    let stop = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let stop = Arc::clone(&stop);
            let clock = clock.clone();
            std::thread::spawn(move || {
                let mut rng = SimRng::seed_from_u64(0xAD31 + r);
                let client = HttpClient::with_timeout(StdDuration::from_secs(10));
                let mut last = 0u64;
                let mut served = 0u32;
                while stop.load(Ordering::SeqCst) == 0 {
                    let resp = client
                        .get(addr, "/obj", None)
                        .unwrap_or_else(|e| panic!("reader {r}: {e}"));
                    assert_eq!(resp.status(), StatusCode::OK, "reader {r}");
                    let stamp = stamp_of(&resp);
                    assert!(
                        stamp >= last,
                        "reader {r}: stamp went backwards across an epoch bump \
                         ({last} → {stamp})"
                    );
                    assert!(
                        stamp >= CLOCK_BASE_MS && stamp <= CLOCK_BASE_MS + clock.now_ms(),
                        "reader {r}: stamp {stamp} outside the logical timeline"
                    );
                    last = stamp;
                    served += 1;
                    if rng.chance(0.2) {
                        std::thread::sleep(StdDuration::from_micros(rng.uniform_u64(0, 400)));
                    }
                }
                served
            })
        })
        .collect();

    // The control thread: advance logical time and keep swapping Δ.
    let mut rng = SimRng::seed_from_u64(0xE90C);
    let mut reloads = 0u64;
    for round in 0..30 {
        clock.advance(rng.uniform_u64(1, 40));
        if round % 3 == 0 {
            let delta = if (round / 3) % 2 == 0 { 35 } else { 20 };
            let (status, _) = put_rules(
                &proxy,
                &format!(r#"{{"rules": [{{"path": "/obj", "delta_ms": {delta}}}]}}"#),
            );
            assert_eq!(status, StatusCode::OK, "round {round}");
            reloads += 1;
        }
        std::thread::sleep(StdDuration::from_millis(5));
    }
    stop.store(1, Ordering::SeqCst);
    let total: u32 = readers.into_iter().map(|r| r.join().expect("reader")).sum();

    assert!(total > 100, "readers made little progress: {total}");
    assert_eq!(proxy.stats().reloads, reloads);
    let doc = admin_get(&proxy, "/admin/rules");
    assert_eq!(doc.get("epoch").unwrap().as_u64(), Some(1 + reloads));
    assert!(proxy.stats().polls > 5, "refresher ran throughout");
}
