//! Load-shaped smoke tests for the readiness-driven proxy: one reactor
//! thread must sustain hundreds of concurrent client sockets, and the
//! 16-way sharded cache must stay consistent while the background
//! refresher writes during concurrent reads.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration as StdDuration, Instant};

use bytes::BytesMut;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;
use mutcon_live::client::{last_modified_ms, HttpClient};
use mutcon_live::origin::LiveOrigin;
use mutcon_live::proxy::{LiveProxy, ProxyConfig, RefreshRule};
use mutcon_live::wire::read_response;
use mutcon_http::message::Request;
use mutcon_http::types::StatusCode;
use mutcon_traces::{UpdateEvent, UpdateTrace};

/// An object updated every `period_ms` for `total_ms`.
fn ticking_trace(name: &str, period_ms: u64, total_ms: u64) -> UpdateTrace {
    let mut events = vec![UpdateEvent::valued(Timestamp::ZERO, Value::new(1.0))];
    let mut t = period_ms;
    let mut v = 1.0;
    while t <= total_ms {
        v += 0.5;
        events.push(UpdateEvent::valued(Timestamp::from_millis(t), Value::new(v)));
        t += period_ms;
    }
    UpdateTrace::new(name, Timestamp::ZERO, Timestamp::from_millis(total_ms), events).unwrap()
}

/// The acceptance bar: ≥ 500 clients hold connections open *at the same
/// time*, each with a request in flight, and every one is answered by
/// the single reactor thread.
#[test]
fn five_hundred_concurrent_connections_through_one_reactor() {
    const CONNS: usize = 520;

    let origin = LiveOrigin::builder()
        .object("/obj", ticking_trace("obj", 50, 120_000))
        .start()
        .unwrap();
    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![RefreshRule::new("/obj", Duration::from_millis(100))],
        ..ProxyConfig::new(origin.local_addr())
    })
    .unwrap();

    // Warm the cache so the load below is the pure hit path.
    let warm = HttpClient::new();
    assert_eq!(
        warm.get(proxy.local_addr(), "/obj", None).unwrap().status(),
        StatusCode::OK
    );

    // Phase 1: open every connection and keep all of them open.
    let mut socks: Vec<TcpStream> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let sock = TcpStream::connect(proxy.local_addr())
            .unwrap_or_else(|e| panic!("connect #{i}: {e}"));
        sock.set_read_timeout(Some(StdDuration::from_secs(30))).unwrap();
        socks.push(sock);
    }

    // Phase 2: put a request in flight on every socket before reading a
    // single response — all CONNS connections are now simultaneously
    // active inside the one reactor.
    let wire = Request::get("/obj").build().to_bytes();
    for sock in &mut socks {
        sock.write_all(&wire).unwrap();
    }

    // Phase 3: collect every response.
    let started = Instant::now();
    let mut hits = 0usize;
    for (i, sock) in socks.iter_mut().enumerate() {
        let mut buf = BytesMut::new();
        let resp = read_response(sock, &mut buf)
            .unwrap_or_else(|e| panic!("response #{i}: {e}"));
        assert_eq!(resp.status(), StatusCode::OK, "connection #{i}");
        assert!(!resp.body().is_empty(), "connection #{i} got an empty body");
        if resp.headers().get("x-cache") == Some("hit") {
            hits += 1;
        }
    }
    assert!(
        hits >= CONNS * 9 / 10,
        "warm object should be served from cache: {hits}/{CONNS} hits"
    );
    // A stalled reactor shows up as the 30 s read timeouts tripping;
    // getting here at all means no connection starved. Sanity-bound the
    // total anyway.
    assert!(
        started.elapsed() < StdDuration::from_secs(20),
        "draining {CONNS} responses took {:?}",
        started.elapsed()
    );

    // Keep-alive: the same half-thousand sockets all serve a second
    // round.
    for sock in &mut socks {
        sock.write_all(&wire).unwrap();
    }
    for (i, sock) in socks.iter_mut().enumerate() {
        let mut buf = BytesMut::new();
        let resp = read_response(sock, &mut buf)
            .unwrap_or_else(|e| panic!("round 2 response #{i}: {e}"));
        assert_eq!(resp.status(), StatusCode::OK, "round 2 connection #{i}");
    }

    let stats = proxy.stats();
    assert!(
        stats.hits as usize >= CONNS,
        "expected ≥ {CONNS} cache hits, saw {}",
        stats.hits
    );
}

/// Refresh-during-read consistency: while the refresher rewrites the
/// object at a high rate, concurrent readers must only ever observe
/// complete, monotonically-advancing copies.
#[test]
fn refreshes_during_reads_stay_consistent() {
    let origin = LiveOrigin::builder()
        .object("/hot", ticking_trace("hot", 20, 120_000))
        .start()
        .unwrap();
    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![RefreshRule::new("/hot", Duration::from_millis(40))],
        cache_objects: Some(64),
        ..ProxyConfig::new(origin.local_addr())
    })
    .unwrap();
    let addr = proxy.local_addr();

    // Warm.
    let warm = HttpClient::new();
    assert_eq!(warm.get(addr, "/hot", None).unwrap().status(), StatusCode::OK);

    let readers: Vec<_> = (0..8)
        .map(|r| {
            std::thread::spawn(move || {
                let mut sock = TcpStream::connect(addr).unwrap();
                sock.set_read_timeout(Some(StdDuration::from_secs(10))).unwrap();
                let wire = Request::get("/hot").build().to_bytes();
                let mut last_seen = Timestamp::ZERO;
                let deadline = Instant::now() + StdDuration::from_millis(600);
                let mut served = 0u32;
                while Instant::now() < deadline {
                    sock.write_all(&wire).unwrap();
                    let mut buf = BytesMut::new();
                    let resp = read_response(&mut sock, &mut buf)
                        .unwrap_or_else(|e| panic!("reader {r}: {e}"));
                    assert_eq!(resp.status(), StatusCode::OK, "reader {r}");
                    // A torn entry would lose its stamp or its body.
                    let lm = last_modified_ms(&resp)
                        .unwrap_or_else(|| panic!("reader {r}: unstamped response"));
                    assert!(!resp.body().is_empty(), "reader {r}: empty body");
                    // The cache only ever replaces entries with fresher
                    // ones, so one connection's view moves forward.
                    assert!(
                        lm >= last_seen,
                        "reader {r}: stamp went backwards ({last_seen} → {lm})"
                    );
                    last_seen = lm;
                    served += 1;
                }
                served
            })
        })
        .collect();

    let mut total_reads = 0u32;
    for handle in readers {
        total_reads += handle.join().expect("reader panicked");
    }
    let stats = proxy.stats();
    assert!(total_reads > 50, "readers made little progress: {total_reads}");
    assert!(
        stats.refreshes > 3,
        "refresher should have rewritten the entry during the reads: {stats:?}"
    );
}

/// A dead origin plus thousands of pipelined cache-miss requests in one
/// burst: every failed fetch must produce a 500 iteratively (a
/// recursive resume would overflow the reactor stack) and the
/// connection must survive the whole burst.
#[test]
fn pipelined_miss_burst_against_dead_origin_is_iterative() {
    const BURST: usize = 3_000;

    // Bind, learn the port, drop: nobody listens there afterwards.
    let dead_origin = std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap();
    let proxy = LiveProxy::start(ProxyConfig {
        ..ProxyConfig::new(dead_origin)
    })
    .unwrap();

    let mut sock = TcpStream::connect(proxy.local_addr()).unwrap();
    sock.set_read_timeout(Some(StdDuration::from_secs(30))).unwrap();
    let mut burst = Vec::new();
    for i in 0..BURST {
        burst.extend(Request::get(&format!("/miss/{i}")).build().to_bytes());
    }
    sock.write_all(&burst).unwrap();

    let mut buf = BytesMut::new();
    for i in 0..BURST {
        let resp = read_response(&mut sock, &mut buf)
            .unwrap_or_else(|e| panic!("response #{i}: {e}"));
        assert_eq!(
            resp.status(),
            StatusCode::INTERNAL_SERVER_ERROR,
            "response #{i}"
        );
    }
    assert_eq!(proxy.stats().misses, BURST as u64);
}

/// A bounded sharded cache under a key-space much larger than its
/// capacity keeps serving misses correctly (every response fetched
/// through the reactor's upstream path) while evicting.
#[test]
fn bounded_cache_misses_fetch_through_reactor() {
    let mut builder = LiveOrigin::builder();
    for i in 0..64 {
        builder = builder.object(format!("/o/{i}"), ticking_trace("o", 500, 120_000));
    }
    let origin = builder.start().unwrap();
    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![], // no refresher: every path exercises the miss path
        cache_objects: Some(16), // far below the 64-object key space
        ..ProxyConfig::new(origin.local_addr())
    })
    .unwrap();

    let client = HttpClient::new();
    for round in 0..3 {
        for i in 0..64 {
            let resp = client
                .get(proxy.local_addr(), &format!("/o/{i}"), None)
                .unwrap_or_else(|e| panic!("round {round} /o/{i}: {e}"));
            assert_eq!(resp.status(), StatusCode::OK, "round {round} /o/{i}");
        }
    }
    // The shard bound holds: at most 16 + one-per-shard slack.
    assert!(
        proxy.cached_objects() <= 32,
        "bounded cache grew to {}",
        proxy.cached_objects()
    );
    let stats = proxy.stats();
    assert!(stats.misses > 64, "eviction should force repeat misses: {stats:?}");
    assert_eq!(stats.errors, 0);
}
