//! Concurrency scenarios for the refresh plane: the scheduler thread
//! plus its pool of poll workers, driven by the in-process harness
//! (fake clock + scripted origin; see `harness/`).
//!
//! Every scenario pins `refresh_workers` explicitly — the
//! `MUTCON_LIVE_REFRESH_WORKERS` environment knob must not change what
//! these tests assert.

mod harness;

use std::time::{Duration as StdDuration, Instant};

use harness::{stamp_of, Behavior, FakeClock, ScriptedOrigin};
use mutcon_core::time::Duration;
use mutcon_live::client::HttpClient;
use mutcon_live::proxy::{LiveProxy, ProxyConfig, RefreshRule};
use mutcon_traces::json::{parse, Json};

/// A proxy over a scripted origin with `workers` poll workers and one
/// rule per `paths` entry (Δ = `delta_ms`).
fn refresh_proxy(
    origin: &ScriptedOrigin,
    workers: usize,
    paths: &[&str],
    delta_ms: u64,
) -> LiveProxy {
    LiveProxy::start(ProxyConfig {
        rules: paths
            .iter()
            .map(|p| RefreshRule::new(*p, Duration::from_millis(delta_ms)))
            .collect(),
        reactors: Some(1),
        refresh_workers: Some(workers),
        ..ProxyConfig::new(origin.addr())
    })
    .expect("start proxy")
}

/// Waits (5 s cap) until `pred` holds.
fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + StdDuration::from_secs(5);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(StdDuration::from_millis(2));
    }
}

/// With workers=4 and every path's first poll parked behind the gate,
/// the origin must observe the polls *overlapping* — the whole point of
/// the pool. With workers=1 the same scenario must never overlap.
#[test]
fn poll_workers_overlap_origin_latency_and_a_single_worker_does_not() {
    let paths = ["/p0", "/p1", "/p2", "/p3"];

    // Concurrent leg: 4 workers, 4 parked polls at once.
    let origin = ScriptedOrigin::start(FakeClock::new());
    for p in &paths {
        origin.script(p, vec![Behavior::Hold]);
    }
    let proxy = refresh_proxy(&origin, 4, &paths, 20);
    origin.wait_for_held(4);
    origin.release_all();
    assert!(
        origin.max_concurrent() >= 4,
        "4 workers with 4 due paths must overlap polls; max_concurrent = {}",
        origin.max_concurrent()
    );
    drop(proxy);

    // Serial leg: 1 worker can never have two polls on the wire.
    let origin = ScriptedOrigin::start(FakeClock::new());
    let proxy = refresh_proxy(&origin, 1, &paths, 5);
    wait_until("20 polls through the single worker", || {
        proxy.stats().polls >= 20
    });
    assert_eq!(
        origin.max_concurrent(),
        1,
        "one worker must serialize every poll"
    );
    drop(proxy);
}

/// A path whose poll is parked at the origin must not be polled again —
/// not by its own schedule, and not by a rule swap that marks it due
/// immediately. The deferred due entry fires only after the in-flight
/// poll completes.
#[test]
fn an_in_flight_path_is_never_double_polled() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock.clone());
    origin.script("/held", vec![Behavior::Hold]);
    let proxy = refresh_proxy(&origin, 4, &["/held", "/free"], 10);
    origin.wait_for_held(1);

    // Swap in a changed rule for the held path: its state rebuilds and
    // it becomes due immediately — while still on the wire.
    proxy
        .runtime()
        .install(
            vec![
                RefreshRule::new("/held", Duration::from_millis(25)),
                RefreshRule::new("/free", Duration::from_millis(10)),
            ],
            None,
        )
        .expect("valid rules");

    // The free path keeps polling (the pool is not wedged) while the
    // held path stays at exactly one origin fetch. Advance the clock so
    // LIMD sees /free changing and keeps its TTR tight — the whole
    // parked phase must finish well inside the poll client's timeout,
    // or the held poll times out and legitimately retries.
    let free_before = origin.fetches("/free");
    wait_until("/free to keep polling past the held path", || {
        clock.advance(5);
        origin.fetches("/free") >= free_before + 3
    });
    assert_eq!(
        origin.fetches("/held"),
        1,
        "an in-flight path must never be double-polled"
    );

    origin.release_all();
    wait_until("the deferred due entry to fire after release", || {
        origin.fetches("/held") >= 2
    });
    drop(proxy);
}

/// A rule removed while its poll is on the wire must not resurrect the
/// path: the late response is discarded and the cache entry stays gone.
#[test]
fn a_removed_path_is_not_resurrected_by_its_in_flight_poll() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    let proxy = refresh_proxy(&origin, 4, &["/keep", "/gone"], 10);

    // Scheduled polls self-populate the cache.
    wait_until("both ruled paths cached", || proxy.cached_objects() == 2);

    // Park /gone's next poll, then remove its rule mid-flight.
    origin.script("/gone", vec![Behavior::Hold]);
    wait_until("/gone parked at the origin", || origin.held() >= 1);
    proxy
        .runtime()
        .install(vec![RefreshRule::new("/keep", Duration::from_millis(10))], None)
        .expect("valid rules");
    wait_until("/gone evicted on rule removal", || {
        proxy.cached_objects() == 1
    });

    origin.release_all();
    // The released poll's 200 must be discarded, not stored; give the
    // completion ample time to land before asserting.
    std::thread::sleep(StdDuration::from_millis(100));
    assert_eq!(
        proxy.cached_objects(),
        1,
        "a dead rule's in-flight poll must not resurrect its entry"
    );
    assert!(
        proxy.runtime().status().iter().all(|s| s.path != "/gone"),
        "removed path must vanish from the live status"
    );
    drop(proxy);
}

/// Client reads racing the worker pool never observe time running
/// backwards: the served stamp is monotone non-decreasing per path.
#[test]
fn refresh_vs_read_stamps_stay_monotone() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock.clone());
    let proxy = refresh_proxy(&origin, 4, &["/m"], 5);
    wait_until("/m cached", || proxy.cached_objects() == 1);

    let client = HttpClient::new();
    let mut last = 0u64;
    for round in 0..50 {
        clock.advance(3);
        let resp = client.get(proxy.local_addr(), "/m", None).expect("read /m");
        let stamp = stamp_of(&resp);
        assert!(
            stamp >= last,
            "round {round}: stamp went backwards ({stamp} < {last})"
        );
        last = stamp;
    }
    drop(proxy);
}

/// The `refresh` section of `GET /admin/stats` reflects the running
/// pool: configured worker count, poll totals in step with the proxy
/// counter, and a drift histogram that actually recorded the polls.
#[test]
fn admin_stats_exports_the_refresh_plane() {
    let origin = ScriptedOrigin::start(FakeClock::new());
    let proxy = refresh_proxy(&origin, 4, &["/a", "/b"], 10);
    wait_until("a healthy batch of polls", || proxy.stats().polls >= 10);

    let client = HttpClient::new();
    let resp = client
        .get(proxy.local_addr(), "/admin/stats", None)
        .expect("admin stats");
    let doc = parse(std::str::from_utf8(resp.body()).expect("utf8")).expect("json");
    let refresh = doc.get("refresh").expect("refresh section");

    let num = |v: &Json, key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("refresh.{key} missing in {v}"))
    };
    assert_eq!(num(refresh, "workers"), 4);
    assert!(num(refresh, "polls") >= 10);
    let drift = refresh.get("drift").expect("drift histogram");
    assert!(num(drift, "count") >= 10, "every poll records its drift");
    assert!(
        drift.get("p99_ms").and_then(Json::as_f64).expect("p99") >= 0.0
            && drift.get("max_ms").and_then(Json::as_f64).expect("max") >= 0.0
    );
    drop(proxy);
}
