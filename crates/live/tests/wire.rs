//! Wire-path tests: the zero-copy hit path over real sockets.
//!
//! The module tests in `mutcon_live::vectored` prove the gather-write
//! state machine correct at every split point against in-memory sinks;
//! these scenarios put the same machinery behind real TCP and assert
//! the end-to-end promises the engine makes:
//!
//! * a cache hit moves **zero** body bytes through a copy — the
//!   `body_copies` counter stays flat over any number of hits — and
//!   each hit response leaves in a single `writev` when the socket
//!   cooperates;
//! * per-reactor buffer pooling recycles read/write buffers across
//!   connection lifetimes with a bounded pool high-water mark;
//! * responses are bit-identical across connections and across partial
//!   vectored writes (a megabyte body forced through a slow reader);
//! * `/admin/stats` exposes the wire counters (and each reactor's
//!   active backend);
//! * interest coalescing keeps `epoll_ctl` traffic sublinear in
//!   requests under keep-alive;
//! * the epoll and io_uring backends serve byte-identical responses.

mod harness;

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use bytes::BytesMut;
use harness::{FakeClock, ScriptedOrigin};
use mutcon_live::client::{HttpClient, X_LAST_MODIFIED_MS};
use mutcon_live::proxy::{LiveProxy, ProxyConfig};
use mutcon_live::wire::{read_request, read_response, write_response};
use mutcon_http::message::{Request, Response};
use mutcon_http::types::StatusCode;
use mutcon_sim::reactor::BackendKind;
use mutcon_traces::json::{self, Json};

/// A proxy with no refresher rules: first access to a path is a miss,
/// every later access is a pure cache hit.
fn hit_only_proxy(origin_addr: SocketAddr, reactors: Option<usize>) -> LiveProxy {
    backend_proxy(origin_addr, reactors, None)
}

/// [`hit_only_proxy`] with the reactor backend pinned.
fn backend_proxy(
    origin_addr: SocketAddr,
    reactors: Option<usize>,
    backend: Option<BackendKind>,
) -> LiveProxy {
    LiveProxy::start(ProxyConfig {
        reactors,
        backend,
        ..ProxyConfig::new(origin_addr)
    })
    .expect("start proxy")
}

/// Waits (5 s cap) until `pred` holds.
fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + StdDuration::from_secs(5);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(StdDuration::from_millis(2));
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let sock = TcpStream::connect(addr).expect("connect");
    sock.set_read_timeout(Some(StdDuration::from_secs(10))).unwrap();
    sock
}

/// Reads exactly one `Content-Length`-delimited response off the wire,
/// returning its raw bytes (head + blank line + body) untouched, so
/// scenarios can compare responses bit-for-bit.
fn read_raw_response(sock: &mut TcpStream) -> Vec<u8> {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 8192];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = sock.read(&mut chunk).expect("read head");
        assert!(n > 0, "peer closed mid-head");
        raw.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&raw[..head_end]).expect("ascii head");
    let len: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            if name.eq_ignore_ascii_case("content-length") {
                value.trim().parse().ok()
            } else {
                None
            }
        })
        .expect("content-length present");
    while raw.len() < head_end + len {
        let n = sock.read(&mut chunk).expect("read body");
        assert!(n > 0, "peer closed mid-body");
        raw.extend_from_slice(&chunk[..n]);
    }
    // Requests are strictly sequential in these tests, so nothing may
    // trail the response.
    assert_eq!(raw.len(), head_end + len, "unexpected pipelined surplus");
    raw
}

/// The acceptance scenario for the zero-copy tentpole: over N cache
/// hits on a keep-alive connection, the engine copies **zero** body
/// bytes (the shared `Arc` body is vectored straight to the socket)
/// and issues at least one gather write per response.
#[test]
fn hits_copy_no_body_bytes_and_leave_via_writev() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    let proxy = hit_only_proxy(origin.addr(), None);

    // Warm: the one and only origin fetch.
    let warm = HttpClient::new();
    let first = warm.get(proxy.local_addr(), "/obj", None).unwrap();
    assert_eq!(first.status(), StatusCode::OK);
    assert_eq!(first.headers().get("x-cache"), Some("miss"));

    let metrics = Arc::clone(proxy.engine_metrics());
    let copies_before = metrics.body_copies();
    let writev_before = metrics.writev_calls();

    const HITS: u64 = 32;
    let mut sock = connect(proxy.local_addr());
    let mut buf = BytesMut::new();
    let request = Request::get("/obj").build().to_bytes();
    for _ in 0..HITS {
        sock.write_all(&request).unwrap();
        let resp = read_response(&mut sock, &mut buf).expect("hit response");
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.headers().get("x-cache"), Some("hit"));
        assert!(!resp.body().is_empty());
    }

    assert_eq!(
        metrics.body_copies() - copies_before,
        0,
        "the hit path must never copy body bytes"
    );
    // The reactor folds flush stats into the shared metrics right after
    // the writev whose bytes we just read, so the final increment can
    // trail the client's read by a beat.
    wait_until("writev counters settle", || {
        metrics.writev_calls() - writev_before >= HITS
    });
    assert_eq!(origin.fetches("/obj"), 1, "hits must not touch the origin");
}

/// Buffer pooling across connection lifetimes: short-lived connections
/// recycle their read/write buffers through the reactor-local pool
/// (reuses dominate, the pool's high-water mark stays bounded) and
/// every connection reads back bit-identical hit bytes.
#[test]
fn pooled_buffers_recycle_across_connections_with_identical_bytes() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    // One reactor: successive connections land in the same pool.
    let proxy = hit_only_proxy(origin.addr(), Some(1));
    let metrics = Arc::clone(proxy.engine_metrics());
    let request = Request::get("/obj").build().to_bytes();

    let gauge = |metrics: &mutcon_live::server::EngineMetrics| -> usize {
        metrics.reactor_connections().into_iter().sum()
    };

    // Warm on its own connection; its buffers seed the pool on close.
    {
        let mut sock = connect(proxy.local_addr());
        sock.write_all(&request).unwrap();
        let raw = read_raw_response(&mut sock);
        assert!(raw.windows(13).any(|w| w == b"x-cache: miss"));
    }
    wait_until("warm connection reaped", || gauge(&metrics) == 0);

    let reuses_before = metrics.buf_reuses();
    let mut first_hit: Option<Vec<u8>> = None;
    const CONNS: usize = 8;
    for _ in 0..CONNS {
        let mut sock = connect(proxy.local_addr());
        sock.write_all(&request).unwrap();
        let raw = read_raw_response(&mut sock);
        assert!(raw.windows(12).any(|w| w == b"x-cache: hit"));
        match &first_hit {
            Some(expected) => assert_eq!(
                raw, *expected,
                "hits must be bit-identical across connections"
            ),
            None => first_hit = Some(raw),
        }
        drop(sock);
        // The close must be reaped before the next accept, so the next
        // connection draws from the recycled buffers.
        wait_until("connection reaped", || gauge(&metrics) == 0);
    }

    let reuses = metrics.buf_reuses() - reuses_before;
    assert!(
        reuses >= CONNS as u64,
        "expected pooled-buffer reuse across {CONNS} connections, saw {reuses}"
    );
    let high_water = metrics.buf_pool_high_water();
    assert!(
        (1..=64).contains(&high_water),
        "pool high-water out of bounds: {high_water}"
    );
}

/// An origin that serves `body` for every GET, keep-alive, stamped with
/// a fixed modification time (one blocking thread per connection — the
/// system under test is the proxy's write path, not this fixture).
fn big_body_origin(body: Arc<Vec<u8>>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind origin");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { break };
            let body = Arc::clone(&body);
            std::thread::spawn(move || {
                let mut buf = BytesMut::new();
                while let Ok(Some(_request)) = read_request(&mut stream, &mut buf) {
                    let response = Response::ok()
                        .header(X_LAST_MODIFIED_MS, "1000000000000")
                        .keep_alive()
                        .body(body.as_ref().clone())
                        .build();
                    if write_response(&mut stream, &response).is_err() {
                        break;
                    }
                }
            });
        }
    });
    addr
}

/// The partial-write gauntlet over a real socket: a megabyte body can
/// never leave in one `writev` (it dwarfs the socket send buffer), so
/// the plan must survive many partial gather writes — including the
/// head/body boundary landing mid-`writev` — and still deliver the
/// exact cached bytes, with zero body copies.
#[test]
fn megabyte_hit_survives_partial_writes_byte_for_byte() {
    let body: Arc<Vec<u8>> = Arc::new(
        (0..1024 * 1024)
            .map(|i: u32| (i.wrapping_mul(31).wrapping_add(7) % 251) as u8)
            .collect(),
    );
    let origin_addr = big_body_origin(Arc::clone(&body));
    let proxy = hit_only_proxy(origin_addr, Some(1));
    let metrics = Arc::clone(proxy.engine_metrics());
    let request = Request::get("/big").build().to_bytes();

    // Warm (miss): pulls the megabyte from the origin into the cache.
    {
        let mut sock = connect(proxy.local_addr());
        sock.write_all(&request).unwrap();
        let raw = read_raw_response(&mut sock);
        assert!(raw.ends_with(&body[body.len() - 64..]));
    }

    let copies_before = metrics.body_copies();
    let writev_before = metrics.writev_calls();

    // Two hits on one keep-alive connection, each read only after a
    // pause so the kernel send buffer fills and the engine's flush sees
    // real short writes and `WouldBlock`.
    let mut sock = connect(proxy.local_addr());
    let mut first_hit: Option<Vec<u8>> = None;
    for _ in 0..2 {
        sock.write_all(&request).unwrap();
        std::thread::sleep(StdDuration::from_millis(100));
        let raw = read_raw_response(&mut sock);
        let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        assert!(raw[..head_end]
            .windows(12)
            .any(|w| w == b"x-cache: hit"));
        assert_eq!(&raw[head_end..], &body[..], "body must survive intact");
        match &first_hit {
            Some(expected) => assert_eq!(raw, *expected, "hits must be bit-identical"),
            None => first_hit = Some(raw),
        }
    }

    assert_eq!(
        metrics.body_copies() - copies_before,
        0,
        "a megabyte hit body must never be copied"
    );
    wait_until("partial flushes gather-write", || {
        metrics.writev_calls() - writev_before >= 2
    });
}

/// `/admin/stats` surfaces the wire counters for operators.
#[test]
fn admin_stats_exposes_wire_counters() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    let proxy = hit_only_proxy(origin.addr(), None);
    let client = HttpClient::new();

    // A miss and a hit so the counters have something to show.
    client.get(proxy.local_addr(), "/obj", None).unwrap();
    let hit = client.get(proxy.local_addr(), "/obj", None).unwrap();
    assert_eq!(hit.headers().get("x-cache"), Some("hit"));

    let resp = client.get(proxy.local_addr(), "/admin/stats", None).unwrap();
    assert_eq!(resp.status(), StatusCode::OK);
    let doc: Json =
        json::parse(std::str::from_utf8(resp.body()).unwrap()).expect("stats JSON");
    let wire = doc.get("wire").expect("wire section");
    for key in [
        "write_calls",
        "writev_calls",
        "accept_batches",
        "body_copies",
        "buf_reuses",
        "buf_allocs",
        "buf_pool_high_water",
        "epoll_ctl_calls",
        "interest_coalesced",
        "sqe_submitted",
        "cqe_completed",
        "l1_hits",
        "l1_stale_rejects",
        "l1_stale_serves",
        "write_stalls",
    ] {
        assert!(
            wire.get(key).and_then(Json::as_u64).is_some(),
            "wire.{key} missing from /admin/stats"
        );
    }
    assert!(wire.get("writev_calls").unwrap().as_u64().unwrap() >= 1);
    assert!(wire.get("buf_allocs").unwrap().as_u64().unwrap() >= 1);
    assert!(wire.get("accept_batches").unwrap().as_u64().unwrap() >= 1);
    // Every reactor reports which backend it actually runs.
    let backends = wire
        .get("backends")
        .and_then(Json::as_array)
        .expect("wire.backends array");
    assert_eq!(backends.len(), proxy.reactor_count());
    for b in backends {
        let label = b.as_str().expect("backend label string");
        assert!(
            label == "epoll" || label == "io_uring",
            "unexpected backend label {label:?}"
        );
    }
}

/// `/admin/stats` surfaces the L1 hierarchy counters — capacity, the
/// hit/stale/refill story, and the must-be-zero stale-serve audit. The
/// proxy pins its L1 explicitly so the `MUTCON_LIVE_L1=0` parity leg in
/// CI cannot change what this test asserts.
#[test]
fn admin_stats_exposes_l1_and_cache_counters() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    let proxy = LiveProxy::start(ProxyConfig {
        reactors: Some(1),
        l1_objects: Some(64),
        ..ProxyConfig::new(origin.addr())
    })
    .expect("start proxy");
    let client = HttpClient::new();

    // A miss (stores to L2), an L2 hit (refills the L1), then two L1
    // hits — the refill protocol only promotes on a validated L2 hit.
    client.get(proxy.local_addr(), "/obj", None).unwrap();
    for _ in 0..3 {
        let hit = client.get(proxy.local_addr(), "/obj", None).unwrap();
        assert_eq!(hit.headers().get("x-cache"), Some("hit"));
    }

    let resp = client.get(proxy.local_addr(), "/admin/stats", None).unwrap();
    let doc: Json =
        json::parse(std::str::from_utf8(resp.body()).unwrap()).expect("stats JSON");
    let cache = doc.get("cache").expect("cache section");
    for key in ["objects", "evictions", "generation", "version_bumps", "touch_skips"] {
        assert!(
            cache.get(key).and_then(Json::as_u64).is_some(),
            "cache.{key} missing from /admin/stats"
        );
    }
    let l1 = cache.get("l1").expect("cache.l1 section");
    let counter = |key: &str| l1.get(key).and_then(Json::as_u64).unwrap_or_else(|| {
        panic!("cache.l1.{key} missing from /admin/stats")
    });
    assert_eq!(counter("capacity"), 64);
    assert!(counter("hits") >= 2, "both repeat reads must be L1 hits");
    assert!(counter("refills") >= 1, "the miss must refill the L1");
    assert_eq!(counter("stale_serves"), 0, "the stale audit must count zero");
    let _ = (counter("stale_rejects"), counter("evictions"));
    // The wire section mirrors the serve-path counters.
    let wire = doc.get("wire").expect("wire section");
    assert_eq!(
        wire.get("l1_hits").and_then(Json::as_u64),
        l1.get("hits").and_then(Json::as_u64),
        "wire.l1_hits and cache.l1.hits are the same counter"
    );
    assert_eq!(wire.get("l1_stale_serves").and_then(Json::as_u64), Some(0));
    // Per-shard version bumps are itemized too.
    let shards = cache.get("shards").and_then(Json::as_array).expect("shards");
    assert!(shards
        .iter()
        .all(|s| s.get("version_bumps").and_then(Json::as_u64).is_some()));
}

/// The interest-coalescing acceptance: over a burst of keep-alive
/// requests, `epoll_ctl_calls` grows **sublinearly in requests** — the
/// per-connection interest cell nets each request's READABLE →
/// (WRITABLE) → READABLE round-trip out to nothing by flush time, so
/// the kernel sees per-*connection* registration traffic, not
/// per-request traffic. Pinned to the epoll backend so the counter
/// under test is live regardless of `MUTCON_LIVE_BACKEND`.
#[test]
fn epoll_ctl_calls_grow_sublinearly_in_requests() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    let proxy = backend_proxy(origin.addr(), Some(1), Some(BackendKind::Epoll));
    let metrics = Arc::clone(proxy.engine_metrics());

    // Warm the cache so the measured burst is all keep-alive hits.
    let warm = HttpClient::new();
    warm.get(proxy.local_addr(), "/obj", None).unwrap();

    let mut sock = connect(proxy.local_addr());
    let mut buf = BytesMut::new();
    let request = Request::get("/obj").build().to_bytes();
    // First request on the fresh connection: its accept-time ADD and
    // any first-flight MODs land before the measured window.
    sock.write_all(&request).unwrap();
    read_response(&mut sock, &mut buf).expect("first hit");
    wait_until("pre-burst counters settle", || metrics.writev_calls() >= 2);

    const REQUESTS: u64 = 200;
    let ctl_before = metrics.epoll_ctl_calls();
    for _ in 0..REQUESTS {
        sock.write_all(&request).unwrap();
        let resp = read_response(&mut sock, &mut buf).expect("hit response");
        assert_eq!(resp.headers().get("x-cache"), Some("hit"));
    }
    // The counters fold into the shared metrics once per event-loop
    // turn; give the final turn a beat to land, then hold the bound.
    std::thread::sleep(StdDuration::from_millis(20));
    let ctl = metrics.epoll_ctl_calls() - ctl_before;
    assert!(
        ctl <= REQUESTS / 4,
        "epoll_ctl must be amortized under keep-alive: {ctl} ctl calls for {REQUESTS} requests"
    );
}

/// Backend parity (the io_uring acceptance): the same request sequence
/// against an epoll proxy and an io_uring proxy yields **byte-identical**
/// responses, with zero body copies on both, and the io_uring proxy's
/// reactors really run rings. Auto-skips (visibly) when the kernel
/// refuses rings.
#[test]
fn backends_serve_byte_identical_responses() {
    if !mutcon_sim::reactor::backend::io_uring_available() {
        println!("NOTICE: kernel refuses io_uring rings; parity test skipped");
        return;
    }
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    let request = Request::get("/obj").build().to_bytes();

    let mut transcripts: Vec<Vec<Vec<u8>>> = Vec::new();
    for kind in [BackendKind::Epoll, BackendKind::IoUring] {
        let proxy = backend_proxy(origin.addr(), Some(2), Some(kind));
        // The rings must be real, not a silent fallback.
        let labels = proxy.engine_metrics().reactor_backends();
        assert!(
            labels.iter().all(|l| *l == kind.label()),
            "requested {kind:?}, reactors report {labels:?}"
        );

        // Warm on a throwaway connection (one origin fetch per proxy;
        // the origin serves the same scripted object to both).
        let warm = HttpClient::new();
        let first = warm.get(proxy.local_addr(), "/obj", None).unwrap();
        assert_eq!(first.headers().get("x-cache"), Some("miss"));

        let copies_before = proxy.engine_metrics().body_copies();
        let mut responses = Vec::new();
        // Keep-alive hits on one connection, then fresh-connection hits:
        // both interest-cycling shapes, identical bytes expected.
        let mut sock = connect(proxy.local_addr());
        for _ in 0..8 {
            sock.write_all(&request).unwrap();
            responses.push(read_raw_response(&mut sock));
        }
        drop(sock);
        for _ in 0..4 {
            let mut sock = connect(proxy.local_addr());
            sock.write_all(&request).unwrap();
            responses.push(read_raw_response(&mut sock));
        }
        assert_eq!(
            proxy.engine_metrics().body_copies() - copies_before,
            0,
            "{kind:?}: the hit path must never copy body bytes"
        );
        transcripts.push(responses);
    }

    let (epoll, uring) = (&transcripts[0], &transcripts[1]);
    assert_eq!(epoll.len(), uring.len());
    for (i, (a, b)) in epoll.iter().zip(uring).enumerate() {
        assert_eq!(a, b, "response #{i} differs between epoll and io_uring");
    }
}
