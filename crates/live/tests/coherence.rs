//! L1 coherence scenarios for the per-reactor hot-object cache, driven
//! by the deterministic harness (fake clock + scripted origin + seeded
//! schedules; see `harness/`).
//!
//! The L1 serves validated copies with no locks on the read path; its
//! only correctness obligation is the version-stamp protocol — an L1
//! entry is served iff one atomic compare against the L2's per-path
//! version still passes. These scenarios attack that protocol from the
//! outside: readers hammer the L1 while the refresher stores newer
//! bodies, seeded runs must replay bit-identically, and an L1-disabled
//! proxy must be byte-indistinguishable from an L1-enabled one.
//!
//! Reactor counts and L1 capacities are pinned explicitly — the
//! `MUTCON_LIVE_REACTORS` / `MUTCON_LIVE_L1` environment knobs must not
//! change what these tests assert.

mod harness;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration as StdDuration;

use harness::{stamp_of, FakeClock, ScriptedOrigin, CLOCK_BASE_MS};
use mutcon_core::time::Duration;
use mutcon_live::client::HttpClient;
use mutcon_live::proxy::{LiveProxy, ProxyConfig, RefreshRule};
use mutcon_http::types::StatusCode;
use mutcon_sim::reactor::BackendKind;
use mutcon_sim::rng::SimRng;
use mutcon_traces::json::{self, Json};

/// A proxy with the L1 capacity pinned explicitly (`0` disables) and an
/// optional refresher rule set.
fn l1_proxy(
    origin: &ScriptedOrigin,
    reactors: usize,
    l1_objects: usize,
    rules: Vec<RefreshRule>,
    backend: Option<BackendKind>,
) -> LiveProxy {
    LiveProxy::start(ProxyConfig {
        rules,
        reactors: Some(reactors),
        backend,
        l1_objects: Some(l1_objects),
        ..ProxyConfig::new(origin.addr())
    })
    .expect("start proxy")
}

/// Reads one `u64` counter out of `GET /admin/stats` by key path.
fn stats_counter(proxy: &LiveProxy, path: &[&str]) -> u64 {
    let client = HttpClient::new();
    let resp = client.get(proxy.local_addr(), "/admin/stats", None).expect("stats");
    assert_eq!(resp.status(), StatusCode::OK);
    let doc: Json = json::parse(std::str::from_utf8(resp.body()).unwrap()).expect("stats JSON");
    let mut node = &doc;
    for key in path {
        node = node.get(key).unwrap_or_else(|| panic!("stats key {path:?}"));
    }
    node.as_u64().unwrap_or_else(|| panic!("stats key {path:?} not a number"))
}

/// The backends to exercise: always epoll, plus io_uring when the
/// kernel grants rings.
fn backends() -> Vec<BackendKind> {
    let mut kinds = vec![BackendKind::Epoll];
    if mutcon_sim::reactor::backend::io_uring_available() {
        kinds.push(BackendKind::IoUring);
    } else {
        println!("NOTICE: kernel refuses io_uring rings; epoll only");
    }
    kinds
}

/// The tentpole coherence scenario: the refresher keeps storing newer
/// bodies for the hot object (every store a version bump that must
/// invalidate each reactor's L1 copy) while seeded readers hammer it
/// through the L1 from several reactors. Every reader must observe
/// complete copies whose body bytes match the version header, with
/// stamps monotonically nondecreasing and bounded by the logical clock
/// — and the engine's own post-serve stale audit must count zero.
#[test]
fn l1_readers_never_see_old_bytes_after_a_version_bump() {
    for backend in backends() {
        let clock = FakeClock::new();
        let origin = ScriptedOrigin::start(clock.clone());
        let proxy = l1_proxy(
            &origin,
            2,
            128,
            vec![RefreshRule::new("/hot", Duration::from_millis(20))],
            Some(backend),
        );
        let addr = proxy.local_addr();

        // Warm so readers start from a cached (and L1-refillable) copy.
        let warm = HttpClient::new();
        assert_eq!(warm.get(addr, "/hot", None).unwrap().status(), StatusCode::OK);

        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|r| {
                let stop = Arc::clone(&stop);
                let clock = clock.clone();
                std::thread::spawn(move || {
                    let mut rng = SimRng::seed_from_u64(0x11AC + r);
                    let client = HttpClient::with_timeout(StdDuration::from_secs(10));
                    let mut last = 0u64;
                    let mut served = 0u32;
                    while stop.load(Ordering::SeqCst) == 0 {
                        let resp = client
                            .get(addr, "/hot", None)
                            .unwrap_or_else(|e| panic!("reader {r}: {e}"));
                        assert_eq!(resp.status(), StatusCode::OK, "reader {r}");
                        let stamp = stamp_of(&resp);
                        // The body is stamped by the origin at fetch
                        // time; header and bytes must be the same
                        // version — a reader holding a newer header
                        // over older bytes caught a torn L1 serve.
                        assert_eq!(
                            resp.body().as_ref(),
                            format!("path=/hot stamp={stamp}\n").as_bytes(),
                            "reader {r}: body bytes disagree with the version header"
                        );
                        assert!(
                            stamp >= last,
                            "reader {r}: stamp went backwards ({last} → {stamp})"
                        );
                        assert!(
                            stamp >= CLOCK_BASE_MS && stamp <= CLOCK_BASE_MS + clock.now_ms(),
                            "reader {r}: stamp {stamp} outside the logical timeline"
                        );
                        last = stamp;
                        served += 1;
                        if rng.chance(0.2) {
                            std::thread::sleep(StdDuration::from_micros(rng.uniform_u64(0, 500)));
                        }
                    }
                    served
                })
            })
            .collect();

        // The seeded schedule drives logical time; each advance lets the
        // refresher fetch a newer stamp and bump the path's version.
        let mut rng = SimRng::seed_from_u64(0xC0DE_11AC);
        for _ in 0..60 {
            clock.advance(rng.uniform_u64(1, 40));
            std::thread::sleep(StdDuration::from_millis(5));
        }
        stop.store(1, Ordering::SeqCst);
        let total: u32 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
        assert!(total > 100, "{backend:?}: readers made little progress: {total}");

        // The readers must actually have exercised the L1, and the
        // engine's post-serve version audit must have counted nothing.
        let hits = stats_counter(&proxy, &["cache", "l1", "hits"]);
        assert!(hits > 0, "{backend:?}: the run never served from the L1");
        assert_eq!(
            stats_counter(&proxy, &["cache", "l1", "stale_serves"]),
            0,
            "{backend:?}: the engine counted a stale L1 serve"
        );
        let bumps = stats_counter(&proxy, &["cache", "version_bumps"]);
        assert!(bumps > 1, "{backend:?}: the refresher never bumped a version");
    }
}

/// One seeded scenario transcript: client-visible (path, status, stamp,
/// cache marker) per request plus the origin's event log.
fn seeded_transcript(seed: u64, l1_objects: usize) -> (Vec<String>, Vec<String>) {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock.clone());
    let proxy = l1_proxy(&origin, 1, l1_objects, vec![], None);
    let client = HttpClient::new();
    let mut rng = SimRng::seed_from_u64(seed);
    let paths = ["/a", "/b", "/c", "/d", "/e", "/f"];
    let mut transcript = Vec::new();
    for _ in 0..60 {
        if rng.chance(0.3) {
            clock.advance(rng.uniform_u64(1, 100));
            continue;
        }
        let path = *rng.pick(&paths);
        let resp = client.get(proxy.local_addr(), path, None).expect("get");
        transcript.push(format!(
            "{path} {} {} {}",
            resp.status(),
            stamp_of(&resp),
            resp.headers().get("x-cache").unwrap_or("?"),
        ));
    }
    (origin.log(), transcript)
}

/// With the L1 in the serving path, a seeded scenario must still replay
/// bit-identically — run to run, for every seed.
#[test]
fn l1_scenarios_replay_bit_identically_across_seeds() {
    for seed in [7u64, 42, 0xFEED] {
        let first = seeded_transcript(seed, 128);
        let second = seeded_transcript(seed, 128);
        assert_eq!(first.0, second.0, "seed {seed}: origin logs must replay identically");
        assert_eq!(first.1, second.1, "seed {seed}: transcripts must replay identically");
    }
}

/// The L1 is a cache of a cache: disabling it must not change a single
/// client-visible byte of a seeded scenario — same statuses, same
/// stamps, same hit markers, same origin fetch sequence.
#[test]
fn l1_on_and_off_are_client_indistinguishable() {
    for seed in [3u64, 0xD15C] {
        let enabled = seeded_transcript(seed, 128);
        let disabled = seeded_transcript(seed, 0);
        assert_eq!(
            enabled.0, disabled.0,
            "seed {seed}: L1 must not change the origin fetch sequence"
        );
        assert_eq!(
            enabled.1, disabled.1,
            "seed {seed}: L1 must not change client-visible responses"
        );
    }
}

/// Parity under load, both backends: the refresher-vs-readers scenario
/// with the L1 disabled — the L1-enabled variant above must not be the
/// only configuration whose invariants hold. (The CI zipf stage also
/// re-runs the whole suite with `MUTCON_LIVE_L1=0`; this test keeps the
/// disabled path exercised even standalone.)
#[test]
fn disabled_l1_keeps_the_same_invariants() {
    for backend in backends() {
        let clock = FakeClock::new();
        let origin = ScriptedOrigin::start(clock.clone());
        let proxy = l1_proxy(
            &origin,
            2,
            0,
            vec![RefreshRule::new("/hot", Duration::from_millis(20))],
            Some(backend),
        );
        let addr = proxy.local_addr();
        let client = HttpClient::with_timeout(StdDuration::from_secs(10));
        assert_eq!(client.get(addr, "/hot", None).unwrap().status(), StatusCode::OK);

        let mut rng = SimRng::seed_from_u64(0x0FF);
        let mut last = 0u64;
        for _ in 0..40 {
            clock.advance(rng.uniform_u64(1, 40));
            let resp = client.get(addr, "/hot", None).expect("get");
            assert_eq!(resp.status(), StatusCode::OK);
            let stamp = stamp_of(&resp);
            assert!(stamp >= last, "stamp went backwards ({last} → {stamp})");
            last = stamp;
        }

        assert_eq!(
            stats_counter(&proxy, &["cache", "l1", "capacity"]),
            0,
            "{backend:?}: capacity 0 must disable the L1"
        );
        assert_eq!(stats_counter(&proxy, &["cache", "l1", "hits"]), 0);
        assert_eq!(stats_counter(&proxy, &["cache", "l1", "refills"]), 0);
        assert_eq!(stats_counter(&proxy, &["cache", "l1", "stale_serves"]), 0);
    }
}
