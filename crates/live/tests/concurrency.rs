//! Deterministic concurrency scenarios for the multi-reactor live proxy
//! and its keep-alive origin pool, driven by the in-process harness
//! (fake clock + scripted origin + seeded schedules; see `harness/`).
//!
//! Scenarios pin the reactor count explicitly (the `MUTCON_LIVE_REACTORS`
//! environment knob must not change what these tests assert) and derive
//! every schedule from a fixed seed, so a failure replays bit-identically.

mod harness;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use bytes::Bytes;
use harness::{stamp_of, Behavior, FakeClock, ScriptedOrigin, CLOCK_BASE_MS};
use mutcon_core::time::{Duration, Timestamp};
use mutcon_live::cache::{shard_of, CacheEntry, ShardedCache, SHARD_COUNT};
use mutcon_live::client::HttpClient;
use mutcon_live::proxy::{LiveProxy, ProxyConfig, RefreshRule};
use mutcon_http::types::StatusCode;
use mutcon_sim::rng::SimRng;

/// A proxy in front of a scripted origin with an explicit reactor count
/// and no refresher rules.
fn plain_proxy(origin: &ScriptedOrigin, reactors: usize) -> LiveProxy {
    LiveProxy::start(ProxyConfig {
        reactors: Some(reactors),
        ..ProxyConfig::new(origin.addr())
    })
    .expect("start proxy")
}

/// Polls the proxy's stats endpoint until `pred` holds (5 s cap).
fn wait_for_stats(proxy: &LiveProxy, pred: impl Fn(&str) -> bool, what: &str) {
    let client = HttpClient::new();
    let deadline = Instant::now() + StdDuration::from_secs(5);
    loop {
        let resp = client
            .get(proxy.local_addr(), "/__stats", None)
            .expect("stats endpoint");
        let text = std::str::from_utf8(resp.body()).expect("utf8 stats").to_owned();
        if pred(&text) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; stats:\n{text}"
        );
        std::thread::sleep(StdDuration::from_millis(2));
    }
}

/// Satellite regression test: 100 concurrent misses for one key must
/// produce exactly one origin fetch (N waiters, one keep-alive fetch).
/// The origin parks the single fetch behind a gate until every miss is
/// provably submitted, so the coalescing race is real, not luck.
#[test]
fn hundred_concurrent_misses_coalesce_into_one_origin_fetch() {
    const CLIENTS: usize = 100;

    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    origin.script("/hot", vec![Behavior::Hold]);
    // One reactor: coalescing is per-reactor, and this test asserts the
    // exact per-reactor guarantee.
    let proxy = plain_proxy(&origin, 1);
    let addr = proxy.local_addr();

    // All client threads park on a barrier before sending, so the slow
    // part (spawning 100 threads) happens *before* the origin fetch is
    // parked — the gate window stays far below the reactor's upstream
    // timeout.
    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let readers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let client = HttpClient::with_timeout(StdDuration::from_secs(10));
                barrier.wait();
                let resp = client
                    .get(addr, "/hot", None)
                    .unwrap_or_else(|e| panic!("client {i}: {e}"));
                (resp.status(), stamp_of(&resp))
            })
        })
        .collect();

    // The fetch is parked at the origin; once the proxy has counted all
    // 100 misses, every waiter is coalesced onto that one job.
    origin.wait_for_held(1);
    wait_for_stats(
        &proxy,
        |s| s.contains(&format!("misses={CLIENTS}")),
        "all misses to register",
    );
    origin.release_all();

    let mut stamps = Vec::new();
    for reader in readers {
        let (status, stamp) = reader.join().expect("reader panicked");
        assert_eq!(status, StatusCode::OK);
        stamps.push(stamp);
    }
    assert!(
        stamps.windows(2).all(|w| w[0] == w[1]),
        "every waiter must see the single fetched copy"
    );
    assert_eq!(
        origin.fetches("/hot"),
        1,
        "100 concurrent misses must coalesce into one origin fetch; log: {:?}",
        origin.log()
    );
    assert_eq!(
        origin.accepted(),
        1,
        "one pooled connection carries the one fetch"
    );
}

/// Sequential misses for different keys ride one pooled keep-alive
/// connection — the one-socket-per-miss era is over.
#[test]
fn sequential_misses_reuse_one_origin_connection() {
    let origin = ScriptedOrigin::start(FakeClock::new());
    let proxy = plain_proxy(&origin, 1);
    let client = HttpClient::new();
    for path in ["/p/1", "/p/2", "/p/3", "/p/4", "/p/5"] {
        let resp = client.get(proxy.local_addr(), path, None).expect(path);
        assert_eq!(resp.status(), StatusCode::OK, "{path}");
        assert_eq!(origin.fetches(path), 1, "{path} fetched exactly once");
    }
    assert_eq!(
        origin.accepted(),
        1,
        "five misses must share one keep-alive origin connection; log: {:?}",
        origin.log()
    );
}

/// Mid-transfer origin death: the waiter gets a clean 500 (no retry —
/// response bytes had arrived, so the socket was not merely stale), the
/// broken socket leaves the pool, and the next miss fetches fresh.
#[test]
fn mid_transfer_origin_death_fails_cleanly_then_recovers() {
    let origin = ScriptedOrigin::start(FakeClock::new());
    origin.script("/frail", vec![Behavior::DieMidTransfer]);
    let proxy = plain_proxy(&origin, 1);
    let client = HttpClient::with_timeout(StdDuration::from_secs(10));

    let failed = client.get(proxy.local_addr(), "/frail", None).expect("response");
    assert_eq!(
        failed.status(),
        StatusCode::INTERNAL_SERVER_ERROR,
        "a truncated origin transfer must surface as a 500"
    );

    let recovered = client.get(proxy.local_addr(), "/frail", None).expect("response");
    assert_eq!(recovered.status(), StatusCode::OK, "the retry-by-client recovers");
    assert_eq!(origin.fetches("/frail"), 2);
    assert_eq!(
        origin.log(),
        vec![
            "fetch /frail #1".to_owned(),
            "die /frail".to_owned(),
            "fetch /frail #2".to_owned(),
        ],
        "the event sequence is exact"
    );
}

/// A `Connection: close` response must not be pooled; later misses open
/// a fresh origin connection.
#[test]
fn close_advertised_responses_are_not_pooled() {
    let origin = ScriptedOrigin::start(FakeClock::new());
    origin.script("/one", vec![Behavior::CloseAdvertised]);
    let proxy = plain_proxy(&origin, 1);
    let client = HttpClient::new();

    let first = client.get(proxy.local_addr(), "/one", None).expect("first");
    assert_eq!(first.status(), StatusCode::OK);
    // `Connection` is hop-by-hop: the origin's close applies to the
    // pooled origin socket and must not leak through to the client.
    assert!(
        first.wants_keep_alive(),
        "origin's Connection: close leaked through the proxy"
    );
    let second = client.get(proxy.local_addr(), "/two", None).expect("second");
    assert_eq!(second.status(), StatusCode::OK);

    assert_eq!(origin.fetches("/one"), 1);
    assert_eq!(origin.fetches("/two"), 1);
    assert_eq!(
        origin.accepted(),
        2,
        "the closed socket must not serve the second fetch; log: {:?}",
        origin.log()
    );
}

/// Stale pooled sockets: the origin serves (seeding the pool), then
/// kills the parked connection. Whichever way the race falls — the
/// reactor reaps the EOF first, or reuses the stale socket and takes
/// the one-shot retry — the next miss succeeds with exactly one fetch.
/// Seeded delays vary the interleaving reproducibly.
#[test]
fn stale_pooled_sockets_recover_transparently() {
    let mut rng = SimRng::seed_from_u64(0xD00D_F00D);
    for round in 0..8 {
        let origin = ScriptedOrigin::start(FakeClock::new());
        let silent = round % 2 == 0;
        if silent {
            // The origin itself closes the socket right after the
            // response — the proxy may pool it before noticing the EOF.
            origin.script("/seed", vec![Behavior::SilentClose]);
        }
        let proxy = plain_proxy(&origin, 1);
        let client = HttpClient::with_timeout(StdDuration::from_secs(10));

        // Miss → fetch #1 → connection parked in the pool.
        let first = client.get(proxy.local_addr(), "/seed", None).expect("warm");
        assert_eq!(first.status(), StatusCode::OK, "round {round}");

        // The parked socket dies; depending on the (seeded) delay the
        // reactor may or may not have seen the EOF before the next miss
        // tries to reuse it.
        if !silent {
            origin.drop_connections();
        }
        let delay_us = rng.uniform_u64(0, 3_000);
        std::thread::sleep(StdDuration::from_micros(delay_us));

        let second = client.get(proxy.local_addr(), "/fresh", None).expect("fresh");
        assert_eq!(
            second.status(),
            StatusCode::OK,
            "round {round} (delay {delay_us} µs): a stale pooled socket must never \
             surface to the client; log: {:?}",
            origin.log()
        );
        assert_eq!(origin.fetches("/fresh"), 1, "round {round}");
        assert!(
            origin.accepted() >= 2,
            "round {round}: the stale socket cannot have served the second fetch"
        );
    }
}

/// Refresh-vs-read interleavings on the fake-clock timeline: while the
/// background refresher rewrites the hot object and seeded readers
/// hammer it from several reactors, every reader must observe complete,
/// monotonically nondecreasing copies bounded by the logical clock.
#[test]
fn refresh_vs_read_interleavings_stay_monotonic() {
    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock.clone());
    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![RefreshRule::new("/obj", Duration::from_millis(20))],
        reactors: Some(2),
        ..ProxyConfig::new(origin.addr())
    })
    .expect("start proxy");
    let addr = proxy.local_addr();

    // Warm so readers start from a cached copy.
    let warm = HttpClient::new();
    assert_eq!(warm.get(addr, "/obj", None).unwrap().status(), StatusCode::OK);

    let stop = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let stop = Arc::clone(&stop);
            let clock = clock.clone();
            std::thread::spawn(move || {
                let mut rng = SimRng::seed_from_u64(0xBEEF + r);
                let client = HttpClient::with_timeout(StdDuration::from_secs(10));
                let mut last = 0u64;
                let mut served = 0u32;
                while stop.load(Ordering::SeqCst) == 0 {
                    let resp = client
                        .get(addr, "/obj", None)
                        .unwrap_or_else(|e| panic!("reader {r}: {e}"));
                    assert_eq!(resp.status(), StatusCode::OK, "reader {r}");
                    assert!(!resp.body().is_empty(), "reader {r}: torn copy");
                    let stamp = stamp_of(&resp);
                    assert!(
                        stamp >= last,
                        "reader {r}: stamp went backwards ({last} → {stamp})"
                    );
                    assert!(
                        stamp >= CLOCK_BASE_MS && stamp <= CLOCK_BASE_MS + clock.now_ms(),
                        "reader {r}: stamp {stamp} outside the logical timeline (now {})",
                        clock.now_ms()
                    );
                    last = stamp;
                    served += 1;
                    if rng.chance(0.2) {
                        std::thread::sleep(StdDuration::from_micros(rng.uniform_u64(0, 500)));
                    }
                }
                served
            })
        })
        .collect();

    // The seeded schedule drives logical time while the readers run.
    let mut rng = SimRng::seed_from_u64(0xC10C_CA5E);
    for _ in 0..60 {
        clock.advance(rng.uniform_u64(1, 40));
        std::thread::sleep(StdDuration::from_millis(5));
    }
    stop.store(1, Ordering::SeqCst);

    let total: u32 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert!(total > 100, "readers made little progress: {total}");
    let polls = proxy.stats().polls;
    assert!(polls > 5, "refresher barely ran: {polls} polls");
}

/// One scenario function, run twice with the same seed, must produce
/// bit-identical origin logs and client transcripts — the property that
/// makes every other failure in this file reproducible.
#[test]
fn seeded_scenario_replays_bit_identically() {
    fn run_scenario(seed: u64) -> (Vec<String>, Vec<String>) {
        let clock = FakeClock::new();
        let origin = ScriptedOrigin::start(clock.clone());
        let proxy = plain_proxy(&origin, 1);
        let client = HttpClient::new();
        let mut rng = SimRng::seed_from_u64(seed);
        let paths = ["/a", "/b", "/c", "/d", "/e", "/f"];
        let mut transcript = Vec::new();
        for _ in 0..60 {
            if rng.chance(0.3) {
                clock.advance(rng.uniform_u64(1, 100));
                continue;
            }
            let path = *rng.pick(&paths);
            let resp = client.get(proxy.local_addr(), path, None).expect("get");
            transcript.push(format!("{path} {} {}", resp.status(), stamp_of(&resp)));
        }
        (origin.log(), transcript)
    }

    let first = run_scenario(42);
    let second = run_scenario(42);
    assert_eq!(first.0, second.0, "origin event logs must replay identically");
    assert_eq!(first.1, second.1, "client transcripts must replay identically");
}

/// Keys that all hash into shard 0, for hammering one shard from
/// several threads.
fn colliding_keys(n: usize) -> Arc<Vec<String>> {
    let keys: Vec<String> = (0..)
        .map(|i| format!("/collide/{i}"))
        .filter(|k| shard_of(k) == 0)
        .take(n)
        .collect();
    assert_eq!(keys.len(), n);
    Arc::new(keys)
}

/// Satellite: `ShardedCache` monotonicity under multi-reactor writers.
/// Four threads with seeded schedules hammer keys that all collide into
/// ONE shard of an *unbounded* cache (no eviction, the paper's model):
/// `insert_if_newer` must never roll a key back, under any
/// interleaving — each thread checks both what it writes and what it
/// reads against the freshest stamp it has personally observed.
#[test]
fn sharded_cache_multi_writer_insert_if_newer_is_monotone() {
    const WRITERS: u64 = 4;
    const OPS: usize = 2_500;

    let keys = colliding_keys(8);
    let cache = Arc::new(ShardedCache::new(None));
    let stamp_source = Arc::new(AtomicU64::new(1));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let cache = Arc::clone(&cache);
            let stamps = Arc::clone(&stamp_source);
            let keys = Arc::clone(&keys);
            std::thread::spawn(move || {
                let mut rng = SimRng::seed_from_u64(0x5EED_0000 + w);
                let mut last_seen: Vec<u64> = vec![0; keys.len()];
                for _ in 0..OPS {
                    let key_idx = rng.uniform_u64(0, keys.len() as u64) as usize;
                    let key = &keys[key_idx];
                    if rng.chance(0.7) {
                        // Writer path: the returned resident copy may be
                        // a fresher incumbent but never older than what
                        // this thread just offered, nor than anything it
                        // saw before.
                        let stamp = stamps.fetch_add(1, Ordering::SeqCst);
                        let entry = CacheEntry::new(
                            Bytes::copy_from_slice(stamp.to_string().as_bytes()),
                            Timestamp::from_millis(stamp),
                            None,
                            None,
                        );
                        let resident = cache.insert_if_newer(key, entry);
                        let got = resident.last_modified().as_millis();
                        assert!(
                            got >= stamp,
                            "writer {w}: insert_if_newer rolled {key} back ({stamp} → {got})"
                        );
                        assert!(
                            got >= last_seen[key_idx],
                            "writer {w}: resident stamp for {key} went backwards \
                             ({} → {got})",
                            last_seen[key_idx]
                        );
                        last_seen[key_idx] = got;
                    } else if let Some(entry) = cache.get(key) {
                        // Reader path: entries are never torn and never
                        // older than this thread last observed.
                        let got = entry.last_modified().as_millis();
                        assert_eq!(
                            std::str::from_utf8(&entry.body()[..]).unwrap(),
                            got.to_string(),
                            "writer {w}: torn entry for {key}"
                        );
                        assert!(
                            got >= last_seen[key_idx],
                            "writer {w}: read of {key} went backwards"
                        );
                        last_seen[key_idx] = got;
                    }
                }
            })
        })
        .collect();

    for writer in writers {
        writer.join().expect("writer panicked");
    }
    // Every hammered key is resident (unbounded cache) with an issued,
    // never-invented stamp.
    let issued = stamp_source.load(Ordering::SeqCst);
    for key in keys.iter() {
        let entry = cache.get(key).expect("unbounded cache never evicts");
        assert!(entry.last_modified().as_millis() < issued);
    }
}

/// Satellite: the per-shard LRU capacity bound under four concurrent
/// writer threads spraying one shard — the bound must hold at every
/// moment, not just after the dust settles. (Monotonicity is asserted
/// per offered stamp only: a bounded cache may evict and legitimately
/// re-admit an older stamp later.)
#[test]
fn sharded_cache_multi_writer_lru_bound_holds_under_contention() {
    const WRITERS: u64 = 4;
    const OPS: usize = 2_000;

    let keys = colliding_keys(24);
    // Capacity 2·SHARD_COUNT → 2 entries per shard; all traffic lands
    // in shard 0, so its bound is the one under stress.
    let cache = Arc::new(ShardedCache::new(Some(2 * SHARD_COUNT)));
    let stamp_source = Arc::new(AtomicU64::new(1));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let cache = Arc::clone(&cache);
            let stamps = Arc::clone(&stamp_source);
            let keys = Arc::clone(&keys);
            std::thread::spawn(move || {
                let mut rng = SimRng::seed_from_u64(0xB0_0000 + w);
                for _ in 0..OPS {
                    let key = rng.pick(&keys);
                    if rng.chance(0.8) {
                        let stamp = stamps.fetch_add(1, Ordering::SeqCst);
                        let entry = CacheEntry::new(
                            Bytes::copy_from_slice(stamp.to_string().as_bytes()),
                            Timestamp::from_millis(stamp),
                            None,
                            None,
                        );
                        let resident = cache.insert_if_newer(key, entry);
                        assert!(
                            resident.last_modified().as_millis() >= stamp,
                            "writer {w}: resident copy older than the offered one"
                        );
                    } else {
                        let _ = cache.get(key);
                    }
                    // The hammered shard must respect its LRU bound at
                    // every moment.
                    let len = cache.shard_len(0);
                    assert!(len <= 2, "writer {w}: shard 0 grew to {len} > 2");
                }
            })
        })
        .collect();

    for writer in writers {
        writer.join().expect("writer panicked");
    }
    assert!(cache.shard_len(0) <= 2);
    assert!(cache.len() <= 2 * SHARD_COUNT);
}

/// Four reactors with four SO_REUSEPORT listener shards behind one
/// port: every connection is served no matter which shard the kernel
/// picks, misses coalesce to at most one fetch *per reactor*, and the
/// shared cache keeps all shards consistent.
#[test]
fn four_reactors_serve_and_bound_coalesced_fetches() {
    const CLIENTS: usize = 64;

    let origin = ScriptedOrigin::start(FakeClock::new());
    // One Hold per reactor that may fetch: with every possible fetch
    // parked, no reactor can cache the object early, so all 64 clients
    // provably miss before the gate opens.
    origin.script("/spread", vec![Behavior::Hold; 4]);
    let proxy = plain_proxy(&origin, 4);
    assert_eq!(proxy.reactor_count(), 4);
    let addr = proxy.local_addr();

    // Barrier for the same reason as the coalescing test: keep the
    // held-fetch window clear of the thread-spawn cost.
    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let readers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let client = HttpClient::with_timeout(StdDuration::from_secs(10));
                barrier.wait();
                let resp = client
                    .get(addr, "/spread", None)
                    .unwrap_or_else(|e| panic!("client {i}: {e}"));
                assert_eq!(resp.status(), StatusCode::OK, "client {i}");
            })
        })
        .collect();

    // Wait until every client's miss is counted (the counter is shared
    // across reactors), then release the parked fetches.
    origin.wait_for_held(1);
    wait_for_stats(
        &proxy,
        |s| s.contains(&format!("misses={CLIENTS}")),
        "all misses to register",
    );
    origin.release_all();
    for reader in readers {
        reader.join().expect("client panicked");
    }

    let fetches = origin.fetches("/spread");
    assert!(
        (1..=4).contains(&fetches),
        "misses must coalesce per reactor: {CLIENTS} clients, {fetches} fetches \
         across 4 reactors; log: {:?}",
        origin.log()
    );
}
