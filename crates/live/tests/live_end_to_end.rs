//! End-to-end tests: a real origin and a real proxy on localhost TCP,
//! running the LIMD + mutual-consistency machinery in wall-clock time.

use std::time::Duration as StdDuration;

use mutcon_core::mutual::temporal::MtPolicy;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;
use mutcon_live::client::{last_modified_ms, HttpClient, X_LAST_MODIFIED_MS};
use mutcon_live::origin::{Fault, LiveOrigin};
use mutcon_live::proxy::{GroupRule, LiveProxy, ProxyConfig, RefreshRule};
use mutcon_http::types::StatusCode;
use mutcon_traces::{UpdateEvent, UpdateTrace};

/// An object updated every `period_ms` for `total_ms`.
fn ticking_trace(name: &str, period_ms: u64, total_ms: u64) -> UpdateTrace {
    let mut events = vec![UpdateEvent::valued(Timestamp::ZERO, Value::new(100.0))];
    let mut t = period_ms;
    let mut v = 100.0;
    while t <= total_ms {
        v += 0.25;
        events.push(UpdateEvent::valued(Timestamp::from_millis(t), Value::new(v)));
        t += period_ms;
    }
    UpdateTrace::new(name, Timestamp::ZERO, Timestamp::from_millis(total_ms), events).unwrap()
}

/// A static object (initial version only).
fn static_trace(name: &str, total_ms: u64) -> UpdateTrace {
    UpdateTrace::new(
        name,
        Timestamp::ZERO,
        Timestamp::from_millis(total_ms),
        vec![UpdateEvent::temporal(Timestamp::ZERO)],
    )
    .unwrap()
}

#[test]
fn proxy_keeps_cached_object_fresh() {
    let origin = LiveOrigin::builder()
        .object("/fast", ticking_trace("fast", 40, 60_000))
        .start()
        .unwrap();
    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![RefreshRule::new("/fast", Duration::from_millis(120))],
        ..ProxyConfig::new(origin.local_addr())
    })
    .unwrap();

    let client = HttpClient::new();
    // Warm the cache, then let the refresher run for a while.
    let first = client.get(proxy.local_addr(), "/fast", None).unwrap();
    assert_eq!(first.status(), StatusCode::OK);
    std::thread::sleep(StdDuration::from_millis(800));

    // The cached copy must be recent: within Δ plus scheduling slack.
    let resp = client.get(proxy.local_addr(), "/fast", None).unwrap();
    assert_eq!(resp.status(), StatusCode::OK);
    assert_eq!(resp.headers().get("x-cache"), Some("hit"));
    let lm = last_modified_ms(&resp).expect("cached copy is stamped");
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64;
    let staleness = now_ms.saturating_sub(lm.as_millis());
    assert!(
        staleness < 1_000,
        "cached copy is {staleness} ms stale — refresher not keeping up"
    );

    let stats = proxy.stats();
    assert!(stats.polls > 3, "refresher barely polled: {stats:?}");
    assert!(stats.refreshes > 1);
    assert!(stats.hits >= 1);
}

#[test]
fn limd_backs_off_for_static_objects() {
    let origin = LiveOrigin::builder()
        .object("/static", static_trace("static", 120_000))
        .start()
        .unwrap();
    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![RefreshRule::new("/static", Duration::from_millis(50))
            .ttr_max(Duration::from_millis(400))],
        ..ProxyConfig::new(origin.local_addr())
    })
    .unwrap();

    std::thread::sleep(StdDuration::from_millis(900));
    let polls = proxy.stats().polls;
    // Strict every-Δ polling would be ~18 polls in 900 ms; LIMD's linear
    // growth must do visibly better.
    assert!(
        polls < 15,
        "LIMD did not back off on a static object: {polls} polls"
    );
    assert!(polls >= 2);
}

#[test]
fn triggered_polls_keep_related_objects_in_step() {
    let origin = LiveOrigin::builder()
        .object("/story", ticking_trace("story", 60, 60_000))
        .object("/photo", ticking_trace("photo", 60, 60_000))
        .start()
        .unwrap();
    // Asymmetric Δs: the story polls often, the photo rarely — so the
    // photo's freshness between its own polls comes from Mt triggers.
    // (With identical Δs the pool polls both members in lockstep and
    // the coordinator rightly coalesces every would-be trigger.)
    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![
            RefreshRule::new("/story", Duration::from_millis(100)),
            RefreshRule::new("/photo", Duration::from_millis(600)),
        ],
        group: Some(GroupRule {
            delta: Duration::from_millis(30),
            policy: MtPolicy::TriggeredPolls,
        }),
        ..ProxyConfig::new(origin.local_addr())
    })
    .unwrap();

    std::thread::sleep(StdDuration::from_millis(900));
    let stats = proxy.stats();
    assert!(
        stats.triggered > 0,
        "updates should have triggered cross-object polls: {stats:?}"
    );

    // Both copies should be present and stamped close together.
    let client = HttpClient::new();
    let story = client.get(proxy.local_addr(), "/story", None).unwrap();
    let photo = client.get(proxy.local_addr(), "/photo", None).unwrap();
    let lm_story = last_modified_ms(&story).unwrap();
    let lm_photo = last_modified_ms(&photo).unwrap();
    let skew = lm_story.abs_diff(lm_photo);
    assert!(
        skew < Duration::from_millis(600),
        "cached copies {skew} apart"
    );
}

#[test]
fn proxy_survives_origin_faults() {
    let origin = LiveOrigin::builder()
        .object("/fast", ticking_trace("fast", 40, 60_000))
        .start()
        .unwrap();
    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![RefreshRule::new("/fast", Duration::from_millis(100))],
        ..ProxyConfig::new(origin.local_addr())
    })
    .unwrap();
    let client = HttpClient::new();

    // Warm up.
    let warm = client.get(proxy.local_addr(), "/fast", None).unwrap();
    assert_eq!(warm.status(), StatusCode::OK);

    // Break the origin: the proxy must keep serving the cached copy.
    origin.set_fault(Fault::DropConnections);
    std::thread::sleep(StdDuration::from_millis(300));
    let during = client.get(proxy.local_addr(), "/fast", None).unwrap();
    assert_eq!(during.status(), StatusCode::OK);
    assert_eq!(during.headers().get("x-cache"), Some("hit"));
    let errors_during = proxy.stats().errors;
    assert!(errors_during > 0, "refresher should have recorded errors");

    // Heal the origin: refreshing resumes.
    origin.set_fault(Fault::None);
    std::thread::sleep(StdDuration::from_millis(500));
    let after = client.get(proxy.local_addr(), "/fast", None).unwrap();
    let lm = last_modified_ms(&after).unwrap();
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64;
    assert!(
        now_ms.saturating_sub(lm.as_millis()) < 1_500,
        "refresher did not recover after the fault cleared"
    );
}

#[test]
fn stats_endpoint_and_miss_path() {
    let origin = LiveOrigin::builder()
        .object("/obj", ticking_trace("obj", 50, 60_000))
        .start()
        .unwrap();
    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![], // no refresher: every first access is a miss
        ..ProxyConfig::new(origin.local_addr())
    })
    .unwrap();
    let client = HttpClient::new();

    // Miss then hit.
    let first = client.get(proxy.local_addr(), "/obj", None).unwrap();
    assert_eq!(first.status(), StatusCode::OK);
    assert_eq!(first.headers().get("x-cache"), Some("miss"));
    assert!(first.headers().contains(X_LAST_MODIFIED_MS));
    let second = client.get(proxy.local_addr(), "/obj", None).unwrap();
    assert_eq!(second.headers().get("x-cache"), Some("hit"));

    // Unknown objects pass the origin's 404 through.
    let missing = client.get(proxy.local_addr(), "/nope", None).unwrap();
    assert_eq!(missing.status(), StatusCode::NOT_FOUND);

    // Stats endpoint reflects the traffic.
    let stats = client.get(proxy.local_addr(), "/__stats", None).unwrap();
    let text = std::str::from_utf8(stats.body()).unwrap().to_owned();
    assert!(text.contains("hits=1"), "stats: {text}");
    assert!(text.contains("misses=2"), "stats: {text}");
}
