//! Adaptive overload control end to end: flash-crowd admission shedding
//! with partition isolation and preserved miss coalescing, the
//! double-death stale-retry path, and hot config swaps through
//! `PUT /admin/overload` — all on the deterministic in-process harness
//! (fake clock + scripted origin; see `harness/`).

mod harness;

use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use harness::{Behavior, FakeClock, ScriptedOrigin};
use mutcon_live::client::HttpClient;
use mutcon_live::proxy::{LiveProxy, ProxyConfig};
use mutcon_http::types::StatusCode;
use mutcon_sim::rng::SimRng;

/// A proxy in front of a scripted origin with an explicit reactor count
/// and no refresher rules.
fn plain_proxy(origin: &ScriptedOrigin, reactors: usize) -> LiveProxy {
    LiveProxy::start(ProxyConfig {
        reactors: Some(reactors),
        ..ProxyConfig::new(origin.addr())
    })
    .expect("start proxy")
}

/// Installs an overload config through the admin plane, asserting the
/// PUT is accepted.
fn put_overload(proxy: &LiveProxy, body: &str) {
    let client = HttpClient::new();
    let resp = client
        .put(proxy.local_addr(), "/admin/overload", body.as_bytes().to_vec())
        .expect("PUT /admin/overload");
    assert_eq!(
        resp.status(),
        StatusCode::OK,
        "install rejected: {}",
        String::from_utf8_lossy(resp.body())
    );
}

/// Waits (5 s cap) until `pred` holds.
fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + StdDuration::from_secs(5);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(StdDuration::from_millis(2));
    }
}

/// The acceptance scenario: a flash crowd — 100 simultaneous clients on
/// one cold key — against an admission limit of 2. Exactly the limit's
/// worth of requests are admitted (and coalesce onto ONE origin fetch);
/// everyone else gets a clean `429` + `Retry-After`; a request for a
/// different path-partition sails through while the hot partition is
/// saturated; and the shed counters surface in `/admin/stats`.
#[test]
fn flash_crowd_sheds_cleanly_and_still_coalesces() {
    const CLIENTS: usize = 100;
    const LIMIT: usize = 2;

    let clock = FakeClock::new();
    let origin = ScriptedOrigin::start(clock);
    origin.script("/hot/obj", vec![Behavior::Hold]);
    // One reactor: admission state and coalescing are per-reactor, and
    // this test asserts the exact per-reactor guarantee.
    let proxy = plain_proxy(&origin, 1);
    let addr = proxy.local_addr();

    // Admission on: at most 2 in flight per partition (min=max pins the
    // limit so the algorithm cannot adapt it mid-test).
    put_overload(&proxy, &format!("admission=aimd:min={LIMIT},max={LIMIT}\n"));

    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let readers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let client = HttpClient::with_timeout(StdDuration::from_secs(10));
                barrier.wait();
                let resp = client
                    .get(addr, "/hot/obj", None)
                    .unwrap_or_else(|e| panic!("client {i}: {e}"));
                let retry_after = resp.headers().get("retry-after").map(str::to_owned);
                (resp.status(), retry_after)
            })
        })
        .collect();

    // The admitted requests are parked on the held origin fetch; all
    // other requests must shed. Once shed + admitted accounts for every
    // client, the crowd has fully arrived.
    origin.wait_for_held(1);
    wait_until("the crowd to shed", || {
        proxy.overload().shed() as usize == CLIENTS - LIMIT
    });

    // Partition isolation: the hot partition is saturated, but a
    // request in another partition is admitted and served.
    let bystander = HttpClient::with_timeout(StdDuration::from_secs(10));
    let cold = bystander.get(addr, "/cold/obj", None).expect("cold partition");
    assert_eq!(
        cold.status(),
        StatusCode::OK,
        "a saturated hot partition must not starve the others"
    );

    origin.release_all();
    let mut ok = 0usize;
    let mut shed = 0usize;
    for reader in readers {
        let (status, retry_after) = reader.join().expect("reader panicked");
        match status {
            StatusCode::OK => ok += 1,
            StatusCode::TOO_MANY_REQUESTS => {
                shed += 1;
                assert_eq!(retry_after.as_deref(), Some("1"), "shed without Retry-After");
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert_eq!(ok, LIMIT, "exactly the admission limit's worth succeed");
    assert_eq!(shed, CLIENTS - LIMIT);
    assert_eq!(proxy.overload().shed() as usize, shed);

    // Miss coalescing survived admission: the admitted requests shared
    // ONE origin fetch.
    assert_eq!(
        origin.fetches("/hot/obj"),
        1,
        "admitted flash-crowd misses must still coalesce; log: {:?}",
        origin.log()
    );

    // The counters and the hot partition's state surface in the stats
    // plane (published by the reactor between loop turns).
    let client = HttpClient::new();
    wait_until("the stats plane to show the shed partition", || {
        let resp = client.get(addr, "/admin/stats", None).expect("stats");
        let text = String::from_utf8_lossy(resp.body()).into_owned();
        text.contains("\"overload\"") && text.contains("\"/hot\"")
    });

    // Hot-swap admission off: the previously shed path now flows
    // freely (served from cache after the fetch).
    put_overload(&proxy, "admission=off\n");
    let before = proxy.overload().shed();
    for _ in 0..10 {
        let resp = client.get(addr, "/hot/obj", None).expect("after off");
        assert_eq!(resp.status(), StatusCode::OK);
    }
    assert_eq!(proxy.overload().shed(), before, "admission off must not shed");
}

/// Satellite regression: the double-death case of the one-shot
/// stale-socket retry. A reused pooled connection dies before its first
/// response byte (the origin silently closed it while parked) and the
/// retry's fresh connection *also* dies pre-first-byte. The waiter must
/// get a prompt, clean error — never a stall. Seeded delays vary the
/// reap-vs-reuse race reproducibly; recovery is asserted every round.
#[test]
fn double_death_fails_fast_with_a_clean_error() {
    let mut rng = SimRng::seed_from_u64(0xDEAD_2);
    for round in 0..8 {
        let origin = ScriptedOrigin::start(FakeClock::new());
        // Seed the pool with a connection the origin then silently
        // closes (stale while parked)...
        origin.script("/warm", vec![Behavior::SilentClose]);
        // ...and make the origin kill the next fetch's connection before
        // writing a single byte. If the stale socket is reused first,
        // this rejection lands on the one-shot retry's fresh socket —
        // the double death. If the reactor reaped the EOF already, the
        // rejection hits the first fresh socket (no retry budget:
        // served == 0). Either way: clean error, no stall.
        origin.script("/frail", vec![Behavior::Reject]);
        let proxy = plain_proxy(&origin, 1);
        let client = HttpClient::with_timeout(StdDuration::from_secs(10));

        let warm = client.get(proxy.local_addr(), "/warm", None).expect("warm");
        assert_eq!(warm.status(), StatusCode::OK, "round {round}");

        let delay_us = rng.uniform_u64(0, 3_000);
        std::thread::sleep(StdDuration::from_micros(delay_us));

        let started = Instant::now();
        let failed = client.get(proxy.local_addr(), "/frail", None).expect("response");
        assert_eq!(
            failed.status(),
            StatusCode::INTERNAL_SERVER_ERROR,
            "round {round} (delay {delay_us} µs): a double death must surface as a \
             clean error; log: {:?}",
            origin.log()
        );
        assert!(
            started.elapsed() < StdDuration::from_secs(5),
            "round {round}: the waiter stalled instead of failing fast"
        );

        // The pool recovered: the next miss opens fresh and succeeds.
        let after = client.get(proxy.local_addr(), "/frail", None).expect("recovery");
        assert_eq!(after.status(), StatusCode::OK, "round {round}: no recovery");
    }
}

/// `GET`/`PUT /admin/overload` round-trips the config text, rejects
/// invalid bodies without changing anything, and a pool-limiter install
/// shows up in the stats plane with the algorithm spec.
#[test]
fn overload_admin_round_trips_and_rejects_bad_bodies() {
    let origin = ScriptedOrigin::start(FakeClock::new());
    let proxy = plain_proxy(&origin, 1);
    let client = HttpClient::new();
    let addr = proxy.local_addr();

    // Defaults render with both limiters off.
    let resp = client.get(addr, "/admin/overload", None).expect("GET overload");
    assert_eq!(resp.status(), StatusCode::OK);
    let text = String::from_utf8_lossy(resp.body()).into_owned();
    assert!(text.contains("admission=off"), "{text}");
    assert!(text.contains("pool=off"), "{text}");

    // Install a pool limiter; the GET must echo the spec back.
    put_overload(&proxy, "pool=vegas\nretry_after_secs=3\n");
    let resp = client.get(addr, "/admin/overload", None).expect("GET overload");
    let text = String::from_utf8_lossy(resp.body()).into_owned();
    assert!(text.contains("pool=vegas:"), "{text}");
    assert!(text.contains("retry_after_secs=3"), "{text}");

    // A garbage PUT is rejected and changes nothing.
    let bad = client
        .put(addr, "/admin/overload", b"pool=tcp-bbr\n".to_vec())
        .expect("PUT bad overload");
    assert_eq!(bad.status(), StatusCode::BAD_REQUEST);
    let resp = client.get(addr, "/admin/overload", None).expect("GET overload");
    let text = String::from_utf8_lossy(resp.body()).into_owned();
    assert!(text.contains("pool=vegas:"), "rejected PUT must change nothing: {text}");

    // Traffic still flows, and the reactor's adopted pool limiter (with
    // its recorded fetch samples) surfaces in `/admin/stats`.
    let resp = client.get(addr, "/one", None).expect("one");
    assert_eq!(resp.status(), StatusCode::OK);
    wait_until("the pool limiter to surface in stats", || {
        let resp = client.get(addr, "/admin/stats", None).expect("stats");
        let text = String::from_utf8_lossy(resp.body()).into_owned();
        text.contains("\"algorithm\":\"vegas:") && text.contains("\"samples_ok\":1")
    });
}
