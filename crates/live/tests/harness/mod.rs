//! Deterministic in-process concurrency harness for the live proxy.
//!
//! Real sockets and real reactor threads are inherently racy; this
//! harness pins down everything *else* so concurrency scenarios either
//! have deterministic outcomes by construction or reproduce
//! bit-identically from a seed:
//!
//! * [`FakeClock`] — a shared logical clock in milliseconds. The
//!   scripted origin stamps every response from it, so "time" advances
//!   only when a scenario says so; trace replay and wall-clock jitter
//!   are out of the picture.
//! * [`ScriptedOrigin`] — a real TCP origin whose per-path behavior is
//!   scripted: serve, park the request behind a gate ([`Behavior::Hold`]),
//!   die mid-transfer, advertise `Connection: close`, or serve and then
//!   silently drop the socket (seeding the proxy's pool with a stale
//!   connection). It counts fetches per path and appends every
//!   observable action to an ordered event log.
//! * Seeded schedules — scenarios derive all choices (paths, op order,
//!   clock steps) from a `mutcon_sim::rng::SimRng` seed, so a failing
//!   run replays exactly.
//!
//! The origin intentionally uses one blocking thread per connection:
//! the *system under test* is the proxy's multi-reactor engine, and the
//! fixture must stay simple enough to be obviously correct.

// The harness is compiled once per test binary; not every binary uses
// every fixture helper.
#![allow(dead_code)]

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use bytes::BytesMut;
use mutcon_live::client::{validator_ms, X_LAST_MODIFIED_MS};
use mutcon_live::wire::{read_request, write_response};
use mutcon_http::message::{Request, Response};
use mutcon_http::types::{Method, StatusCode};

/// Base Unix-epoch-ish stamp for fake-clock time 0 (an arbitrary,
/// readable constant — determinism matters, the epoch does not).
pub const CLOCK_BASE_MS: u64 = 1_000_000_000_000;

/// A shared logical clock. Starts at 0 ms; only [`FakeClock::advance`]
/// moves it.
#[derive(Debug, Clone, Default)]
pub struct FakeClock(Arc<AtomicU64>);

impl FakeClock {
    /// A clock at 0 ms.
    pub fn new() -> FakeClock {
        FakeClock::default()
    }

    /// Current logical time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Moves time forward.
    pub fn advance(&self, ms: u64) {
        self.0.fetch_add(ms, Ordering::SeqCst);
    }

    /// The modification stamp the origin reports at the current time.
    pub fn stamp_ms(&self) -> u64 {
        CLOCK_BASE_MS + self.now_ms()
    }
}

/// What the scripted origin does with the next request for a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// `200 OK`, keep-alive, stamped from the fake clock.
    Serve,
    /// Park the request until [`ScriptedOrigin::release_all`], then
    /// serve normally. Lets a scenario hold N coalesced misses in
    /// flight at once.
    Hold,
    /// Write a partial response (head + truncated body) and drop the
    /// socket.
    DieMidTransfer,
    /// Serve with `Connection: close` (the proxy must not pool this
    /// socket).
    CloseAdvertised,
    /// Serve keep-alive, then silently drop the socket — the proxy may
    /// have already parked it, creating a stale pooled connection.
    SilentClose,
    /// Read the request, then close without writing a single byte — the
    /// pre-first-byte death a *fresh* connection can suffer (and the
    /// second death of the double-death scenario: a stale-socket retry
    /// whose replacement also dies).
    Reject,
}

struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

struct Inner {
    clock: FakeClock,
    /// Per-path queues of scripted behaviors; when a queue runs dry the
    /// path falls back to [`Behavior::Serve`].
    scripts: Mutex<HashMap<String, Vec<Behavior>>>,
    fetches: Mutex<HashMap<String, u64>>,
    /// Requests currently being served (high-water mark in
    /// `max_in_flight`) — the overlap gauge concurrency scenarios
    /// assert against.
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
    /// How many requests are currently parked behind the gate.
    held: AtomicU64,
    log: Mutex<Vec<String>>,
    gate: Gate,
    /// Live server-side sockets, for [`ScriptedOrigin::drop_connections`].
    conns: Mutex<Vec<TcpStream>>,
    accepted: AtomicU64,
    stop: Arc<AtomicBool>,
}

/// A scripted TCP origin. See the module docs.
pub struct ScriptedOrigin {
    addr: SocketAddr,
    inner: Arc<Inner>,
}

impl ScriptedOrigin {
    /// Starts the origin on an ephemeral localhost port.
    pub fn start(clock: FakeClock) -> ScriptedOrigin {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind scripted origin");
        let addr = listener.local_addr().expect("local addr");
        let inner = Arc::new(Inner {
            clock,
            scripts: Mutex::new(HashMap::new()),
            fetches: Mutex::new(HashMap::new()),
            in_flight: AtomicU64::new(0),
            max_in_flight: AtomicU64::new(0),
            held: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
            gate: Gate {
                open: Mutex::new(false),
                cv: Condvar::new(),
            },
            conns: Mutex::new(Vec::new()),
            accepted: AtomicU64::new(0),
            stop: Arc::new(AtomicBool::new(false)),
        });
        let accept_inner = Arc::clone(&inner);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_inner.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { break };
                accept_inner.accepted.fetch_add(1, Ordering::SeqCst);
                if let Ok(clone) = stream.try_clone() {
                    accept_inner.conns.lock().unwrap().push(clone);
                }
                let conn_inner = Arc::clone(&accept_inner);
                std::thread::spawn(move || serve_connection(stream, &conn_inner));
            }
        });
        ScriptedOrigin { addr, inner }
    }

    /// The origin's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Scripts the next behaviors for `path` (consumed in order; the
    /// path serves normally once the script runs dry).
    pub fn script(&self, path: &str, behaviors: Vec<Behavior>) {
        self.inner
            .scripts
            .lock()
            .unwrap()
            .insert(path.to_owned(), behaviors);
    }

    /// Opens the [`Behavior::Hold`] gate permanently, releasing every
    /// parked request.
    pub fn release_all(&self) {
        *self.inner.gate.open.lock().unwrap() = true;
        self.inner.gate.cv.notify_all();
    }

    /// How many requests are currently parked behind the gate.
    pub fn held(&self) -> u64 {
        self.inner.held.load(Ordering::SeqCst)
    }

    /// Blocks until at least `n` requests are parked behind the gate
    /// (5 s cap so a broken scenario fails loudly instead of hanging).
    pub fn wait_for_held(&self, n: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while self.held() < n {
            assert!(
                std::time::Instant::now() < deadline,
                "gate never saw {n} held request(s); held = {}",
                self.held()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Origin fetches observed for `path`.
    pub fn fetches(&self, path: &str) -> u64 {
        self.inner
            .fetches
            .lock()
            .unwrap()
            .get(path)
            .copied()
            .unwrap_or(0)
    }

    /// Total connections the origin accepted.
    pub fn accepted(&self) -> u64 {
        self.inner.accepted.load(Ordering::SeqCst)
    }

    /// The most requests this origin ever served simultaneously — the
    /// proof (or refutation) that a client overlapped its requests.
    pub fn max_concurrent(&self) -> u64 {
        self.inner.max_in_flight.load(Ordering::SeqCst)
    }

    /// The ordered event log ("fetch /x #1", "die /x", …).
    pub fn log(&self) -> Vec<String> {
        self.inner.log.lock().unwrap().clone()
    }

    /// Forcibly drops every established connection (origin restart /
    /// idle-socket cull): pooled proxy sockets go stale.
    pub fn drop_connections(&self) {
        let mut conns = self.inner.conns.lock().unwrap();
        for conn in conns.drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for ScriptedOrigin {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.release_all();
        self.drop_connections();
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
    }
}

impl std::fmt::Debug for ScriptedOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedOrigin").field("addr", &self.addr).finish()
    }
}

/// One blocking connection loop on the origin side.
fn serve_connection(mut stream: TcpStream, inner: &Inner) {
    let _ = stream.set_nodelay(true);
    let mut buf = BytesMut::new();
    loop {
        let request = match read_request(&mut stream, &mut buf) {
            Ok(Some(request)) => request,
            Ok(None) | Err(_) => return, // peer done (or harness killed us)
        };
        let keep_going = serve_request(&mut stream, inner, &request);
        if !keep_going {
            return;
        }
    }
}

/// Handles one request; returns whether the connection continues.
fn serve_request(stream: &mut TcpStream, inner: &Inner, request: &Request) -> bool {
    let path = request.target().to_owned();
    if request.method() != &Method::Get {
        let resp = Response::builder(StatusCode::METHOD_NOT_ALLOWED).build();
        return write_response(stream, &resp).is_ok();
    }

    let fetch_no = {
        let mut fetches = inner.fetches.lock().unwrap();
        let n = fetches.entry(path.clone()).or_insert(0);
        *n += 1;
        *n
    };
    inner.log.lock().unwrap().push(format!("fetch {path} #{fetch_no}"));

    // Overlap gauge: count this request as in flight until the function
    // returns, whichever exit path it takes.
    struct InFlight<'a>(&'a AtomicU64);
    impl Drop for InFlight<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let now_in_flight = inner.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
    inner.max_in_flight.fetch_max(now_in_flight, Ordering::SeqCst);
    let _in_flight = InFlight(&inner.in_flight);

    let behavior = {
        let mut scripts = inner.scripts.lock().unwrap();
        match scripts.get_mut(&path) {
            Some(queue) if !queue.is_empty() => queue.remove(0),
            _ => Behavior::Serve,
        }
    };

    if behavior == Behavior::Hold {
        inner.held.fetch_add(1, Ordering::SeqCst);
        let mut open = inner.gate.open.lock().unwrap();
        while !*open {
            let (guard, timeout) = inner
                .gate
                .cv
                .wait_timeout(open, Duration::from_secs(10))
                .unwrap();
            open = guard;
            if timeout.timed_out() {
                break; // broken scenario; serve anyway so nothing hangs
            }
        }
        drop(open);
        inner.held.fetch_sub(1, Ordering::SeqCst);
        inner.log.lock().unwrap().push(format!("release {path}"));
    }

    if behavior == Behavior::Reject {
        inner.log.lock().unwrap().push(format!("reject {path}"));
        // No response bytes at all: an explicit shutdown delivers the
        // EOF even though the connection registry clones the socket.
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return false;
    }

    if behavior == Behavior::DieMidTransfer {
        inner.log.lock().unwrap().push(format!("die {path}"));
        // A plausible head, then far fewer body bytes than promised.
        let _ = stream.write_all(
            b"HTTP/1.1 200 OK\r\ncontent-length: 4096\r\nconnection: keep-alive\r\n\r\ntruncated",
        );
        let _ = stream.flush();
        // An explicit shutdown (not just a drop): the connection
        // registry holds a clone of this socket, so only a shutdown
        // actually delivers the EOF to the peer.
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return false;
    }

    let stamp = inner.clock.stamp_ms();
    let body = format!("path={path} stamp={stamp}\n");
    let mut builder = Response::ok()
        .header(X_LAST_MODIFIED_MS, stamp.to_string())
        .body(body.into_bytes());
    builder = match behavior {
        Behavior::CloseAdvertised => builder.connection_close(),
        _ => builder.keep_alive(),
    };

    // Conditional serving on the fake-clock timeline.
    let response = match validator_ms(request) {
        Some(v) if v.as_millis() >= stamp => Response::not_modified()
            .header(X_LAST_MODIFIED_MS, stamp.to_string())
            .keep_alive()
            .build(),
        _ => builder.build(),
    };
    if write_response(stream, &response).is_err() {
        return false;
    }
    match behavior {
        Behavior::CloseAdvertised => {
            inner.log.lock().unwrap().push(format!("close {path}"));
            // See DieMidTransfer: shutdown, because a clone of the
            // socket lives in the connection registry.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            false
        }
        Behavior::SilentClose => {
            inner.log.lock().unwrap().push(format!("silent-close {path}"));
            let _ = stream.shutdown(std::net::Shutdown::Both);
            false
        }
        _ => true,
    }
}

/// Extracts the origin stamp from a proxied response (the harness
/// always sets the millisecond extension header).
pub fn stamp_of(response: &Response) -> u64 {
    response
        .headers()
        .get(X_LAST_MODIFIED_MS)
        .and_then(|v| v.trim().parse().ok())
        .expect("harness responses carry x-last-modified-ms")
}
