// Property tests require the external `proptest` crate, which is not
// vendored in this offline workspace; enable with `--features proptests`
// in an environment that can reach a cargo registry.
#![cfg(feature = "proptests")]
//! Property-based tests of the full simulation pipeline: random workloads
//! through the drivers and the ground-truth metrics.

use proptest::prelude::*;

use mutcon_core::limd::LimdConfig;
use mutcon_core::mutual::temporal::MtPolicy;
use mutcon_core::object::ObjectId;
use mutcon_core::time::Duration;
use mutcon_proxy::drivers::{run_temporal, MutualSetup, TemporalPolicy, TemporalSimConfig};
use mutcon_proxy::metrics;
use mutcon_proxy::origin::OriginServer;
use mutcon_traces::generator::NewsTraceBuilder;
use mutcon_traces::UpdateTrace;

fn random_trace(name: &str, seed: u64, updates: usize) -> UpdateTrace {
    NewsTraceBuilder::new(name, Duration::from_hours(8), updates)
        .seed(seed)
        .build()
        .expect("valid generator parameters")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LIMD on a random workload: fidelities in range, out-of-sync time
    /// bounded by the window, polls bounded by the every-ttr_min maximum,
    /// and the whole pipeline deterministic.
    #[test]
    fn limd_pipeline_invariants(
        seed in any::<u64>(),
        updates in 0usize..150,
        delta_min in 1u64..40,
    ) {
        let trace = random_trace("obj", seed, updates);
        let id = ObjectId::new("obj");
        let mut origin = OriginServer::new();
        origin.host(id.clone(), trace.clone());
        let delta = Duration::from_mins(delta_min);
        let config = TemporalSimConfig {
            policy: TemporalPolicy::Limd(
                LimdConfig::builder(delta)
                    .ttr_max(Duration::from_mins(60).max(delta))
                    .build()
                    .expect("valid LIMD parameters"),
            ),
            mutual: None,
            until: trace.end(),
        };
        let out = run_temporal(&origin, std::slice::from_ref(&id), &config);
        let log = &out.logs[&id];
        // Poll budget: one initial poll plus at most one per ttr_min.
        let max_polls = 2 + trace.duration().as_millis() / delta.as_millis();
        prop_assert!(log.poll_count() <= max_polls);
        // Poll log is time-ordered within the window.
        for r in log.records() {
            prop_assert!(r.at <= trace.end());
        }
        let stats = metrics::individual_temporal(&trace, log, delta, trace.end());
        prop_assert!((0.0..=1.0).contains(&stats.fidelity_by_violations()));
        prop_assert!((0.0..=1.0).contains(&stats.fidelity_by_time()));
        prop_assert!(stats.out_of_sync() <= stats.observed());
        prop_assert!(stats.violations() <= stats.polls());
        // Determinism.
        let again = run_temporal(&origin, std::slice::from_ref(&id), &config);
        prop_assert_eq!(&again.logs[&id], log);
    }

    /// The paper's headline property: LIMD + triggered polls delivers
    /// perfect Mt fidelity on ANY pair of workloads and any δ.
    #[test]
    fn triggered_polls_always_perfect_fidelity(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        updates_a in 1usize..120,
        updates_b in 1usize..120,
        mutual_delta_min in 0u64..30,
    ) {
        let trace_a = random_trace("a", seed_a, updates_a);
        let trace_b = random_trace("b", seed_b, updates_b);
        let ids = [ObjectId::new("a"), ObjectId::new("b")];
        let mut origin = OriginServer::new();
        origin.host(ids[0].clone(), trace_a.clone());
        origin.host(ids[1].clone(), trace_b.clone());
        let until = trace_a.end().min(trace_b.end());
        let mutual_delta = Duration::from_mins(mutual_delta_min);

        let out = run_temporal(
            &origin,
            &ids,
            &TemporalSimConfig {
                policy: TemporalPolicy::Limd(
                    LimdConfig::builder(Duration::from_mins(10))
                        .ttr_max(Duration::from_mins(60))
                        .build()
                        .expect("valid LIMD parameters"),
                ),
                mutual: Some(MutualSetup {
                    delta: mutual_delta,
                    policy: MtPolicy::TriggeredPolls,
                }),
                until,
            },
        );
        let stats = metrics::mutual_temporal(
            &trace_a, &out.logs[&ids[0]], &trace_b, &out.logs[&ids[1]],
            mutual_delta, until,
        );
        prop_assert_eq!(
            stats.violations(), 0,
            "triggered polls let {} violations through (δ = {})",
            stats.violations(), mutual_delta
        );
        prop_assert_eq!(stats.fidelity_by_violations(), 1.0);
    }

    /// The every-Δ baseline never misses by more than rounding: its
    /// ground-truth violation fidelity is 1 on any workload.
    #[test]
    fn periodic_baseline_is_perfect(
        seed in any::<u64>(),
        updates in 0usize..150,
        delta_min in 1u64..30,
    ) {
        let trace = random_trace("obj", seed, updates);
        let id = ObjectId::new("obj");
        let mut origin = OriginServer::new();
        origin.host(id.clone(), trace.clone());
        let delta = Duration::from_mins(delta_min);
        let out = run_temporal(
            &origin,
            std::slice::from_ref(&id),
            &TemporalSimConfig {
                policy: TemporalPolicy::Periodic(delta),
                mutual: None,
                until: trace.end(),
            },
        );
        let stats = metrics::individual_temporal(&trace, &out.logs[&id], delta, trace.end());
        prop_assert_eq!(stats.violations(), 0);
        prop_assert_eq!(stats.out_of_sync(), Duration::ZERO);
    }
}
