//! Parameter sweeps regenerating the paper's figures (§6.2).
//!
//! Each function reproduces one figure's data series:
//!
//! | Function | Figure | Content |
//! |---|---|---|
//! | [`individual_temporal_sweep`] | 3(a–c) | LIMD vs baseline polls & fidelity across Δ |
//! | [`ttr_timeline`] | 4(a–b) | update frequency and LIMD TTR over time |
//! | [`mutual_temporal_sweep`] | 5(a–b) | baseline/triggered/heuristic polls & fidelity across δ |
//! | [`heuristic_timeline`] | 6(a–b) | update-rate ratio and extra polls over time |
//! | [`mutual_value_sweep`] | 7(a–b) | adaptive vs partitioned polls & fidelity across δ |
//! | [`value_timeline`] | 8(a–b) | `f` at proxy vs server over a window |
//!
//! Absolute numbers differ from the 2001 paper (the traces are calibrated
//! synthetics), but the comparative shapes are the reproduction target;
//! `EXPERIMENTS.md` records both.
//!
//! # Parallel sweep engine
//!
//! Every sweep in this module is a grid of *independent* simulation runs
//! (each run owns its event queue and all per-object state), so the
//! sweeps fan their runs out across cores with
//! [`mutcon_sim::parallel::run_all`]. Outputs are collected in input
//! order and stitched back into rows, which makes the parallel result
//! **bit-for-bit identical** to a serial run — set `MUTCON_THREADS=1` to
//! force the serial reference path (the determinism tests do exactly
//! that).

use mutcon_core::functions::ValueFunction;
use mutcon_core::limd::{DecreaseFactor, LimdConfig};
use mutcon_core::mutual::temporal::MtPolicy;
use mutcon_core::mutual::value::{PartitionedConfig, VirtualObjectConfig};
use mutcon_core::object::ObjectId;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;
use mutcon_sim::parallel::run_all;
use mutcon_traces::stats::{rate_ratio_timeline, updates_per_window, WindowCount};
use mutcon_traces::UpdateTrace;

use crate::drivers::{
    run_temporal, run_value_pair, MutualSetup, TemporalPolicy, TemporalSimConfig,
    TemporalSimOutput, ValuePairPolicy,
};
use crate::metrics;
use crate::metrics::FPoint;
use crate::origin::{HistorySupport, OriginServer};

/// LIMD tuning shared by the temporal experiments (§6.2.1 parameters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Config {
    /// Linear increase factor `l` (paper: 0.2).
    pub linear_increase: f64,
    /// Fine-tuning factor `ε` (paper: 0.02).
    pub epsilon: f64,
    /// Upper TTR bound (paper: 60 minutes).
    pub ttr_max: Duration,
    /// Multiplicative decrease rule (paper: Δ over observed out-of-sync).
    pub decrease: DecreaseFactor,
    /// Whether the origin provides the §5.1 modification history.
    pub history: HistorySupport,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            linear_increase: 0.2,
            epsilon: 0.02,
            ttr_max: Duration::from_mins(60),
            decrease: DecreaseFactor::PAPER,
            history: HistorySupport::None,
        }
    }
}

impl Fig3Config {
    fn limd(&self, delta: Duration) -> LimdConfig {
        LimdConfig::builder(delta)
            .linear_increase(self.linear_increase)
            .epsilon(self.epsilon)
            .ttr_max(self.ttr_max.max(delta))
            .decrease(self.decrease)
            .build()
            .expect("experiment parameters are valid")
    }
}

/// One Δ of the Figure 3 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Row {
    /// The Δt tolerance.
    pub delta: Duration,
    /// Polls of the every-Δ baseline.
    pub baseline_polls: u64,
    /// Ground-truth fidelity (violations) of the baseline (≈ 1).
    pub baseline_fidelity: f64,
    /// Polls of LIMD.
    pub limd_polls: u64,
    /// LIMD fidelity by violations (Equation 13) — Figure 3(b).
    pub limd_fidelity_violations: f64,
    /// LIMD fidelity by out-of-sync time (Equation 14) — Figure 3(c).
    pub limd_fidelity_time: f64,
}

fn host(trace: &UpdateTrace, history: HistorySupport) -> (OriginServer, ObjectId) {
    let id = ObjectId::new(trace.name());
    let mut origin = OriginServer::new().with_history(history);
    origin.host(id.clone(), trace.clone());
    (origin, id)
}

/// Figure 3: LIMD versus the every-Δ baseline on one trace, for each Δ.
///
/// The 2·|Δ grid| runs are independent and fan out across cores; rows
/// come back in Δ order regardless of scheduling.
pub fn individual_temporal_sweep(
    trace: &UpdateTrace,
    deltas: &[Duration],
    config: &Fig3Config,
) -> Vec<Fig3Row> {
    let (origin, id) = host(trace, config.history);
    let until = trace.end();

    // One job per (Δ, policy) pair, so the expensive small-Δ baseline
    // runs do not serialize behind each other.
    let jobs: Vec<(Duration, bool)> = deltas
        .iter()
        .flat_map(|&delta| [(delta, false), (delta, true)])
        .collect();
    let stats = run_all(jobs, |(delta, is_limd)| {
        let policy = if is_limd {
            TemporalPolicy::Limd(config.limd(delta))
        } else {
            TemporalPolicy::Periodic(delta)
        };
        let out = run_temporal(
            &origin,
            std::slice::from_ref(&id),
            &TemporalSimConfig {
                policy,
                mutual: None,
                until,
            },
        );
        metrics::individual_temporal(trace, &out.logs[&id], delta, until)
    });

    deltas
        .iter()
        .zip(stats.chunks_exact(2))
        .map(|(&delta, pair)| {
            let (base_stats, limd_stats) = (&pair[0], &pair[1]);
            Fig3Row {
                delta,
                baseline_polls: base_stats.polls(),
                baseline_fidelity: base_stats.fidelity_by_violations(),
                limd_polls: limd_stats.polls(),
                limd_fidelity_violations: limd_stats.fidelity_by_violations(),
                limd_fidelity_time: limd_stats.fidelity_by_time(),
            }
        })
        .collect()
}

/// Figure 4 data: windowed update counts and the LIMD TTR trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Output {
    /// Updates per window (Figure 4(a); the paper uses 2-hour windows).
    pub update_counts: Vec<WindowCount>,
    /// `(poll time, TTR chosen)` (Figure 4(b)).
    pub ttr: Vec<(Timestamp, Duration)>,
}

/// Figure 4: the adaptive behaviour of LIMD over one trace at a fixed Δ.
pub fn ttr_timeline(
    trace: &UpdateTrace,
    delta: Duration,
    window: Duration,
    config: &Fig3Config,
) -> Fig4Output {
    let (origin, id) = host(trace, config.history);
    let out = run_temporal(
        &origin,
        std::slice::from_ref(&id),
        &TemporalSimConfig {
            policy: TemporalPolicy::Limd(config.limd(delta)),
            mutual: None,
            until: trace.end(),
        },
    );
    Fig4Output {
        update_counts: updates_per_window(trace, window),
        ttr: out.ttr_timeline[&id].clone(),
    }
}

/// Poll count and fidelity of one mutual-consistency policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyResult {
    /// Total polls across the pair.
    pub polls: u64,
    /// Mt fidelity by violations.
    pub fidelity: f64,
}

/// One δ of the Figure 5 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// The Mt tolerance δ.
    pub mutual_delta: Duration,
    /// Plain LIMD with no mutual support.
    pub baseline: PolicyResult,
    /// LIMD plus triggered polls.
    pub triggered: PolicyResult,
    /// LIMD plus the rate heuristic.
    pub heuristic: PolicyResult,
}

fn run_pair_policy(
    origin: &OriginServer,
    ids: &[ObjectId; 2],
    traces: [&UpdateTrace; 2],
    limd: LimdConfig,
    mutual: Option<MutualSetup>,
    mutual_delta: Duration,
    until: Timestamp,
) -> (PolicyResult, TemporalSimOutput) {
    let out = run_temporal(
        origin,
        ids,
        &TemporalSimConfig {
            policy: TemporalPolicy::Limd(limd),
            mutual,
            until,
        },
    );
    let stats = metrics::mutual_temporal(
        traces[0],
        &out.logs[&ids[0]],
        traces[1],
        &out.logs[&ids[1]],
        mutual_delta,
        until,
    );
    (
        PolicyResult {
            polls: stats.polls(),
            fidelity: stats.fidelity_by_violations(),
        },
        out,
    )
}

/// Figure 5: the three Mt approaches over a pair of traces across δ, at a
/// fixed individual Δ (the paper uses Δ = 10 minutes).
///
/// The 3·|δ grid| policy runs fan out across cores and are stitched back
/// in grid order.
pub fn mutual_temporal_sweep(
    trace_a: &UpdateTrace,
    trace_b: &UpdateTrace,
    delta: Duration,
    mutual_deltas: &[Duration],
    config: &Fig3Config,
) -> Vec<Fig5Row> {
    let ids = [ObjectId::new(trace_a.name()), ObjectId::new(trace_b.name())];
    let mut origin = OriginServer::new().with_history(config.history);
    origin.host(ids[0].clone(), trace_a.clone());
    origin.host(ids[1].clone(), trace_b.clone());
    let until = trace_a.end().min(trace_b.end());
    let limd = config.limd(delta);

    let policies: [Option<MtPolicy>; 3] = [
        None,
        Some(MtPolicy::TriggeredPolls),
        Some(MtPolicy::HEURISTIC),
    ];
    let jobs: Vec<(Duration, Option<MtPolicy>)> = mutual_deltas
        .iter()
        .flat_map(|&md| policies.map(|p| (md, p)))
        .collect();
    let results = run_all(jobs, |(md, policy)| {
        let mutual = policy.map(|policy| MutualSetup { delta: md, policy });
        let (result, _) =
            run_pair_policy(&origin, &ids, [trace_a, trace_b], limd, mutual, md, until);
        result
    });

    mutual_deltas
        .iter()
        .zip(results.chunks_exact(3))
        .map(|(&md, chunk)| Fig5Row {
            mutual_delta: md,
            baseline: chunk[0],
            triggered: chunk[1],
            heuristic: chunk[2],
        })
        .collect()
}

/// Figure 6 data: update-rate ratio and coordinator-triggered extra polls
/// per window.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Output {
    /// Ratio of the two traces' windowed update counts (Figure 6(a)).
    pub rate_ratio: Vec<(Timestamp, Option<f64>)>,
    /// Extra (triggered) polls per window (Figure 6(b)).
    pub extra_polls: Vec<WindowCount>,
}

/// Figure 6: the heuristic's adaptivity over a pair of traces.
pub fn heuristic_timeline(
    trace_a: &UpdateTrace,
    trace_b: &UpdateTrace,
    delta: Duration,
    mutual_delta: Duration,
    window: Duration,
    config: &Fig3Config,
) -> Fig6Output {
    let ids = [ObjectId::new(trace_a.name()), ObjectId::new(trace_b.name())];
    let mut origin = OriginServer::new().with_history(config.history);
    origin.host(ids[0].clone(), trace_a.clone());
    origin.host(ids[1].clone(), trace_b.clone());
    let until = trace_a.end().min(trace_b.end());

    let out = run_temporal(
        &origin,
        &ids,
        &TemporalSimConfig {
            policy: TemporalPolicy::Limd(config.limd(delta)),
            mutual: Some(MutualSetup {
                delta: mutual_delta,
                policy: MtPolicy::HEURISTIC,
            }),
            until,
        },
    );

    // Bucket triggered-poll instants into windows.
    let mut extra_polls = Vec::new();
    let mut cursor = Timestamp::ZERO;
    while cursor < until {
        let end = (cursor + window).min(until);
        let count = out
            .triggered_instants
            .iter()
            .filter(|&&t| t >= cursor && t < end)
            .count() as u32;
        extra_polls.push(WindowCount {
            start: cursor,
            count,
        });
        cursor = end;
    }

    Fig6Output {
        rate_ratio: rate_ratio_timeline(trace_a, trace_b, window),
        extra_polls,
    }
}

/// Adaptive-TTR tuning for the value-domain experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Config {
    /// Smoothing weight `w`.
    pub smoothing: f64,
    /// Blend factor `α` (Equation 10).
    pub alpha: f64,
    /// Lower TTR bound.
    pub ttr_min: Duration,
    /// Upper TTR bound.
    pub ttr_max: Duration,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            smoothing: 0.5,
            alpha: 0.5,
            ttr_min: Duration::from_secs(10),
            ttr_max: Duration::from_mins(10),
        }
    }
}

/// One δ of the Figure 7 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Row {
    /// The Mv tolerance δ (dollars, for the stock workloads).
    pub delta: Value,
    /// Polls of the virtual-object (adaptive) approach.
    pub adaptive_polls: u64,
    /// Mv fidelity of the adaptive approach.
    pub adaptive_fidelity: f64,
    /// Polls of the partitioned approach.
    pub partitioned_polls: u64,
    /// Mv fidelity of the partitioned approach.
    pub partitioned_fidelity: f64,
}

/// Figure 7: adaptive versus partitioned Mv-consistency over a pair of
/// valued traces, for each δ (the function is the difference, as in the
/// paper's stock-comparison scenario).
pub fn mutual_value_sweep(
    trace_a: &UpdateTrace,
    trace_b: &UpdateTrace,
    deltas: &[Value],
    config: &Fig7Config,
) -> Vec<Fig7Row> {
    let ids = [ObjectId::new(trace_a.name()), ObjectId::new(trace_b.name())];
    let mut origin = OriginServer::new();
    origin.host(ids[0].clone(), trace_a.clone());
    origin.host(ids[1].clone(), trace_b.clone());
    let until = trace_a.end().min(trace_b.end());
    let f = ValueFunction::Difference;

    // One job per (δ, approach) pair, fanned out across cores.
    let jobs: Vec<(Value, bool)> = deltas
        .iter()
        .flat_map(|&delta| [(delta, false), (delta, true)])
        .collect();
    let stats = run_all(jobs, |(delta, partitioned)| {
        let policy = if partitioned {
            ValuePairPolicy::Partitioned(
                PartitionedConfig::builder(f, delta)
                    .smoothing(config.smoothing)
                    .alpha(config.alpha)
                    .ttr_bounds(config.ttr_min, config.ttr_max)
                    .build()
                    .expect("experiment parameters are valid"),
            )
        } else {
            ValuePairPolicy::Virtual(
                VirtualObjectConfig::builder(f, delta)
                    .smoothing(config.smoothing)
                    .alpha(config.alpha)
                    .ttr_bounds(config.ttr_min, config.ttr_max)
                    .build()
                    .expect("experiment parameters are valid"),
            )
        };
        let out = run_value_pair(&origin, &ids[0], &ids[1], &policy, until);
        metrics::mutual_value(trace_a, &out.log_a, trace_b, &out.log_b, f, delta, until)
    });

    deltas
        .iter()
        .zip(stats.chunks_exact(2))
        .map(|(&delta, pair)| {
            let (adaptive_stats, partitioned_stats) = (&pair[0], &pair[1]);
            Fig7Row {
                delta,
                adaptive_polls: adaptive_stats.polls(),
                adaptive_fidelity: adaptive_stats.fidelity_by_violations(),
                partitioned_polls: partitioned_stats.polls(),
                partitioned_fidelity: partitioned_stats.fidelity_by_violations(),
            }
        })
        .collect()
}

/// Figure 8 data: the `f` step functions under both approaches.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Output {
    /// Server-vs-proxy `f` under the virtual-object approach.
    pub adaptive: Vec<FPoint>,
    /// Server-vs-proxy `f` under the partitioned approach.
    pub partitioned: Vec<FPoint>,
}

/// Figure 8: how closely each approach tracks `f` at the server within a
/// time window (the paper shows 2500–5000 s at δ = $0.6).
pub fn value_timeline(
    trace_a: &UpdateTrace,
    trace_b: &UpdateTrace,
    delta: Value,
    from: Timestamp,
    to: Timestamp,
    config: &Fig7Config,
) -> Fig8Output {
    let ids = [ObjectId::new(trace_a.name()), ObjectId::new(trace_b.name())];
    let mut origin = OriginServer::new();
    origin.host(ids[0].clone(), trace_a.clone());
    origin.host(ids[1].clone(), trace_b.clone());
    let until = trace_a.end().min(trace_b.end());
    let f = ValueFunction::Difference;

    let virtual_cfg = VirtualObjectConfig::builder(f, delta)
        .smoothing(config.smoothing)
        .alpha(config.alpha)
        .ttr_bounds(config.ttr_min, config.ttr_max)
        .build()
        .expect("experiment parameters are valid");
    let partitioned_cfg = PartitionedConfig::builder(f, delta)
        .smoothing(config.smoothing)
        .alpha(config.alpha)
        .ttr_bounds(config.ttr_min, config.ttr_max)
        .build()
        .expect("experiment parameters are valid");
    let policies = vec![
        ValuePairPolicy::Virtual(virtual_cfg),
        ValuePairPolicy::Partitioned(partitioned_cfg),
    ];
    let mut outputs = run_all(policies, |policy| {
        run_value_pair(&origin, &ids[0], &ids[1], &policy, until)
    });
    let partitioned = outputs.pop().expect("two runs");
    let adaptive = outputs.pop().expect("two runs");

    Fig8Output {
        adaptive: metrics::f_timeline(trace_a, &adaptive.log_a, trace_b, &adaptive.log_b, f, from, to),
        partitioned: metrics::f_timeline(
            trace_a,
            &partitioned.log_a,
            trace_b,
            &partitioned.log_b,
            f,
            from,
            to,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_traces::generator::{NewsTraceBuilder, StockTraceBuilder};

    /// Small, fast traces for experiment smoke tests.
    fn small_news(name: &str, updates: usize, seed: u64) -> UpdateTrace {
        NewsTraceBuilder::new(name, Duration::from_hours(12), updates)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn small_stock(name: &str, updates: usize, lo: f64, hi: f64, seed: u64) -> UpdateTrace {
        StockTraceBuilder::new(name, Duration::from_mins(60), updates, lo, hi)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn fig3_limd_saves_polls_at_small_delta() {
        let trace = small_news("n", 30, 1);
        let deltas = [Duration::from_mins(1), Duration::from_mins(30)];
        let rows = individual_temporal_sweep(&trace, &deltas, &Fig3Config::default());
        assert_eq!(rows.len(), 2);
        // Small Δ (1 min) ≪ mean gap (24 min): LIMD must poll far less.
        assert!(rows[0].limd_polls * 2 < rows[0].baseline_polls);
        // Baseline fidelity ≈ 1 by construction.
        assert!(rows[0].baseline_fidelity > 0.99);
        // Larger Δ → fewer baseline polls.
        assert!(rows[1].baseline_polls < rows[0].baseline_polls);
        // Fidelities are probabilities.
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.limd_fidelity_violations));
            assert!((0.0..=1.0).contains(&r.limd_fidelity_time));
        }
    }

    #[test]
    fn fig4_timelines_cover_trace() {
        let trace = small_news("n", 40, 2);
        let out = ttr_timeline(
            &trace,
            Duration::from_mins(10),
            Duration::from_hours(2),
            &Fig3Config::default(),
        );
        assert_eq!(out.update_counts.len(), 6); // 12 h / 2 h
        let total: u32 = out.update_counts.iter().map(|w| w.count).sum();
        assert_eq!(total as usize, trace.update_count());
        assert!(!out.ttr.is_empty());
        // TTRs respect the configured bounds.
        for (_, ttr) in &out.ttr {
            assert!(*ttr >= Duration::from_mins(10));
            assert!(*ttr <= Duration::from_mins(60));
        }
    }

    #[test]
    fn fig5_policy_ordering_holds() {
        let a = small_news("a", 60, 3);
        let b = small_news("b", 40, 4);
        let rows = mutual_temporal_sweep(
            &a,
            &b,
            Duration::from_mins(10),
            &[Duration::from_mins(1), Duration::from_mins(15)],
            &Fig3Config::default(),
        );
        for row in &rows {
            // Triggered polls at least as many as baseline; heuristic between.
            assert!(row.triggered.polls >= row.baseline.polls);
            assert!(row.heuristic.polls >= row.baseline.polls);
            assert!(row.triggered.polls >= row.heuristic.polls);
            // Triggered polls give perfect mutual fidelity.
            assert!(
                row.triggered.fidelity > 0.999,
                "triggered fidelity {} at δ={}",
                row.triggered.fidelity,
                row.mutual_delta
            );
            // Baseline is never better than the coordinated policies.
            assert!(row.baseline.fidelity <= row.triggered.fidelity + 1e-9);
        }
    }

    #[test]
    fn fig6_extra_polls_are_bucketed() {
        let a = small_news("a", 80, 5);
        let b = small_news("b", 20, 6);
        let out = heuristic_timeline(
            &a,
            &b,
            Duration::from_mins(10),
            Duration::from_mins(2),
            Duration::from_hours(2),
            &Fig3Config::default(),
        );
        assert_eq!(out.extra_polls.len(), 6);
        assert_eq!(out.rate_ratio.len(), 6);
    }

    #[test]
    fn fig7_partitioned_trades_polls_for_fidelity() {
        let a = small_stock("a", 100, 35.8, 36.5, 7);
        let b = small_stock("b", 300, 160.2, 171.2, 8);
        let rows = mutual_value_sweep(
            &a,
            &b,
            &[Value::new(0.5), Value::new(5.0)],
            &Fig7Config::default(),
        );
        // Looser δ → fewer polls for both approaches.
        assert!(rows[1].adaptive_polls <= rows[0].adaptive_polls);
        assert!(rows[1].partitioned_polls <= rows[0].partitioned_polls);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.adaptive_fidelity));
            assert!((0.0..=1.0).contains(&r.partitioned_fidelity));
        }
    }

    #[test]
    fn fig8_proxy_tracks_server() {
        // As in the paper: f = (high-priced stock) − (low-priced stock).
        let a = small_stock("a", 300, 160.2, 171.2, 10);
        let b = small_stock("b", 100, 35.8, 36.5, 9);
        let out = value_timeline(
            &a,
            &b,
            Value::new(0.6),
            Timestamp::from_secs(600),
            Timestamp::from_secs(1_800),
            &Fig7Config::default(),
        );
        assert!(!out.adaptive.is_empty());
        assert!(!out.partitioned.is_empty());
        for p in out.adaptive.iter().chain(&out.partitioned) {
            assert!(p.at >= Timestamp::from_secs(600));
            assert!(p.at <= Timestamp::from_secs(1_800));
            // f stays within the band implied by the two price ranges.
            assert!(p.server > 123.0 && p.server < 136.0, "f_server = {}", p.server);
        }
    }
}
