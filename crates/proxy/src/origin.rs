//! The trace-driven origin server.
//!
//! An [`OriginServer`] hosts a set of objects, each backed by an
//! [`UpdateTrace`] (its complete update history). Polling it behaves like
//! an `If-Modified-Since` request against a real HTTP origin: the
//! response reflects the object's state *at the poll instant*, reports
//! `Not Modified` when nothing changed since the validator, and — when
//! the §5.1 extension is enabled — attaches the modification history the
//! proxy needs for exact violation detection.

use std::collections::BTreeMap;
use std::fmt;

use mutcon_core::limd::PollView;
use mutcon_core::object::ObjectId;
use mutcon_core::time::Timestamp;
use mutcon_core::value::Value;
use mutcon_traces::UpdateTrace;

/// Whether the origin implements the §5.1 modification-history extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistorySupport {
    /// Plain HTTP/1.1: only `Last-Modified` is reported.
    #[default]
    None,
    /// The origin attaches all update instants since the request's
    /// validator (`X-Modification-History`).
    Full,
}

/// What a poll returned.
///
/// The modification history is a slice *borrowed from the hosted trace*
/// (valid for as long as the origin lives): servicing a poll allocates
/// nothing, which matters when the experiment engine simulates hundreds
/// of thousands of polls per sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OriginResponse<'a> {
    /// `true` for a `304 Not Modified` (nothing newer than the validator).
    pub not_modified: bool,
    /// Index of the version current at the poll instant.
    pub version_index: usize,
    /// That version's creation time (`Last-Modified`).
    pub last_modified: Timestamp,
    /// That version's value, for value-bearing objects.
    pub value: Option<Value>,
    /// Update instants since the validator (oldest first), when the
    /// history extension is on and the response is a full one.
    pub history: Option<&'a [Timestamp]>,
}

impl OriginResponse<'_> {
    /// This response's outcome as a borrowed [`PollView`] for the
    /// consistency algorithms.
    pub fn as_view(&self) -> PollView<'_> {
        if self.not_modified {
            PollView::NotModified
        } else {
            PollView::Modified {
                last_modified: self.last_modified,
                history: self.history,
            }
        }
    }
}

/// A pre-resolved handle to one hosted object.
///
/// Simulation drivers look objects up **once** per run via
/// [`OriginServer::object`] and then poll through the handle, so the
/// per-poll path involves no id hashing, comparison or cloning.
#[derive(Debug, Clone, Copy)]
pub struct HostedObject<'a> {
    id: &'a ObjectId,
    trace: &'a UpdateTrace,
    history: HistorySupport,
}

impl<'a> HostedObject<'a> {
    /// The object's id.
    pub fn id(&self) -> &'a ObjectId {
        self.id
    }

    /// The ground-truth trace behind the object.
    pub fn trace(&self) -> &'a UpdateTrace {
        self.trace
    }

    /// Services an `If-Modified-Since` poll at `now` (see
    /// [`OriginServer::poll`]); the hot, allocation-free path.
    ///
    /// # Errors
    ///
    /// Returns [`OriginError::NotYetCreated`] when `now` precedes the
    /// object's first version.
    pub fn poll(
        &self,
        now: Timestamp,
        validator: Option<Timestamp>,
    ) -> Result<OriginResponse<'a>, OriginError> {
        let version_index = self
            .trace
            .version_index_at(now)
            .ok_or_else(|| OriginError::NotYetCreated(self.id.clone()))?;
        let event = &self.trace.events()[version_index];

        let not_modified = match validator {
            Some(v) => event.at <= v,
            None => false,
        };
        let history = match (self.history, not_modified, validator) {
            (HistorySupport::Full, false, Some(v)) => {
                Some(self.trace.times_between(v, now))
            }
            (HistorySupport::Full, false, None) => {
                Some(&self.trace.times()[version_index..=version_index])
            }
            _ => None,
        };
        Ok(OriginResponse {
            not_modified,
            version_index,
            last_modified: event.at,
            value: event.value,
            history,
        })
    }
}

/// Error returned when polling an object the origin does not host, or
/// polling before the object exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OriginError {
    /// No trace is registered under this id.
    UnknownObject(ObjectId),
    /// The poll instant precedes the object's first version.
    NotYetCreated(ObjectId),
}

impl fmt::Display for OriginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OriginError::UnknownObject(id) => write!(f, "unknown object: {id}"),
            OriginError::NotYetCreated(id) => write!(f, "object not yet created: {id}"),
        }
    }
}

impl std::error::Error for OriginError {}

/// A simulated origin server hosting trace-driven objects.
#[derive(Debug, Clone, Default)]
pub struct OriginServer {
    objects: BTreeMap<ObjectId, UpdateTrace>,
    history: HistorySupport,
}

impl OriginServer {
    /// Creates an empty origin with plain-HTTP behaviour.
    pub fn new() -> Self {
        OriginServer::default()
    }

    /// Enables/disables the modification-history extension.
    pub fn with_history(mut self, history: HistorySupport) -> Self {
        self.history = history;
        self
    }

    /// Hosts `trace` under `id` (replacing any previous trace).
    pub fn host(&mut self, id: ObjectId, trace: UpdateTrace) {
        self.objects.insert(id, trace);
    }

    /// The trace behind an object — the *ground truth* used by metrics.
    pub fn trace(&self, id: &ObjectId) -> Option<&UpdateTrace> {
        self.objects.get(id)
    }

    /// Ids of all hosted objects.
    pub fn object_ids(&self) -> impl Iterator<Item = &ObjectId> + '_ {
        self.objects.keys()
    }

    /// Whether the history extension is on.
    pub fn history_support(&self) -> HistorySupport {
        self.history
    }

    /// Resolves `id` to a poll handle (see [`HostedObject`]).
    ///
    /// # Errors
    ///
    /// Returns [`OriginError::UnknownObject`] when no trace is hosted
    /// under `id`.
    pub fn object(&self, id: &ObjectId) -> Result<HostedObject<'_>, OriginError> {
        let (id, trace) = self
            .objects
            .get_key_value(id)
            .ok_or_else(|| OriginError::UnknownObject(id.clone()))?;
        Ok(HostedObject {
            id,
            trace,
            history: self.history,
        })
    }

    /// Services an `If-Modified-Since` poll of `id` at `now`.
    ///
    /// `validator` is the creation time of the copy the client holds
    /// (`None` for an unconditional fetch). The response reflects the
    /// object's state at `now`.
    ///
    /// Loops that poll repeatedly should resolve the object once with
    /// [`OriginServer::object`] and poll the handle instead; this method
    /// repeats the id lookup on every call.
    ///
    /// # Errors
    ///
    /// Returns [`OriginError`] for unknown objects or polls before the
    /// object's first version.
    pub fn poll(
        &self,
        id: &ObjectId,
        now: Timestamp,
        validator: Option<Timestamp>,
    ) -> Result<OriginResponse<'_>, OriginError> {
        self.object(id)?.poll(now, validator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_traces::UpdateEvent;

    fn secs(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn origin(history: HistorySupport) -> (OriginServer, ObjectId) {
        let id = ObjectId::new("news");
        let trace = UpdateTrace::new(
            "news",
            secs(0),
            secs(1_000),
            vec![
                UpdateEvent::valued(secs(0), Value::new(1.0)),
                UpdateEvent::valued(secs(100), Value::new(2.0)),
                UpdateEvent::valued(secs(300), Value::new(3.0)),
            ],
        )
        .unwrap();
        let mut o = OriginServer::new().with_history(history);
        o.host(id.clone(), trace);
        (o, id)
    }

    #[test]
    fn unconditional_fetch_returns_current_version() {
        let (o, id) = origin(HistorySupport::None);
        let r = o.poll(&id, secs(150), None).unwrap();
        assert!(!r.not_modified);
        assert_eq!(r.version_index, 1);
        assert_eq!(r.last_modified, secs(100));
        assert_eq!(r.value, Some(Value::new(2.0)));
        assert_eq!(r.history, None);
    }

    #[test]
    fn conditional_fetch_304() {
        let (o, id) = origin(HistorySupport::None);
        // Holding version created at 100; no update by t=250.
        let r = o.poll(&id, secs(250), Some(secs(100))).unwrap();
        assert!(r.not_modified);
        assert_eq!(r.version_index, 1);
    }

    #[test]
    fn conditional_fetch_200_on_update() {
        let (o, id) = origin(HistorySupport::None);
        let r = o.poll(&id, secs(350), Some(secs(100))).unwrap();
        assert!(!r.not_modified);
        assert_eq!(r.version_index, 2);
        assert_eq!(r.last_modified, secs(300));
    }

    #[test]
    fn history_extension_lists_missed_updates() {
        let (o, id) = origin(HistorySupport::Full);
        // Validator from t=0; by 350 two updates happened.
        let r = o.poll(&id, secs(350), Some(secs(0))).unwrap();
        assert_eq!(r.history, Some(&[secs(100), secs(300)][..]));
        // 304s carry no history.
        let r = o.poll(&id, secs(250), Some(secs(100))).unwrap();
        assert!(r.not_modified);
        assert_eq!(r.history, None);
        // Unconditional fetches report just the current version.
        let r = o.poll(&id, secs(350), None).unwrap();
        assert_eq!(r.history, Some(&[secs(300)][..]));
    }

    #[test]
    fn errors() {
        let (o, id) = origin(HistorySupport::None);
        let missing = ObjectId::new("nope");
        assert_eq!(
            o.poll(&missing, secs(10), None).unwrap_err(),
            OriginError::UnknownObject(missing.clone())
        );
        // A trace starting later than the poll instant.
        let mut o2 = OriginServer::new();
        let late = UpdateTrace::new(
            "late",
            secs(0),
            secs(100),
            vec![UpdateEvent::temporal(secs(50))],
        )
        .unwrap();
        o2.host(ObjectId::new("late"), late);
        assert!(matches!(
            o2.poll(&ObjectId::new("late"), secs(10), None),
            Err(OriginError::NotYetCreated(_))
        ));
        assert!(!OriginError::UnknownObject(id).to_string().is_empty());
    }

    #[test]
    fn accessors() {
        let (o, id) = origin(HistorySupport::Full);
        assert_eq!(o.history_support(), HistorySupport::Full);
        assert!(o.trace(&id).is_some());
        assert_eq!(o.object_ids().count(), 1);
    }
}
