//! Ground-truth fidelity evaluation (§6.1.3).
//!
//! The simulator — unlike the proxy it simulates — can see the complete
//! server history, so it computes the evaluation's metrics *exactly*:
//!
//! * **Polls** — the length of the poll log.
//! * **Violations** (Equation 13's numerator) — poll instants at which the
//!   guarantee was, in ground truth, broken. This catches the Figure 1(b)
//!   cases a plain-HTTP proxy cannot even observe.
//! * **Out-of-sync time** (Equation 14's numerator) — the exact measure of
//!   the set of instants at which the guarantee was broken, computed by
//!   sweeping the piecewise-constant cached/server state.
//!
//! Conventions: a guarantee is *violated* when the bound is reached
//! (staleness ≥ Δ, drift ≥ Δv — Equations 2/3 demand strict inequality
//! the other way). Individual-object violations are counted per poll;
//! mutual violations are counted per poll *instant* (a pair poll or a
//! trigger cascade at one instant is one occasion).

use mutcon_core::fidelity::FidelityStats;
use mutcon_core::functions::ValueFunction;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;
use mutcon_traces::UpdateTrace;

use crate::log::{PollLog, PollOutcome, PollRecord};

/// Evaluates Δt-consistency of one object's run.
///
/// `until` is the observation window end (polls and staleness beyond it
/// are out of scope).
pub fn individual_temporal(
    trace: &UpdateTrace,
    log: &PollLog,
    delta: Duration,
    until: Timestamp,
) -> FidelityStats {
    let mut stats = FidelityStats::new(until.since(trace.start()));
    stats.record_polls(log.poll_count());

    // Violations at poll instants, against the version held just before
    // each poll.
    let mut held: Option<usize> = None;
    for r in log.records() {
        if let Some(h) = held {
            if let Some(next_update) = trace.events().get(h + 1) {
                if r.at >= next_update.at + delta {
                    stats.record_violation(Duration::ZERO);
                }
            }
        }
        if let PollOutcome::Refreshed { version_index } = r.outcome {
            held = Some(version_index);
        }
    }

    // Exact out-of-sync time: for each held segment, staleness begins Δ
    // after the first update that supersedes the held version.
    let refreshes: Vec<(Timestamp, usize)> = log.refresh_timeline().collect();
    for (k, &(_from, version)) in refreshes.iter().enumerate() {
        let seg_end = refreshes
            .get(k + 1)
            .map_or(until, |&(next_from, _)| next_from)
            .min(until);
        if let Some(next_update) = trace.events().get(version + 1) {
            let onset = next_update.at + delta;
            if onset < seg_end {
                // The held version was current when fetched, so the onset
                // always falls inside the segment.
                stats.add_out_of_sync(seg_end.since(onset));
            }
        }
    }
    stats
}

/// Evaluates Mt-consistency of a pair's run.
///
/// A pair of cached versions is mutually consistent iff their
/// server-validity intervals come within δ of each other (Equation 4) —
/// a property of the *versions*, so the violation status only changes at
/// refresh instants, which makes the sweep exact.
pub fn mutual_temporal(
    trace_a: &UpdateTrace,
    log_a: &PollLog,
    trace_b: &UpdateTrace,
    log_b: &PollLog,
    delta: Duration,
    until: Timestamp,
) -> FidelityStats {
    let mut stats = FidelityStats::new(until.since(trace_a.start().min(trace_b.start())));
    stats.record_polls(log_a.poll_count() + log_b.poll_count());

    let ra = log_a.records();
    let rb = log_b.records();
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut held_a: Option<usize> = None;
    let mut held_b: Option<usize> = None;
    let mut violating = false;
    let mut violating_since = Timestamp::ZERO;

    let pair_violates = |ha: Option<usize>, hb: Option<usize>| -> bool {
        match (ha, hb) {
            (Some(ha), Some(hb)) => {
                trace_a.validity_of(ha).gap(trace_b.validity_of(hb)) > delta
            }
            _ => false, // nothing cached yet: nothing to be inconsistent
        }
    };

    while ia < ra.len() || ib < rb.len() {
        let t = match (ra.get(ia), rb.get(ib)) {
            (Some(x), Some(y)) => x.at.min(y.at),
            (Some(x), None) => x.at,
            (None, Some(y)) => y.at,
            (None, None) => unreachable!("loop condition"),
        };
        if t > until {
            break;
        }
        // Apply every record at this instant (triggered polls share it).
        while ia < ra.len() && ra[ia].at == t {
            if let PollOutcome::Refreshed { version_index } = ra[ia].outcome {
                held_a = Some(version_index);
            }
            ia += 1;
        }
        while ib < rb.len() && rb[ib].at == t {
            if let PollOutcome::Refreshed { version_index } = rb[ib].outcome {
                held_b = Some(version_index);
            }
            ib += 1;
        }
        let now_violating = pair_violates(held_a, held_b);
        if now_violating && !violating {
            violating_since = t;
        } else if !now_violating && violating {
            stats.add_out_of_sync(t.since(violating_since));
        }
        if now_violating {
            stats.record_violation(Duration::ZERO);
        }
        violating = now_violating;
    }
    if violating && until > violating_since {
        stats.add_out_of_sync(until.since(violating_since));
    }
    stats
}

/// Evaluates Δv-consistency of one valued object's run.
pub fn individual_value(
    trace: &UpdateTrace,
    log: &PollLog,
    delta: Value,
    until: Timestamp,
) -> FidelityStats {
    let mut stats = FidelityStats::new(until.since(trace.start()));
    stats.record_polls(log.poll_count());

    // Violations at polls: drift of the pre-refresh cached value.
    let mut cached: Option<Value> = None;
    for r in log.records() {
        let server = trace.value_at(r.at).expect("valued trace");
        if let Some(p) = cached {
            if server.abs_diff(p) >= delta {
                stats.record_violation(Duration::ZERO);
            }
        }
        if let PollOutcome::Refreshed { version_index } = r.outcome {
            cached = trace.events()[version_index].value;
        }
    }

    // Exact out-of-sync time via a merged sweep of server updates and
    // proxy refreshes.
    let mut out_of_sync = Duration::ZERO;
    sweep_value_pair(
        trace,
        log,
        None,
        until,
        |seg_len, server, proxy, _, _| {
            if let (Some(s), Some(p)) = (server, proxy) {
                if s.abs_diff(p) >= delta {
                    out_of_sync = out_of_sync.saturating_add(seg_len);
                }
            }
        },
    );
    stats.add_out_of_sync(out_of_sync);
    stats
}

/// Evaluates Mv-consistency of a pair's run for function `f`.
pub fn mutual_value(
    trace_a: &UpdateTrace,
    log_a: &PollLog,
    trace_b: &UpdateTrace,
    log_b: &PollLog,
    f: ValueFunction,
    delta: Value,
    until: Timestamp,
) -> FidelityStats {
    let mut stats = FidelityStats::new(until.since(trace_a.start().min(trace_b.start())));
    stats.record_polls(log_a.poll_count() + log_b.poll_count());

    // Violations per poll instant, pre-refresh.
    let mut cached_a: Option<Value> = None;
    let mut cached_b: Option<Value> = None;
    let ra = log_a.records();
    let rb = log_b.records();
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < ra.len() || ib < rb.len() {
        let t = match (ra.get(ia), rb.get(ib)) {
            (Some(x), Some(y)) => x.at.min(y.at),
            (Some(x), None) => x.at,
            (None, Some(y)) => y.at,
            (None, None) => unreachable!("loop condition"),
        };
        if t > until {
            break;
        }
        if let (Some(pa), Some(pb)) = (cached_a, cached_b) {
            let sa = trace_a.value_at(t).expect("valued trace");
            let sb = trace_b.value_at(t).expect("valued trace");
            if f.eval(sa, sb).abs_diff(f.eval(pa, pb)) >= delta {
                stats.record_violation(Duration::ZERO);
            }
        }
        let apply = |recs: &[PollRecord], i: &mut usize, cached: &mut Option<Value>,
                     trace: &UpdateTrace| {
            while *i < recs.len() && recs[*i].at == t {
                if let PollOutcome::Refreshed { version_index } = recs[*i].outcome {
                    *cached = trace.events()[version_index].value;
                }
                *i += 1;
            }
        };
        apply(ra, &mut ia, &mut cached_a, trace_a);
        apply(rb, &mut ib, &mut cached_b, trace_b);
    }

    // Exact out-of-sync time.
    let mut out_of_sync = Duration::ZERO;
    sweep_value_pair(
        trace_a,
        log_a,
        Some((trace_b, log_b)),
        until,
        |seg_len, sa, pa, sb_pb, _| {
            if let (Some(sa), Some(pa), Some((Some(sb), Some(pb)))) = (sa, pa, sb_pb) {
                if f.eval(sa, sb).abs_diff(f.eval(pa, pb)) >= delta {
                    out_of_sync = out_of_sync.saturating_add(seg_len);
                }
            }
        },
    );
    stats.add_out_of_sync(out_of_sync);
    stats
}

/// A point of the Figure 8 timeline: `f` at the server versus the proxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FPoint {
    /// Time of the step.
    pub at: Timestamp,
    /// `f(S_a, S_b)` just after `at`.
    pub server: f64,
    /// `f(P_a, P_b)` just after `at`.
    pub proxy: f64,
}

/// Produces the step-function timeline of `f` at server and proxy within
/// `[from, to]` (Figure 8). Points are emitted at every change instant,
/// plus one at `from`; segments where either side is still unfetched are
/// skipped.
pub fn f_timeline(
    trace_a: &UpdateTrace,
    log_a: &PollLog,
    trace_b: &UpdateTrace,
    log_b: &PollLog,
    f: ValueFunction,
    from: Timestamp,
    to: Timestamp,
) -> Vec<FPoint> {
    let mut points = Vec::new();
    sweep_value_pair(
        trace_a,
        log_a,
        Some((trace_b, log_b)),
        to,
        |seg_len, sa, pa, sb_pb, seg_start| {
            // Emit one point per constant segment intersecting [from, to],
            // clamped to the window start.
            let seg_end = seg_start.saturating_add(seg_len);
            if seg_end <= from || seg_start > to {
                return;
            }
            let Some((Some(sb), Some(pb))) = sb_pb else {
                return;
            };
            let (Some(sa), Some(pa)) = (sa, pa) else {
                return;
            };
            points.push(FPoint {
                at: seg_start.max(from),
                server: f.eval(sa, sb).as_f64(),
                proxy: f.eval(pa, pb).as_f64(),
            });
        },
    );
    points
}

/// Sweeps the merged step function of (server value, proxy value) for one
/// object — or a pair when `second` is given — calling `visit` for every
/// constant segment with `(segment length, server_a, proxy_a,
/// Option<(server_b, proxy_b)>, segment start)`.
fn sweep_value_pair(
    trace_a: &UpdateTrace,
    log_a: &PollLog,
    second: Option<(&UpdateTrace, &PollLog)>,
    until: Timestamp,
    mut visit: impl FnMut(
        Duration,
        Option<Value>,
        Option<Value>,
        Option<(Option<Value>, Option<Value>)>,
        Timestamp,
    ),
) {
    #[derive(Clone, Copy)]
    enum Change {
        ServerA(Option<Value>),
        RefreshA(Option<Value>),
        ServerB(Option<Value>),
        RefreshB(Option<Value>),
    }
    let mut changes: Vec<(Timestamp, u8, Change)> = Vec::new();
    for e in trace_a.events() {
        changes.push((e.at, 0, Change::ServerA(e.value)));
    }
    for (at, vi) in log_a.refresh_timeline() {
        changes.push((at, 1, Change::RefreshA(trace_a.events()[vi].value)));
    }
    if let Some((trace_b, log_b)) = second {
        for e in trace_b.events() {
            changes.push((e.at, 0, Change::ServerB(e.value)));
        }
        for (at, vi) in log_b.refresh_timeline() {
            changes.push((at, 1, Change::RefreshB(trace_b.events()[vi].value)));
        }
    }
    // Server changes apply before refreshes at the same instant: a poll
    // coinciding with an update fetches the updated version.
    changes.sort_by_key(|&(at, order, _)| (at, order));

    let mut sa: Option<Value> = None;
    let mut pa: Option<Value> = None;
    let mut sb: Option<Value> = None;
    let mut pb: Option<Value> = None;
    let mut cursor = Timestamp::ZERO;
    let mut idx = 0;
    while idx < changes.len() {
        let t = changes[idx].0;
        if t > until {
            break;
        }
        if t > cursor {
            let b_state = second.map(|_| (sb, pb));
            visit(t.since(cursor), sa, pa, b_state, cursor);
            cursor = t;
        }
        while idx < changes.len() && changes[idx].0 == t {
            match changes[idx].2 {
                Change::ServerA(v) => sa = v,
                Change::RefreshA(v) => pa = v,
                Change::ServerB(v) => sb = v,
                Change::RefreshB(v) => pb = v,
            }
            idx += 1;
        }
    }
    if until > cursor {
        let b_state = second.map(|_| (sb, pb));
        visit(until.since(cursor), sa, pa, b_state, cursor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::PollRecord;
    use mutcon_traces::UpdateEvent;

    fn secs(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn temporal_trace(updates: &[u64]) -> UpdateTrace {
        let mut events = vec![UpdateEvent::temporal(secs(0))];
        events.extend(updates.iter().map(|&s| UpdateEvent::temporal(secs(s))));
        UpdateTrace::new("t", secs(0), secs(1_000), events).unwrap()
    }

    fn valued_trace(points: &[(u64, f64)]) -> UpdateTrace {
        let events = points
            .iter()
            .map(|&(s, v)| UpdateEvent::valued(secs(s), Value::new(v)))
            .collect();
        UpdateTrace::new("v", secs(0), secs(1_000), events).unwrap()
    }

    fn log(entries: &[(u64, Option<usize>)]) -> PollLog {
        let mut l = PollLog::new();
        for &(s, refreshed) in entries {
            l.push(PollRecord {
                at: secs(s),
                outcome: match refreshed {
                    Some(vi) => PollOutcome::Refreshed { version_index: vi },
                    None => PollOutcome::NotModified,
                },
                triggered: false,
            });
        }
        l
    }

    #[test]
    fn temporal_perfect_run_has_fidelity_one() {
        // Update at 100; poll at 0 (fetch v0) and 150 (fetch v1), Δ=60s:
        // staleness at 150 is 50s < Δ.
        let trace = temporal_trace(&[100]);
        let l = log(&[(0, Some(0)), (150, Some(1))]);
        let stats = individual_temporal(&trace, &l, Duration::from_secs(60), secs(1_000));
        assert_eq!(stats.polls(), 2);
        assert_eq!(stats.violations(), 0);
        assert_eq!(stats.out_of_sync(), Duration::ZERO);
        assert_eq!(stats.fidelity_by_violations(), 1.0);
        assert_eq!(stats.fidelity_by_time(), 1.0);
    }

    #[test]
    fn temporal_late_poll_counts_violation_and_out_of_sync() {
        // Update at 100, poll only at 300 with Δ=60s:
        // out-of-sync from 160 to 300 = 140 s; 1 violation at the poll.
        let trace = temporal_trace(&[100]);
        let l = log(&[(0, Some(0)), (300, Some(1))]);
        let stats = individual_temporal(&trace, &l, Duration::from_secs(60), secs(1_000));
        assert_eq!(stats.violations(), 1);
        assert_eq!(stats.out_of_sync(), Duration::from_secs(140));
    }

    #[test]
    fn temporal_figure_1b_counts_against_first_update() {
        // Two updates (100, 290) between polls at 0 and 300; Δ=60 s. The
        // *last* update is only 10 s old at the poll, but the first missed
        // one is 200 s old → violation; out-of-sync 160..300.
        let trace = temporal_trace(&[100, 290]);
        let l = log(&[(0, Some(0)), (300, Some(2))]);
        let stats = individual_temporal(&trace, &l, Duration::from_secs(60), secs(1_000));
        assert_eq!(stats.violations(), 1);
        assert_eq!(stats.out_of_sync(), Duration::from_secs(140));
    }

    #[test]
    fn temporal_never_refreshed_tail_counts_until_window_end() {
        // Update at 100 never picked up; window ends at 500; Δ=60.
        let trace = temporal_trace(&[100]);
        let l = log(&[(0, Some(0))]);
        let stats = individual_temporal(&trace, &l, Duration::from_secs(60), secs(500));
        assert_eq!(stats.out_of_sync(), Duration::from_secs(340)); // 160..500
        assert_eq!(stats.violations(), 0); // no poll observed it
    }

    #[test]
    fn mutual_temporal_coexisting_versions_are_consistent() {
        // Both objects refreshed at 0 and never updated: fidelity 1.
        let ta = temporal_trace(&[]);
        let tb = temporal_trace(&[]);
        let la = log(&[(0, Some(0)), (100, None)]);
        let lb = log(&[(0, Some(0))]);
        let stats = mutual_temporal(&ta, &la, &tb, &lb, Duration::ZERO, secs(1_000));
        assert_eq!(stats.polls(), 3);
        assert_eq!(stats.violations(), 0);
        assert_eq!(stats.fidelity_by_time(), 1.0);
    }

    #[test]
    fn mutual_temporal_detects_out_of_phase_pair() {
        // a updates at 100 and is refreshed at 110 (holds v1: [100, ∞)).
        // b still holds v0: [0, 100)... but b's v0 validity is [0, ∞) in
        // its own trace unless b also updates. Make b update at 100 too;
        // b keeps holding v0 = [0, 100). Gap between [100,∞) and [0,100)
        // is 0 (they touch) → consistent at δ=0? Equation 4 admits it.
        // Shift b's update earlier so a genuine gap appears.
        let ta = temporal_trace(&[100]);
        let tb = temporal_trace(&[50]);
        let la = log(&[(0, Some(0)), (110, Some(1))]); // holds [100, ∞)
        let lb = log(&[(0, Some(0))]); // holds [0, 50): gap 50 s
        let stats = mutual_temporal(&ta, &la, &tb, &lb, Duration::from_secs(10), secs(1_000));
        // Violation occasions: at t=110 the pair becomes inconsistent.
        assert_eq!(stats.violations(), 1);
        // Out-of-sync from 110 (when a refreshed) to window end.
        assert_eq!(stats.out_of_sync(), Duration::from_secs(890));
        // A larger δ absorbs the gap.
        let stats = mutual_temporal(&ta, &la, &tb, &lb, Duration::from_secs(60), secs(1_000));
        assert_eq!(stats.violations(), 0);
        assert_eq!(stats.out_of_sync(), Duration::ZERO);
    }

    #[test]
    fn value_drift_accounting() {
        // Server: 10.0 at t=0, 11.0 at t=100, 10.2 at t=200.
        // Proxy fetches at 0 and never again. Δv = 0.5.
        let trace = valued_trace(&[(0, 10.0), (100, 11.0), (200, 10.2)]);
        let l = log(&[(0, Some(0))]);
        let stats = individual_value(&trace, &l, Value::new(0.5), secs(300));
        // Out of sync on [100, 200): |11−10| = 1 ≥ 0.5; back in sync on
        // [200, 300): |10.2−10| = 0.2.
        assert_eq!(stats.out_of_sync(), Duration::from_secs(100));
        assert_eq!(stats.violations(), 0);
    }

    #[test]
    fn value_violation_at_poll() {
        let trace = valued_trace(&[(0, 10.0), (100, 11.0)]);
        let l = log(&[(0, Some(0)), (150, Some(1))]);
        let stats = individual_value(&trace, &l, Value::new(0.5), secs(300));
        assert_eq!(stats.violations(), 1); // drift 1.0 ≥ 0.5 seen at 150
        assert_eq!(stats.out_of_sync(), Duration::from_secs(50)); // 100..150
    }

    #[test]
    fn mutual_value_difference_function() {
        // f = a − b. Server: a jumps +1 at 100, b constant → f_server
        // changes from 4 to 5. Proxy never refreshes → f_proxy = 4.
        let ta = valued_trace(&[(0, 10.0), (100, 11.0)]);
        let tb = valued_trace(&[(0, 6.0)]);
        let la = log(&[(0, Some(0))]);
        let lb = log(&[(0, Some(0))]);
        let stats = mutual_value(
            &ta,
            &la,
            &tb,
            &lb,
            ValueFunction::Difference,
            Value::new(0.5),
            secs(300),
        );
        assert_eq!(stats.out_of_sync(), Duration::from_secs(200)); // 100..300
        // Now with a refresh of a at 150: violation seen there, sync after.
        let la = log(&[(0, Some(0)), (150, Some(1))]);
        let stats = mutual_value(
            &ta,
            &la,
            &tb,
            &lb,
            ValueFunction::Difference,
            Value::new(0.5),
            secs(300),
        );
        assert_eq!(stats.violations(), 1);
        assert_eq!(stats.out_of_sync(), Duration::from_secs(50)); // 100..150
    }

    #[test]
    fn f_timeline_steps() {
        let ta = valued_trace(&[(0, 10.0), (100, 11.0)]);
        let tb = valued_trace(&[(0, 6.0)]);
        let la = log(&[(0, Some(0)), (150, Some(1))]);
        let lb = log(&[(0, Some(0))]);
        let points = f_timeline(
            &ta,
            &la,
            &tb,
            &lb,
            ValueFunction::Difference,
            secs(0),
            secs(300),
        );
        assert!(points.len() >= 3);
        // At t=0 both are 4; at 100 server jumps to 5; at 150 proxy catches up.
        assert_eq!(points[0].at, secs(0));
        assert_eq!(points[0].server, 4.0);
        assert_eq!(points[0].proxy, 4.0);
        let at_100 = points.iter().find(|p| p.at == secs(100)).unwrap();
        assert_eq!(at_100.server, 5.0);
        assert_eq!(at_100.proxy, 4.0);
        let at_150 = points.iter().find(|p| p.at == secs(150)).unwrap();
        assert_eq!(at_150.proxy, 5.0);
    }

    #[test]
    fn window_restricts_f_timeline() {
        let ta = valued_trace(&[(0, 10.0), (100, 11.0), (200, 12.0)]);
        let tb = valued_trace(&[(0, 6.0)]);
        let la = log(&[(0, Some(0))]);
        let lb = log(&[(0, Some(0))]);
        let points = f_timeline(
            &ta,
            &la,
            &tb,
            &lb,
            ValueFunction::Difference,
            secs(150),
            secs(250),
        );
        assert!(points.iter().all(|p| p.at >= secs(150) && p.at <= secs(250)));
        // The state current at `from` is represented.
        assert_eq!(points[0].at, secs(150));
        assert_eq!(points[0].server, 5.0);
    }
}
