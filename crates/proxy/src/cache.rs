//! The proxy's object cache.
//!
//! The paper's simulation assumes "an infinitely large cache" (§6.1.1), so
//! this store never evicts; it exists to hold each object's current copy
//! (version stamp, value, fetch time) and to answer the cache-hit path.
//! An optional capacity bound with LRU eviction is provided for
//! experiments beyond the paper.
//!
//! The bounded-LRU machinery — a hash table paired with a
//! `BTreeSet<(used, key)>` recency index giving O(log n) eviction — is
//! factored out as the generic [`LruMap`] so other caches (notably the
//! live proxy's sharded cache in `mutcon-live`) reuse the same indexed
//! implementation instead of growing their own scan-based one.

use std::borrow::Borrow;
use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

use mutcon_core::object::{ObjectId, VersionStamp};
use mutcon_core::time::Timestamp;
use mutcon_core::value::Value;

/// One stored value plus its recency key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Slot<V, U> {
    value: V,
    used: U,
}

/// A map with optional capacity bound and least-recently-used eviction.
///
/// Recency is indexed by a `BTreeSet<(used, key)>` kept in lock-step with
/// the entry table, so eviction is O(log n) — no scans, no per-comparison
/// key clones. The recency key `U` is supplied by the caller on every
/// insert/touch (a virtual-time [`Timestamp`] for the simulator, a
/// monotonic sequence number for the live daemons), and ties on `used`
/// evict the smallest key in `K`'s order — for string-like keys, the
/// lexicographically smallest. When no capacity bound is set the recency
/// index is not maintained at all (the unbounded paper model pays
/// nothing).
#[derive(Debug, Clone)]
pub struct LruMap<K, V, U = Timestamp> {
    entries: HashMap<K, Slot<V, U>>,
    /// `(used, key)` pairs, one per entry; only maintained when a
    /// capacity bound is set.
    recency: BTreeSet<(U, K)>,
    capacity: Option<usize>,
}

// Hand-written so `Default` does not demand it of K/V/U (the derive
// would), matching `HashMap`/`BTreeSet`.
impl<K, V, U> Default for LruMap<K, V, U> {
    fn default() -> Self {
        LruMap {
            entries: HashMap::new(),
            recency: BTreeSet::new(),
            capacity: None,
        }
    }
}

impl<K, V, U> LruMap<K, V, U>
where
    K: Ord + Hash + Eq + Clone,
    U: Ord + Copy,
{
    /// An unbounded map: nothing is ever evicted.
    pub fn unbounded() -> Self {
        LruMap {
            entries: HashMap::new(),
            recency: BTreeSet::new(),
            capacity: None,
        }
    }

    /// A map holding at most `capacity` entries, evicting the least
    /// recently used.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruMap {
            capacity: Some(capacity),
            ..LruMap::unbounded()
        }
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up without refreshing recency.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.entries.get(key).map(|slot| &slot.value)
    }

    /// Whether `key` is resident and already the most recently used
    /// entry, i.e. a `touch` would not change the eviction order. On an
    /// unbounded map no recency is maintained, so every resident key
    /// trivially qualifies. Lets read paths skip the write lock a
    /// recency refresh would need (see `ShardedCache::get` in
    /// `mutcon-live`).
    pub fn is_most_recent<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let Some((stored_key, slot)) = self.entries.get_key_value(key) else {
            return false;
        };
        if self.capacity.is_none() {
            return true;
        }
        match self.recency.last() {
            Some((used, key)) => *used == slot.used && key == stored_key,
            None => false,
        }
    }

    /// Looks up and marks the entry as used at `now`.
    pub fn touch<Q>(&mut self, key: &Q, now: U) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if self.capacity.is_some() {
            let (stored_key, slot) = self.entries.get_key_value(key)?;
            if slot.used != now {
                let old = (slot.used, stored_key.clone());
                self.recency.remove(&old);
                self.recency.insert((now, old.1));
            }
        }
        let slot = self.entries.get_mut(key)?;
        slot.used = now;
        Some(&slot.value)
    }

    /// Inserts (or replaces) an entry used at `now`. When a capacity
    /// bound is set and would be exceeded, the least-recently-used
    /// *existing* entry is evicted first (a fresh insert never evicts
    /// itself, even if `now` orders before every resident entry) and
    /// returned.
    pub fn insert(&mut self, key: K, value: V, now: U) -> Option<(K, V)> {
        let slot = Slot { value, used: now };
        let Some(cap) = self.capacity else {
            self.entries.insert(key, slot);
            return None;
        };
        let mut evicted = None;
        match self.entries.insert(key.clone(), slot) {
            Some(old) => {
                // Replacement: re-key the existing recency slot.
                self.recency.remove(&(old.used, key.clone()));
            }
            None => {
                if self.entries.len() > cap {
                    // The LRU victim sits at the front of the ordered
                    // recency index: one O(log n) pop, no scan.
                    let victim = self
                        .recency
                        .pop_first()
                        .expect("bounded map over capacity has a recency entry");
                    let value = self
                        .entries
                        .remove(&victim.1)
                        .expect("recency index entry is resident");
                    evicted = Some((victim.1, value.value));
                }
            }
        }
        self.recency.insert((now, key));
        evicted
    }

    /// Removes an entry.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let (stored_key, _) = self.entries.get_key_value(key)?;
        let stored_key = stored_key.clone();
        let slot = self.entries.remove(key)?;
        if self.capacity.is_some() {
            self.recency.remove(&(slot.used, stored_key));
        }
        Some(slot.value)
    }
}

/// One cached copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedEntry {
    /// The copy's version stamp (version number + creation time, i.e. its
    /// `Last-Modified`).
    pub stamp: VersionStamp,
    /// The copy's value, for value-bearing objects.
    pub value: Option<Value>,
    /// When the proxy fetched this copy.
    pub fetched_at: Timestamp,
}

/// The proxy cache: unbounded by default (the paper's model), optionally
/// capacity-limited with LRU eviction — a thin hit/miss-counting layer
/// over [`LruMap`]. (`ObjectId` is an `Arc<str>`, so the one key clone
/// per insert/touch is a reference-count bump, not a string copy.)
#[derive(Debug, Clone, Default)]
pub struct ProxyCache {
    map: LruMap<ObjectId, CachedEntry, Timestamp>,
    hits: u64,
    misses: u64,
}

impl ProxyCache {
    /// An unbounded cache (the paper's assumption).
    pub fn unbounded() -> Self {
        ProxyCache::default()
    }

    /// A cache holding at most `capacity` objects, evicting the least
    /// recently used.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        ProxyCache {
            map: LruMap::with_capacity(capacity),
            ..Default::default()
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up an object for a client request at `now`, counting
    /// hit/miss statistics and refreshing LRU recency.
    pub fn lookup(&mut self, id: &ObjectId, now: Timestamp) -> Option<&CachedEntry> {
        match self.map.touch(id, now) {
            Some(entry) => {
                self.hits += 1;
                Some(entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching statistics or recency (used by the
    /// consistency machinery, which is not a client access).
    pub fn peek(&self, id: &ObjectId) -> Option<&CachedEntry> {
        self.map.get(id)
    }

    /// Stores (or replaces) the copy fetched at `now`. Evicts the LRU
    /// entry first when a capacity bound is set and would be exceeded.
    pub fn store(
        &mut self,
        id: ObjectId,
        stamp: VersionStamp,
        value: Option<Value>,
        now: Timestamp,
    ) {
        let entry = CachedEntry {
            stamp,
            value,
            fetched_at: now,
        };
        self.map.insert(id, entry, now);
    }

    /// Drops an entry (used by failure-injection tests).
    pub fn evict(&mut self, id: &ObjectId) -> Option<CachedEntry> {
        self.map.remove(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_core::object::Version;

    fn oid(s: &str) -> ObjectId {
        ObjectId::new(s)
    }

    fn stamp(v: u64, secs: u64) -> VersionStamp {
        VersionStamp::new(Version::from_raw(v), Timestamp::from_secs(secs))
    }

    #[test]
    fn store_and_lookup() {
        let mut c = ProxyCache::unbounded();
        assert!(c.is_empty());
        assert!(c.lookup(&oid("a"), Timestamp::from_secs(1)).is_none());
        assert_eq!(c.misses(), 1);

        c.store(oid("a"), stamp(0, 0), Some(Value::new(1.5)), Timestamp::from_secs(2));
        let entry = c.lookup(&oid("a"), Timestamp::from_secs(3)).unwrap();
        assert_eq!(entry.stamp, stamp(0, 0));
        assert_eq!(entry.value, Some(Value::new(1.5)));
        assert_eq!(entry.fetched_at, Timestamp::from_secs(2));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn refresh_replaces() {
        let mut c = ProxyCache::unbounded();
        c.store(oid("a"), stamp(0, 0), None, Timestamp::from_secs(1));
        c.store(oid("a"), stamp(1, 10), None, Timestamp::from_secs(20));
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&oid("a")).unwrap().stamp, stamp(1, 10));
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = ProxyCache::unbounded();
        c.store(oid("a"), stamp(0, 0), None, Timestamp::from_secs(1));
        let _ = c.peek(&oid("a"));
        let _ = c.peek(&oid("b"));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn lru_eviction() {
        let mut c = ProxyCache::with_capacity(2);
        c.store(oid("a"), stamp(0, 0), None, Timestamp::from_secs(1));
        c.store(oid("b"), stamp(0, 0), None, Timestamp::from_secs(2));
        // Touch a so b becomes LRU.
        c.lookup(&oid("a"), Timestamp::from_secs(3));
        c.store(oid("c"), stamp(0, 0), None, Timestamp::from_secs(4));
        assert_eq!(c.len(), 2);
        assert!(c.peek(&oid("a")).is_some());
        assert!(c.peek(&oid("b")).is_none());
        assert!(c.peek(&oid("c")).is_some());
    }

    #[test]
    fn lru_tie_break_is_lexicographic() {
        // Three entries stored at the same instant: the old linear scan
        // broke last_used ties by ObjectId order, and the O(log n)
        // recency index must preserve exactly that.
        let mut c = ProxyCache::with_capacity(3);
        for name in ["b", "c", "a"] {
            c.store(oid(name), stamp(0, 0), None, Timestamp::from_secs(5));
        }
        c.store(oid("d"), stamp(0, 0), None, Timestamp::from_secs(6));
        assert!(c.peek(&oid("a")).is_none(), "lexicographically smallest tie loses");
        assert!(c.peek(&oid("b")).is_some());
        assert!(c.peek(&oid("c")).is_some());
        assert!(c.peek(&oid("d")).is_some());
    }

    #[test]
    fn lru_matches_reference_scan_model() {
        // Randomized equivalence against the pre-refactor O(n) scan
        // semantics: evict min by (last_used, id).
        use mutcon_sim::SimRng;
        use std::collections::HashMap;

        let cap = 8;
        let mut cache = ProxyCache::with_capacity(cap);
        let mut model: HashMap<ObjectId, Timestamp> = HashMap::new();
        let mut rng = SimRng::seed_from_u64(0xCAC4E);
        let names: Vec<ObjectId> =
            (0..24).map(|i| ObjectId::new(format!("obj-{i:02}"))).collect();

        for step in 0u64..2_000 {
            let now = Timestamp::from_secs(step / 3); // deliberate ties
            let id = rng.pick(&names).clone();
            if rng.chance(0.5) {
                cache.store(id.clone(), stamp(0, step), None, now);
                if !model.contains_key(&id) && model.len() >= cap {
                    let victim = model
                        .iter()
                        .min_by_key(|(oid, t)| (**t, (*oid).clone()))
                        .map(|(oid, _)| oid.clone())
                        .expect("model not empty");
                    model.remove(&victim);
                }
                model.insert(id, now);
            } else {
                let hit = cache.lookup(&id, now).is_some();
                assert_eq!(hit, model.contains_key(&id), "step {step}");
                if hit {
                    model.insert(id, now);
                }
            }
            assert_eq!(cache.len(), model.len(), "step {step}");
        }
        for id in &names {
            assert_eq!(cache.peek(id).is_some(), model.contains_key(id), "{id}");
        }
    }

    #[test]
    fn evict_returns_entry() {
        let mut c = ProxyCache::unbounded();
        c.store(oid("a"), stamp(0, 0), None, Timestamp::from_secs(1));
        assert!(c.evict(&oid("a")).is_some());
        assert!(c.evict(&oid("a")).is_none());
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ProxyCache::with_capacity(0);
    }

    #[test]
    fn lru_map_generic_over_string_keys_and_sequence_clock() {
        // The live proxy's shard configuration: String keys, u64 ticks.
        let mut m: LruMap<String, u32, u64> = LruMap::with_capacity(2);
        assert_eq!(m.insert("/a".to_owned(), 1, 0), None);
        assert_eq!(m.insert("/b".to_owned(), 2, 1), None);
        // Borrowed lookups: no owned key needed.
        assert_eq!(m.get("/a"), Some(&1));
        assert_eq!(m.touch("/a", 2), Some(&1));
        let evicted = m.insert("/c".to_owned(), 3, 3);
        assert_eq!(evicted, Some(("/b".to_owned(), 2)));
        assert_eq!(m.len(), 2);
        assert_eq!(m.capacity(), Some(2));
        assert!(m.get("/b").is_none());
        assert_eq!(m.remove("/a"), Some(1));
        assert_eq!(m.remove("/a"), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn lru_map_reports_most_recent_entries() {
        let mut m: LruMap<String, u32, u64> = LruMap::with_capacity(3);
        assert!(!m.is_most_recent("/a"), "absent keys are never most recent");
        m.insert("/a".to_owned(), 1, 0);
        assert!(m.is_most_recent("/a"));
        m.insert("/b".to_owned(), 2, 1);
        assert!(!m.is_most_recent("/a"));
        assert!(m.is_most_recent("/b"));
        m.touch("/a", 2);
        assert!(m.is_most_recent("/a"));
        assert!(!m.is_most_recent("/b"));
        // Unbounded maps keep no recency: every resident key qualifies.
        let mut u: LruMap<String, u32, u64> = LruMap::unbounded();
        u.insert("/x".to_owned(), 1, 0);
        u.insert("/y".to_owned(), 2, 1);
        assert!(u.is_most_recent("/x"));
        assert!(u.is_most_recent("/y"));
        assert!(!u.is_most_recent("/z"));
    }

    #[test]
    fn lru_map_fresh_insert_never_evicts_itself() {
        // An insert whose recency key orders before every resident entry
        // must evict the resident LRU, not the entry being inserted.
        let mut m: LruMap<String, u32, u64> = LruMap::with_capacity(2);
        m.insert("/x".to_owned(), 1, 10);
        m.insert("/y".to_owned(), 2, 20);
        let evicted = m.insert("/old".to_owned(), 3, 0);
        assert_eq!(evicted, Some(("/x".to_owned(), 1)));
        assert!(m.get("/old").is_some());
    }

    #[test]
    fn lru_map_replacement_rekeys_without_eviction() {
        let mut m: LruMap<String, u32, u64> = LruMap::with_capacity(2);
        m.insert("/a".to_owned(), 1, 0);
        m.insert("/b".to_owned(), 2, 1);
        // Replacing a resident key must not evict anything.
        assert_eq!(m.insert("/a".to_owned(), 10, 2), None);
        assert_eq!(m.len(), 2);
        // /b is now LRU.
        assert_eq!(m.insert("/c".to_owned(), 3, 3), Some(("/b".to_owned(), 2)));
    }

    #[test]
    fn lru_map_unbounded_skips_recency_maintenance() {
        let mut m: LruMap<String, u32, u64> = LruMap::unbounded();
        for i in 0..100u32 {
            m.insert(format!("/{i}"), i, 0); // identical recency keys: fine
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.capacity(), None);
        assert_eq!(m.touch("/7", 1), Some(&7));
        assert_eq!(m.remove("/7"), Some(7));
        assert_eq!(m.len(), 99);
    }
}
