//! The proxy's object cache.
//!
//! The paper's simulation assumes "an infinitely large cache" (§6.1.1), so
//! this store never evicts; it exists to hold each object's current copy
//! (version stamp, value, fetch time) and to answer the cache-hit path.
//! An optional capacity bound with LRU eviction is provided for
//! experiments beyond the paper.

use std::collections::{BTreeSet, HashMap};

use mutcon_core::object::{ObjectId, VersionStamp};
use mutcon_core::time::Timestamp;
use mutcon_core::value::Value;

/// One cached copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedEntry {
    /// The copy's version stamp (version number + creation time, i.e. its
    /// `Last-Modified`).
    pub stamp: VersionStamp,
    /// The copy's value, for value-bearing objects.
    pub value: Option<Value>,
    /// When the proxy fetched this copy.
    pub fetched_at: Timestamp,
    /// Last access (hit or refresh), for LRU.
    last_used: Timestamp,
}

/// The proxy cache: unbounded by default (the paper's model), optionally
/// capacity-limited with LRU eviction.
///
/// Recency is indexed by a `BTreeSet<(last_used, id)>` kept in lock-step
/// with the entry table, so eviction is O(log n) — the previous
/// implementation scanned every entry and cloned every key per
/// comparison. Ties on `last_used` evict the lexicographically smallest
/// id, exactly like the old scan's `(last_used, id)` ordering, so
/// eviction order is unchanged. (`ObjectId` is an `Arc<str>`, so the one
/// clone per insert/touch is a reference-count bump, not a string copy.)
#[derive(Debug, Clone, Default)]
pub struct ProxyCache {
    entries: HashMap<ObjectId, CachedEntry>,
    /// `(last_used, id)` pairs, one per entry; only maintained when a
    /// capacity bound is set (the unbounded paper model pays nothing).
    recency: BTreeSet<(Timestamp, ObjectId)>,
    capacity: Option<usize>,
    hits: u64,
    misses: u64,
}

impl ProxyCache {
    /// An unbounded cache (the paper's assumption).
    pub fn unbounded() -> Self {
        ProxyCache::default()
    }

    /// A cache holding at most `capacity` objects, evicting the least
    /// recently used.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ProxyCache {
            capacity: Some(capacity),
            ..Default::default()
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up an object for a client request at `now`, counting
    /// hit/miss statistics and refreshing LRU recency.
    pub fn lookup(&mut self, id: &ObjectId, now: Timestamp) -> Option<&CachedEntry> {
        match self.entries.get_mut(id) {
            Some(entry) => {
                if self.capacity.is_some() && entry.last_used != now {
                    self.recency.remove(&(entry.last_used, id.clone()));
                    self.recency.insert((now, id.clone()));
                }
                entry.last_used = now;
                self.hits += 1;
                Some(&*entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching statistics or recency (used by the
    /// consistency machinery, which is not a client access).
    pub fn peek(&self, id: &ObjectId) -> Option<&CachedEntry> {
        self.entries.get(id)
    }

    /// Stores (or replaces) the copy fetched at `now`. Evicts the LRU
    /// entry first when a capacity bound is set and would be exceeded.
    pub fn store(
        &mut self,
        id: ObjectId,
        stamp: VersionStamp,
        value: Option<Value>,
        now: Timestamp,
    ) {
        let entry = CachedEntry {
            stamp,
            value,
            fetched_at: now,
            last_used: now,
        };
        let Some(cap) = self.capacity else {
            self.entries.insert(id, entry);
            return;
        };
        match self.entries.insert(id.clone(), entry) {
            Some(old) => {
                // Refresh of an existing entry: re-key its recency slot.
                self.recency.remove(&(old.last_used, id.clone()));
            }
            None => {
                if self.entries.len() > cap {
                    // The LRU victim sits at the front of the ordered
                    // recency index: one O(log n) pop, no scan.
                    let victim = self
                        .recency
                        .pop_first()
                        .expect("bounded cache over capacity has a recency entry");
                    self.entries.remove(&victim.1);
                }
            }
        }
        self.recency.insert((now, id));
    }

    /// Drops an entry (used by failure-injection tests).
    pub fn evict(&mut self, id: &ObjectId) -> Option<CachedEntry> {
        let removed = self.entries.remove(id);
        if self.capacity.is_some() {
            if let Some(entry) = &removed {
                self.recency.remove(&(entry.last_used, id.clone()));
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_core::object::Version;

    fn oid(s: &str) -> ObjectId {
        ObjectId::new(s)
    }

    fn stamp(v: u64, secs: u64) -> VersionStamp {
        VersionStamp::new(Version::from_raw(v), Timestamp::from_secs(secs))
    }

    #[test]
    fn store_and_lookup() {
        let mut c = ProxyCache::unbounded();
        assert!(c.is_empty());
        assert!(c.lookup(&oid("a"), Timestamp::from_secs(1)).is_none());
        assert_eq!(c.misses(), 1);

        c.store(oid("a"), stamp(0, 0), Some(Value::new(1.5)), Timestamp::from_secs(2));
        let entry = c.lookup(&oid("a"), Timestamp::from_secs(3)).unwrap();
        assert_eq!(entry.stamp, stamp(0, 0));
        assert_eq!(entry.value, Some(Value::new(1.5)));
        assert_eq!(entry.fetched_at, Timestamp::from_secs(2));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn refresh_replaces() {
        let mut c = ProxyCache::unbounded();
        c.store(oid("a"), stamp(0, 0), None, Timestamp::from_secs(1));
        c.store(oid("a"), stamp(1, 10), None, Timestamp::from_secs(20));
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&oid("a")).unwrap().stamp, stamp(1, 10));
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = ProxyCache::unbounded();
        c.store(oid("a"), stamp(0, 0), None, Timestamp::from_secs(1));
        let _ = c.peek(&oid("a"));
        let _ = c.peek(&oid("b"));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn lru_eviction() {
        let mut c = ProxyCache::with_capacity(2);
        c.store(oid("a"), stamp(0, 0), None, Timestamp::from_secs(1));
        c.store(oid("b"), stamp(0, 0), None, Timestamp::from_secs(2));
        // Touch a so b becomes LRU.
        c.lookup(&oid("a"), Timestamp::from_secs(3));
        c.store(oid("c"), stamp(0, 0), None, Timestamp::from_secs(4));
        assert_eq!(c.len(), 2);
        assert!(c.peek(&oid("a")).is_some());
        assert!(c.peek(&oid("b")).is_none());
        assert!(c.peek(&oid("c")).is_some());
    }

    #[test]
    fn lru_tie_break_is_lexicographic() {
        // Three entries stored at the same instant: the old linear scan
        // broke last_used ties by ObjectId order, and the O(log n)
        // recency index must preserve exactly that.
        let mut c = ProxyCache::with_capacity(3);
        for name in ["b", "c", "a"] {
            c.store(oid(name), stamp(0, 0), None, Timestamp::from_secs(5));
        }
        c.store(oid("d"), stamp(0, 0), None, Timestamp::from_secs(6));
        assert!(c.peek(&oid("a")).is_none(), "lexicographically smallest tie loses");
        assert!(c.peek(&oid("b")).is_some());
        assert!(c.peek(&oid("c")).is_some());
        assert!(c.peek(&oid("d")).is_some());
    }

    #[test]
    fn lru_matches_reference_scan_model() {
        // Randomized equivalence against the pre-refactor O(n) scan
        // semantics: evict min by (last_used, id).
        use mutcon_sim::SimRng;
        use std::collections::HashMap;

        let cap = 8;
        let mut cache = ProxyCache::with_capacity(cap);
        let mut model: HashMap<ObjectId, Timestamp> = HashMap::new();
        let mut rng = SimRng::seed_from_u64(0xCAC4E);
        let names: Vec<ObjectId> =
            (0..24).map(|i| ObjectId::new(format!("obj-{i:02}"))).collect();

        for step in 0u64..2_000 {
            let now = Timestamp::from_secs(step / 3); // deliberate ties
            let id = rng.pick(&names).clone();
            if rng.chance(0.5) {
                cache.store(id.clone(), stamp(0, step), None, now);
                if !model.contains_key(&id) && model.len() >= cap {
                    let victim = model
                        .iter()
                        .min_by_key(|(oid, t)| (**t, (*oid).clone()))
                        .map(|(oid, _)| oid.clone())
                        .expect("model not empty");
                    model.remove(&victim);
                }
                model.insert(id, now);
            } else {
                let hit = cache.lookup(&id, now).is_some();
                assert_eq!(hit, model.contains_key(&id), "step {step}");
                if hit {
                    model.insert(id, now);
                }
            }
            assert_eq!(cache.len(), model.len(), "step {step}");
        }
        for id in &names {
            assert_eq!(cache.peek(id).is_some(), model.contains_key(id), "{id}");
        }
    }

    #[test]
    fn evict_returns_entry() {
        let mut c = ProxyCache::unbounded();
        c.store(oid("a"), stamp(0, 0), None, Timestamp::from_secs(1));
        assert!(c.evict(&oid("a")).is_some());
        assert!(c.evict(&oid("a")).is_none());
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ProxyCache::with_capacity(0);
    }
}
