//! Poll logs: the complete record of a simulation run.
//!
//! Every poll a driver performs is appended to a [`PollLog`]; the metrics
//! module replays logs against the ground-truth traces to compute exact
//! poll counts, violations and out-of-sync time.


use mutcon_core::time::Timestamp;

/// What one poll did to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOutcome {
    /// `304 Not Modified`: the cached copy stayed.
    NotModified,
    /// `200 OK`: the cache now holds the version with this index in the
    /// object's trace.
    Refreshed {
        /// Index into the trace's event list.
        version_index: usize,
    },
}

/// One poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollRecord {
    /// When the poll hit the origin.
    pub at: Timestamp,
    /// What it returned.
    pub outcome: PollOutcome,
    /// `true` when the poll was triggered by the mutual-consistency
    /// coordinator rather than the object's own schedule.
    pub triggered: bool,
}

/// The time-ordered polls of one object across a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PollLog {
    records: Vec<PollRecord>,
}

impl PollLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        PollLog::default()
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics if `record` is earlier than the latest record (drivers feed
    /// polls in event order).
    pub fn push(&mut self, record: PollRecord) {
        if let Some(last) = self.records.last() {
            assert!(
                record.at >= last.at,
                "poll log must be time-ordered: {} < {}",
                record.at,
                last.at
            );
        }
        self.records.push(record);
    }

    /// The records, oldest first.
    pub fn records(&self) -> &[PollRecord] {
        &self.records
    }

    /// Total polls (every record is one `If-Modified-Since` request).
    pub fn poll_count(&self) -> u64 {
        self.records.len() as u64
    }

    /// Polls that refreshed the cached copy.
    pub fn refresh_count(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, PollOutcome::Refreshed { .. }))
            .count() as u64
    }

    /// Polls initiated by the mutual-consistency coordinator.
    pub fn triggered_count(&self) -> u64 {
        self.records.iter().filter(|r| r.triggered).count() as u64
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the held-version timeline: `(held_from, version_index)`
    /// for every refresh, in order.
    pub fn refresh_timeline(&self) -> impl Iterator<Item = (Timestamp, usize)> + '_ {
        self.records.iter().filter_map(|r| match r.outcome {
            PollOutcome::Refreshed { version_index } => Some((r.at, version_index)),
            PollOutcome::NotModified => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(s: u64, outcome: PollOutcome) -> PollRecord {
        PollRecord {
            at: Timestamp::from_secs(s),
            outcome,
            triggered: false,
        }
    }

    #[test]
    fn counting() {
        let mut log = PollLog::new();
        assert!(log.is_empty());
        log.push(rec(0, PollOutcome::Refreshed { version_index: 0 }));
        log.push(rec(10, PollOutcome::NotModified));
        log.push(PollRecord {
            at: Timestamp::from_secs(20),
            outcome: PollOutcome::Refreshed { version_index: 1 },
            triggered: true,
        });
        assert_eq!(log.poll_count(), 3);
        assert_eq!(log.refresh_count(), 2);
        assert_eq!(log.triggered_count(), 1);
        assert_eq!(log.records().len(), 3);
    }

    #[test]
    fn refresh_timeline_skips_304s() {
        let mut log = PollLog::new();
        log.push(rec(0, PollOutcome::Refreshed { version_index: 0 }));
        log.push(rec(10, PollOutcome::NotModified));
        log.push(rec(20, PollOutcome::Refreshed { version_index: 2 }));
        let timeline: Vec<_> = log.refresh_timeline().collect();
        assert_eq!(
            timeline,
            vec![
                (Timestamp::from_secs(0), 0),
                (Timestamp::from_secs(20), 2)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_out_of_order() {
        let mut log = PollLog::new();
        log.push(rec(10, PollOutcome::NotModified));
        log.push(rec(5, PollOutcome::NotModified));
    }

    #[test]
    fn same_instant_records_allowed() {
        // Triggered polls share the trigger's instant.
        let mut log = PollLog::new();
        log.push(rec(10, PollOutcome::NotModified));
        log.push(rec(10, PollOutcome::Refreshed { version_index: 1 }));
        assert_eq!(log.poll_count(), 2);
    }
}
