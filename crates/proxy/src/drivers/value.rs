//! The value-domain simulation driver (§4, §6.2.3).
//!
//! Three modes:
//!
//! * [`run_value_individual`] — one object under the §4.1 adaptive TTR
//!   (Δv-consistency).
//! * [`run_value_pair`] with [`ValuePairPolicy::Virtual`] — the pair is
//!   polled *together* on one schedule derived from the rate of change of
//!   `f` (Equations 11–12); each pair poll issues two HTTP requests.
//! * [`run_value_pair`] with [`ValuePairPolicy::Partitioned`] — δ is split
//!   into per-object tolerances and each object polls independently.

use mutcon_core::adaptive_ttr::{AdaptiveTtr, AdaptiveTtrConfig};
use mutcon_core::mutual::value::{
    PairMember, PartitionedConfig, PartitionedPolicy, VirtualObjectConfig, VirtualObjectPolicy,
};
use mutcon_core::object::ObjectId;
use mutcon_core::time::Timestamp;
use mutcon_core::value::Value;
use mutcon_sim::queue::EventQueue;

use crate::log::{PollLog, PollOutcome, PollRecord};
use crate::origin::{HostedObject, OriginServer};

/// Which Mv approach drives the pair.
#[derive(Debug, Clone, PartialEq)]
pub enum ValuePairPolicy {
    /// Track `f(a, b)` as a virtual object (§4.2, Equations 11–12).
    Virtual(VirtualObjectConfig),
    /// Split δ into per-object tolerances (§4.2, partitioned approach).
    Partitioned(PartitionedConfig),
}

/// Output of a pair run.
#[derive(Debug, Clone, Default)]
pub struct ValuePairOutput {
    /// Poll log of the first object.
    pub log_a: PollLog,
    /// Poll log of the second object.
    pub log_b: PollLog,
    /// Violations the *policy itself* detected (its internal feedback
    /// signal — ground-truth violations come from `metrics`).
    pub detected_violations: u64,
}

impl ValuePairOutput {
    /// Total polls (HTTP requests) across both objects.
    pub fn total_polls(&self) -> u64 {
        self.log_a.poll_count() + self.log_b.poll_count()
    }
}

fn poll_value(
    object: &HostedObject<'_>,
    now: Timestamp,
    validator: &mut Option<Timestamp>,
    log: &mut PollLog,
) -> Value {
    let resp = object
        .poll(now, *validator)
        .expect("object hosted by origin for the whole window");
    let outcome = if resp.not_modified {
        PollOutcome::NotModified
    } else {
        *validator = Some(resp.last_modified);
        PollOutcome::Refreshed {
            version_index: resp.version_index,
        }
    };
    log.push(PollRecord {
        at: now,
        outcome,
        triggered: false,
    });
    resp.value
        .expect("value-domain driver requires valued traces")
}

/// Runs one object under the §4.1 adaptive TTR until `until`; returns its
/// poll log.
///
/// # Panics
///
/// Panics if the object is not hosted or its trace is not valued.
pub fn run_value_individual(
    origin: &OriginServer,
    id: &ObjectId,
    config: AdaptiveTtrConfig,
    until: Timestamp,
) -> PollLog {
    let mut log = PollLog::new();
    let mut ttr = AdaptiveTtr::new(config);
    let mut validator = None;
    let mut now = Timestamp::ZERO;
    let object = origin.object(id).expect("object hosted by origin");
    loop {
        let value = poll_value(&object, now, &mut validator, &mut log);
        let next = ttr.on_poll(now, value);
        now += next;
        if now > until {
            break;
        }
    }
    log
}

/// Runs a pair of valued objects under an Mv policy until `until`.
///
/// # Panics
///
/// Panics if either object is not hosted or its trace is not valued.
pub fn run_value_pair(
    origin: &OriginServer,
    a: &ObjectId,
    b: &ObjectId,
    policy: &ValuePairPolicy,
    until: Timestamp,
) -> ValuePairOutput {
    match policy {
        ValuePairPolicy::Virtual(cfg) => run_virtual(origin, a, b, cfg.into_policy(), until),
        ValuePairPolicy::Partitioned(cfg) => {
            run_partitioned(origin, a, b, cfg.into_policy(), until)
        }
    }
}

fn run_virtual(
    origin: &OriginServer,
    a: &ObjectId,
    b: &ObjectId,
    mut policy: VirtualObjectPolicy,
    until: Timestamp,
) -> ValuePairOutput {
    let mut out = ValuePairOutput::default();
    let mut validator_a = None;
    let mut validator_b = None;
    let mut now = Timestamp::ZERO;
    let obj_a = origin.object(a).expect("object hosted by origin");
    let obj_b = origin.object(b).expect("object hosted by origin");
    loop {
        let va = poll_value(&obj_a, now, &mut validator_a, &mut out.log_a);
        let vb = poll_value(&obj_b, now, &mut validator_b, &mut out.log_b);
        let decision = policy.on_poll(now, va, vb);
        if decision.violated {
            out.detected_violations += 1;
        }
        now += decision.ttr;
        if now > until {
            break;
        }
    }
    out
}

fn run_partitioned(
    origin: &OriginServer,
    a: &ObjectId,
    b: &ObjectId,
    mut policy: PartitionedPolicy,
    until: Timestamp,
) -> ValuePairOutput {
    let mut out = ValuePairOutput::default();
    let mut validator_a = None;
    let mut validator_b = None;
    let obj_a = origin.object(a).expect("object hosted by origin");
    let obj_b = origin.object(b).expect("object hosted by origin");
    let mut queue: EventQueue<PairMember> = EventQueue::new();
    queue.schedule_at(Timestamp::ZERO, PairMember::A);
    queue.schedule_at(Timestamp::ZERO, PairMember::B);
    while let Some(at) = queue.peek_time() {
        if at > until {
            break;
        }
        let (now, member) = queue.pop().expect("peeked event exists");
        let (object, validator, log) = match member {
            PairMember::A => (&obj_a, &mut validator_a, &mut out.log_a),
            PairMember::B => (&obj_b, &mut validator_b, &mut out.log_b),
        };
        let value = poll_value(object, now, validator, log);
        let ttr = policy.on_poll(member, now, value);
        let next = now + ttr;
        if next <= until {
            queue.schedule_at(next, member);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_core::functions::ValueFunction;
    use mutcon_core::time::Duration;
    use mutcon_traces::NamedTrace;

    fn stock_origin() -> (OriginServer, ObjectId, ObjectId) {
        let mut origin = OriginServer::new();
        let att = ObjectId::new("stock/T");
        let yahoo = ObjectId::new("stock/YHOO");
        origin.host(att.clone(), NamedTrace::Att.generate());
        origin.host(yahoo.clone(), NamedTrace::Yahoo.generate());
        (origin, att, yahoo)
    }

    fn until() -> Timestamp {
        Timestamp::ZERO + NamedTrace::Att.duration()
    }

    #[test]
    fn individual_adaptive_ttr_polls_less_than_minimum_rate() {
        let (origin, att, _) = stock_origin();
        let config = AdaptiveTtrConfig::builder(Value::new(0.25))
            .ttr_bounds(Duration::from_secs(5), Duration::from_mins(10))
            .build()
            .unwrap();
        let log = run_value_individual(&origin, &att, config, until());
        assert!(log.poll_count() > 2);
        // Upper bound: polling every ttr_min for 3 h = 2160 polls.
        assert!(log.poll_count() <= 2_161);
        // Polls stay inside the window.
        assert!(log.records().last().unwrap().at <= until());
    }

    #[test]
    fn virtual_pair_polls_in_lockstep() {
        let (origin, att, yahoo) = stock_origin();
        let cfg = VirtualObjectConfig::builder(ValueFunction::Difference, Value::new(1.0))
            .ttr_bounds(Duration::from_secs(10), Duration::from_mins(10))
            .build()
            .unwrap();
        let out = run_value_pair(&origin, &att, &yahoo, &ValuePairPolicy::Virtual(cfg), until());
        // Lockstep: equal counts, identical instants.
        assert_eq!(out.log_a.poll_count(), out.log_b.poll_count());
        for (ra, rb) in out.log_a.records().iter().zip(out.log_b.records()) {
            assert_eq!(ra.at, rb.at);
        }
        assert_eq!(out.total_polls(), 2 * out.log_a.poll_count());
    }

    #[test]
    fn partitioned_pair_polls_independently() {
        let (origin, att, yahoo) = stock_origin();
        let cfg = PartitionedConfig::builder(ValueFunction::Difference, Value::new(1.0))
            .ttr_bounds(Duration::from_secs(10), Duration::from_mins(10))
            .build()
            .unwrap();
        let out = run_value_pair(
            &origin,
            &att,
            &yahoo,
            &ValuePairPolicy::Partitioned(cfg),
            until(),
        );
        assert!(out.log_a.poll_count() > 2);
        assert!(out.log_b.poll_count() > 2);
        // Yahoo moves much more than AT&T; its schedule should be denser.
        assert!(
            out.log_b.poll_count() > out.log_a.poll_count(),
            "yahoo {} vs att {}",
            out.log_b.poll_count(),
            out.log_a.poll_count()
        );
    }

    #[test]
    fn tighter_delta_means_more_polls() {
        let (origin, att, yahoo) = stock_origin();
        let mk = |delta: f64| {
            let cfg = VirtualObjectConfig::builder(ValueFunction::Difference, Value::new(delta))
                .ttr_bounds(Duration::from_secs(5), Duration::from_mins(10))
                .build()
                .unwrap();
            run_value_pair(&origin, &att, &yahoo, &ValuePairPolicy::Virtual(cfg), until())
                .total_polls()
        };
        let tight = mk(0.25);
        let loose = mk(5.0);
        assert!(
            tight > loose,
            "tight δ should poll more: {tight} vs {loose}"
        );
    }

    #[test]
    fn virtual_detects_some_violations_under_tight_delta() {
        let (origin, att, yahoo) = stock_origin();
        let cfg = VirtualObjectConfig::builder(ValueFunction::Difference, Value::new(0.25))
            .ttr_bounds(Duration::from_secs(30), Duration::from_mins(10))
            .build()
            .unwrap();
        let out = run_value_pair(&origin, &att, &yahoo, &ValuePairPolicy::Virtual(cfg), until());
        // With a tight tolerance and a floor on the TTR, some drift slips
        // through — that is exactly what θ reacts to.
        assert!(out.detected_violations > 0);
    }
}
