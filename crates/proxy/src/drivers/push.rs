//! Server-push consistency — the road not taken (§2, footnote 1).
//!
//! The paper restricts itself to proxy-side polling and notes that
//! "server-based approaches … in such approaches, the server pushes
//! relevant changes to the proxy (e.g., only those updates that are
//! necessary to maintain the Δ-bound)" are possible but out of scope.
//! This module implements that ideal server-push as an *extension
//! baseline*, so the polling algorithms can be compared against the
//! message-count lower bound an omniscient server achieves:
//!
//! * **Δt-push** — the server sends one message per update when the
//!   proxy's copy would otherwise exceed Δ; updates superseded within Δ
//!   are coalesced (the push can wait up to Δ after the first missed
//!   update, forwarding only the newest version).
//! * **Mt-push** — pushing each update the moment it happens trivially
//!   keeps every pair mutually consistent; its cost is simply one message
//!   per update.
//!
//! Both produce [`PollLog`]s, so the existing ground-truth metrics apply
//! unchanged.

use mutcon_core::time::{Duration, Timestamp};
use mutcon_traces::UpdateTrace;

use crate::log::{PollLog, PollOutcome, PollRecord};

/// Simulates ideal server push for Δt-consistency over one object.
///
/// The server watches its own updates and sends the proxy a fresh copy at
/// the last possible moment: Δ after the first update the proxy has not
/// seen (coalescing any updates in between). The initial copy is pushed
/// at the trace start. Returns the proxy-side log (every record is a
/// pushed refresh).
pub fn push_delta_t(trace: &UpdateTrace, delta: Duration, until: Timestamp) -> PollLog {
    let mut log = PollLog::new();
    log.push(PollRecord {
        at: trace.events()[0].at.min(until),
        outcome: PollOutcome::Refreshed { version_index: 0 },
        triggered: false,
    });
    let mut held = 0usize;
    // Walk from each held version to the first update it misses.
    while let Some(first_missed) = trace.events().get(held + 1) {
        // The guarantee breaks Δ after that update (Equation 2's bound is
        // strict), so the push lands one tick before the deadline.
        let push_at = first_missed.at + delta - Duration::from_millis(1);
        if push_at > until {
            break;
        }
        // Coalesce: ship the newest version that exists at push time.
        let newest = trace
            .version_index_at(push_at)
            .expect("push time is after the first event");
        log.push(PollRecord {
            at: push_at,
            outcome: PollOutcome::Refreshed { version_index: newest },
            triggered: false,
        });
        held = newest;
    }
    log
}

/// Simulates eager per-update push (one message per server update), the
/// strategy that makes mutual consistency trivial. Returns the proxy-side
/// log.
pub fn push_every_update(trace: &UpdateTrace, until: Timestamp) -> PollLog {
    let mut log = PollLog::new();
    for (i, e) in trace.events().iter().enumerate() {
        if e.at > until {
            break;
        }
        log.push(PollRecord {
            at: e.at,
            outcome: PollOutcome::Refreshed { version_index: i },
            triggered: false,
        });
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use mutcon_core::time::Duration;
    use mutcon_traces::generator::NewsTraceBuilder;
    use mutcon_traces::UpdateEvent;

    fn secs(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn trace(updates: &[u64]) -> UpdateTrace {
        let mut events = vec![UpdateEvent::temporal(secs(0))];
        events.extend(updates.iter().map(|&s| UpdateEvent::temporal(secs(s))));
        UpdateTrace::new("t", secs(0), secs(1_000), events).unwrap()
    }

    #[test]
    fn push_delta_t_is_perfect_and_minimal() {
        let t = trace(&[100, 300, 700]);
        let delta = Duration::from_secs(60);
        let log = push_delta_t(&t, delta, t.end());
        // One initial push + one per (non-coalesced) update.
        assert_eq!(log.poll_count(), 4);
        let stats = metrics::individual_temporal(&t, &log, delta, t.end());
        assert_eq!(stats.violations(), 0);
        assert_eq!(stats.out_of_sync(), Duration::ZERO);
        assert_eq!(stats.fidelity_by_time(), 1.0);
    }

    #[test]
    fn push_coalesces_rapid_updates() {
        // Three updates within one Δ window collapse into one push of the
        // newest version.
        let t = trace(&[100, 110, 120, 500]);
        let delta = Duration::from_secs(60);
        let log = push_delta_t(&t, delta, t.end());
        // initial + coalesced(100..120) + 500.
        assert_eq!(log.poll_count(), 3);
        // The coalesced push ships version 3 (the 120 s update) just
        // before the 160 s deadline.
        let records = log.records();
        assert_eq!(records[1].at, secs(160) - Duration::from_millis(1));
        assert_eq!(records[1].outcome, PollOutcome::Refreshed { version_index: 3 });
        // Still perfect.
        let stats = metrics::individual_temporal(&t, &log, delta, t.end());
        assert_eq!(stats.out_of_sync(), Duration::ZERO);
    }

    #[test]
    fn push_every_update_gives_mutual_fidelity_one() {
        let a = trace(&[100, 450]);
        let b = trace(&[220, 300, 890]);
        let la = push_every_update(&a, a.end());
        let lb = push_every_update(&b, b.end());
        assert_eq!(la.poll_count(), 3);
        assert_eq!(lb.poll_count(), 4);
        let stats =
            metrics::mutual_temporal(&a, &la, &b, &lb, Duration::ZERO, secs(1_000));
        assert_eq!(stats.fidelity_by_violations(), 1.0);
        assert_eq!(stats.out_of_sync(), Duration::ZERO);
    }

    #[test]
    fn push_messages_lower_bound_polls() {
        // On a realistic workload, ideal push uses (far) fewer messages
        // than the every-Δ baseline needs polls, while matching its
        // perfect fidelity — quantifying what footnote 1 gives up by
        // staying proxy-based.
        let t = NewsTraceBuilder::new("n", Duration::from_hours(24), 60)
            .seed(3)
            .build()
            .unwrap();
        let delta = Duration::from_mins(5);
        let push = push_delta_t(&t, delta, t.end());
        let baseline_polls = t.duration().as_millis() / delta.as_millis() + 1;
        assert!(
            push.poll_count() < baseline_polls / 3,
            "push {} vs baseline {}",
            push.poll_count(),
            baseline_polls
        );
        let stats = metrics::individual_temporal(&t, &push, delta, t.end());
        assert_eq!(stats.out_of_sync(), Duration::ZERO);
    }

    #[test]
    fn push_respects_window_end() {
        let t = trace(&[100, 900]);
        let log = push_delta_t(&t, Duration::from_secs(60), secs(500));
        for r in log.records() {
            assert!(r.at <= secs(500));
        }
        let log = push_every_update(&t, secs(500));
        assert_eq!(log.poll_count(), 2); // initial + the 100 s update
    }
}
