//! The temporal-domain simulation driver (§3, §6.2.1–6.2.2).
//!
//! Each object is polled on its own schedule — strictly every Δ for the
//! baseline, or LIMD-adapted — and an optional [`MtCoordinator`] reacts
//! to observed updates by triggering immediate polls of related objects.
//! Triggered polls are *additional* polls (§3.2): they refresh the cache
//! and inform the coordinator, but the object's regular LIMD schedule and
//! TTR state are left untouched — exactly the incremental cost the paper
//! measures in Figure 5(a).

use std::collections::BTreeMap;

use mutcon_core::limd::{Limd, LimdConfig};
use mutcon_core::mutual::temporal::{MtCoordinator, MtPolicy};
use mutcon_core::object::ObjectId;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_sim::queue::{EventId, EventQueue};

use crate::log::{PollLog, PollOutcome, PollRecord};
use crate::origin::{HostedObject, OriginServer};

/// How each object maintains its individual Δt guarantee.
#[derive(Debug, Clone, PartialEq)]
pub enum TemporalPolicy {
    /// Poll strictly every Δ (the paper's baseline; perfect fidelity by
    /// construction).
    Periodic(Duration),
    /// The adaptive LIMD algorithm of §3.1.
    Limd(LimdConfig),
}

/// Mutual-consistency coordination settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutualSetup {
    /// The Mt tolerance δ.
    pub delta: Duration,
    /// Baseline / triggered polls / rate heuristic.
    pub policy: MtPolicy,
}

/// Full driver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalSimConfig {
    /// The per-object individual policy (same for every object).
    pub policy: TemporalPolicy,
    /// Optional Mt coordination over all simulated objects (treated as
    /// one related group, as in §6.2.2).
    pub mutual: Option<MutualSetup>,
    /// Observation window end; no polls happen after this instant.
    pub until: Timestamp,
}

/// Everything a run produces.
#[derive(Debug, Clone, Default)]
pub struct TemporalSimOutput {
    /// Per-object poll logs.
    pub logs: BTreeMap<ObjectId, PollLog>,
    /// Per-object `(poll time, TTR chosen)` timeline (Figure 4(b)).
    pub ttr_timeline: BTreeMap<ObjectId, Vec<(Timestamp, Duration)>>,
    /// Instants at which the coordinator triggered extra polls
    /// (Figure 6(b)).
    pub triggered_instants: Vec<Timestamp>,
}

impl TemporalSimOutput {
    /// Total polls across all objects.
    pub fn total_polls(&self) -> u64 {
        self.logs.values().map(PollLog::poll_count).sum()
    }

    /// Total coordinator-triggered polls.
    pub fn total_triggered(&self) -> u64 {
        self.logs.values().map(PollLog::triggered_count).sum()
    }
}

struct ObjectState {
    limd: Option<Limd>,
    validator: Option<Timestamp>,
    pending: Option<EventId>,
}

/// The driver's internal state, keyed by dense object handles.
///
/// Object ids are interned to `u32` indices at run start: the event
/// queue, the per-object state table and the Mt coordinator all work on
/// indices, so the per-poll path never hashes, compares or clones an
/// `ObjectId`. The string ids reappear only when the final
/// [`TemporalSimOutput`] maps are assembled.
struct Sim<'a> {
    objects: Vec<HostedObject<'a>>,
    config: &'a TemporalSimConfig,
    states: Vec<ObjectState>,
    coordinator: Option<MtCoordinator<u32>>,
    queue: EventQueue<u32>,
    logs: Vec<PollLog>,
    ttr_timelines: Vec<Vec<(Timestamp, Duration)>>,
    triggered_instants: Vec<Timestamp>,
}

/// Runs the temporal driver over `objects` (all hosted by `origin`).
///
/// # Panics
///
/// Panics if an object is not hosted by the origin or its trace starts
/// after [`Timestamp::ZERO`] — experiment setup errors, not runtime
/// conditions.
pub fn run_temporal(
    origin: &OriginServer,
    objects: &[ObjectId],
    config: &TemporalSimConfig,
) -> TemporalSimOutput {
    let handles: Vec<HostedObject<'_>> = objects
        .iter()
        .map(|id| origin.object(id).expect("object hosted by origin"))
        .collect();
    let n = handles.len();
    let mut sim = Sim {
        objects: handles,
        config,
        states: (0..n)
            .map(|_| ObjectState {
                limd: match &config.policy {
                    TemporalPolicy::Periodic(_) => None,
                    TemporalPolicy::Limd(cfg) => Some(Limd::new(*cfg)),
                },
                validator: None,
                pending: None,
            })
            .collect(),
        coordinator: config
            .mutual
            .map(|m| MtCoordinator::new(m.delta, m.policy, 0..n as u32)),
        queue: EventQueue::new(),
        logs: vec![PollLog::new(); n],
        ttr_timelines: vec![Vec::new(); n],
        triggered_instants: Vec::new(),
    };
    for idx in 0..n as u32 {
        let ev = sim.queue.schedule_at(Timestamp::ZERO, idx);
        sim.states[idx as usize].pending = Some(ev);
    }

    while let Some(at) = sim.queue.peek_time() {
        if at > config.until {
            break;
        }
        let (now, obj) = sim.queue.pop().expect("peeked event exists");
        sim.states[obj as usize].pending = None;
        sim.poll(obj, now, false);
    }

    let mut out = TemporalSimOutput {
        triggered_instants: sim.triggered_instants,
        ..TemporalSimOutput::default()
    };
    for (idx, id) in objects.iter().enumerate() {
        out.logs
            .insert(id.clone(), std::mem::take(&mut sim.logs[idx]));
        out.ttr_timeline
            .insert(id.clone(), std::mem::take(&mut sim.ttr_timelines[idx]));
    }
    out
}

impl Sim<'_> {
    /// Performs one poll (regular or triggered) of `obj` at `now`,
    /// reschedules its next regular poll, and cascades coordinator
    /// triggers at the same instant.
    fn poll(&mut self, obj: u32, now: Timestamp, triggered: bool) {
        let i = obj as usize;
        let validator = self.states[i].validator;
        let resp = self.objects[i]
            .poll(now, validator)
            .expect("object hosted by origin for the whole window");

        let outcome = if resp.not_modified {
            PollOutcome::NotModified
        } else {
            PollOutcome::Refreshed {
                version_index: resp.version_index,
            }
        };
        self.logs[i].push(PollRecord {
            at: now,
            outcome,
            triggered,
        });

        let view = resp.as_view();
        let state = &mut self.states[i];
        if !resp.not_modified {
            state.validator = Some(resp.last_modified);
        }

        // Only regular polls drive the TTR state and the schedule;
        // triggered polls are additional requests on top of it.
        let mut next_at = None;
        if !triggered {
            let ttr = match (&self.config.policy, state.limd.as_mut()) {
                (TemporalPolicy::Periodic(d), _) => *d,
                (TemporalPolicy::Limd(_), Some(limd)) => {
                    let decision = limd.observe(now, view);
                    self.ttr_timelines[i].push((now, decision.ttr));
                    decision.ttr
                }
                (TemporalPolicy::Limd(_), None) => {
                    unreachable!("LIMD state exists for LIMD policy")
                }
            };
            let state = &mut self.states[i];
            if let Some(ev) = state.pending.take() {
                self.queue.cancel(ev);
            }
            let at = now + ttr;
            if at <= self.config.until {
                state.pending = Some(self.queue.schedule_at(at, obj));
            }
            next_at = Some(at);
        }

        // Mutual-consistency coordination.
        let triggers = match self.coordinator.as_mut() {
            Some(coord) => {
                let triggers = coord.observe(&obj, now, view);
                if let Some(at) = next_at {
                    coord.record_scheduled_poll(&obj, at);
                }
                triggers
            }
            None => Vec::new(),
        };
        for target in triggers {
            self.triggered_instants.push(now);
            // Same-instant recursion terminates: once polled at `now`, an
            // object's last-poll suppresses any further trigger at `now`.
            self.poll(target, now, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_traces::{UpdateEvent, UpdateTrace};

    fn mins(m: u64) -> Timestamp {
        Timestamp::from_mins(m)
    }

    /// An object updated every 30 minutes for 10 hours.
    fn regular_origin(id: &str, period_min: u64) -> (OriginServer, ObjectId) {
        let oid = ObjectId::new(id);
        let mut events = vec![UpdateEvent::temporal(Timestamp::ZERO)];
        let mut t = period_min;
        while t <= 600 {
            events.push(UpdateEvent::temporal(mins(t)));
            t += period_min;
        }
        let trace = UpdateTrace::new(id, Timestamp::ZERO, mins(600), events).unwrap();
        let mut origin = OriginServer::new();
        origin.host(oid.clone(), trace);
        (origin, oid)
    }

    fn limd_config(delta_min: u64) -> LimdConfig {
        LimdConfig::builder(Duration::from_mins(delta_min))
            .ttr_max(Duration::from_mins(60))
            .build()
            .unwrap()
    }

    #[test]
    fn periodic_polls_exactly_every_delta() {
        let (origin, id) = regular_origin("x", 30);
        let config = TemporalSimConfig {
            policy: TemporalPolicy::Periodic(Duration::from_mins(10)),
            mutual: None,
            until: mins(600),
        };
        let out = run_temporal(&origin, std::slice::from_ref(&id), &config);
        // Polls at 0, 10, 20, …, 600 → 61 polls.
        assert_eq!(out.logs[&id].poll_count(), 61);
        let records = out.logs[&id].records();
        assert_eq!(records[1].at, mins(10));
        assert_eq!(records[2].at, mins(20));
    }

    #[test]
    fn limd_backs_off_on_static_object() {
        let oid = ObjectId::new("static");
        let trace = UpdateTrace::new(
            "static",
            Timestamp::ZERO,
            mins(600),
            vec![UpdateEvent::temporal(Timestamp::ZERO)],
        )
        .unwrap();
        let mut origin = OriginServer::new();
        origin.host(oid.clone(), trace);

        let config = TemporalSimConfig {
            policy: TemporalPolicy::Limd(limd_config(10)),
            mutual: None,
            until: mins(600),
        };
        let out = run_temporal(&origin, std::slice::from_ref(&oid), &config);
        let baseline_polls = 61;
        assert!(
            out.logs[&oid].poll_count() < baseline_polls / 2,
            "LIMD should back off on a static object: {} polls",
            out.logs[&oid].poll_count()
        );
        // TTR grows towards the max.
        let ttrs = &out.ttr_timeline[&oid];
        assert!(ttrs.last().unwrap().1 > Duration::from_mins(30));
    }

    #[test]
    fn limd_tracks_fast_object_like_baseline() {
        // Object changes every 5 min, Δ = 10 min: optimal is ~every Δ.
        let (origin, id) = regular_origin("fast", 5);
        let config = TemporalSimConfig {
            policy: TemporalPolicy::Limd(limd_config(10)),
            mutual: None,
            until: mins(600),
        };
        let out = run_temporal(&origin, std::slice::from_ref(&id), &config);
        let polls = out.logs[&id].poll_count();
        // Baseline would be 61; LIMD should be in the same ballpark.
        assert!(
            (40..=75).contains(&polls),
            "expected near-baseline poll count, got {polls}"
        );
    }

    #[test]
    fn triggered_polls_follow_updates() {
        let (mut origin, a) = regular_origin("a", 30);
        // b is almost static.
        let b = ObjectId::new("b");
        let trace_b = UpdateTrace::new(
            "b",
            Timestamp::ZERO,
            mins(600),
            vec![UpdateEvent::temporal(Timestamp::ZERO)],
        )
        .unwrap();
        origin.host(b.clone(), trace_b);

        let config = TemporalSimConfig {
            policy: TemporalPolicy::Limd(limd_config(10)),
            mutual: Some(MutualSetup {
                delta: Duration::from_mins(2),
                policy: MtPolicy::TriggeredPolls,
            }),
            until: mins(600),
        };
        let out = run_temporal(&origin, &[a.clone(), b.clone()], &config);
        assert!(out.total_triggered() > 0, "updates to a must trigger polls of b");
        assert!(!out.triggered_instants.is_empty());
        // Triggered records are flagged.
        assert!(out.logs[&b].records().iter().any(|r| r.triggered));
    }

    #[test]
    fn baseline_mutual_policy_triggers_nothing() {
        let (mut origin, a) = regular_origin("a", 30);
        let (origin_b, b) = regular_origin("b", 45);
        origin.host(b.clone(), origin_b.trace(&b).unwrap().clone());
        let config = TemporalSimConfig {
            policy: TemporalPolicy::Limd(limd_config(10)),
            mutual: Some(MutualSetup {
                delta: Duration::from_mins(5),
                policy: MtPolicy::Baseline,
            }),
            until: mins(600),
        };
        let out = run_temporal(&origin, &[a, b], &config);
        assert_eq!(out.total_triggered(), 0);
    }

    #[test]
    fn no_polls_beyond_until() {
        let (origin, id) = regular_origin("x", 30);
        let config = TemporalSimConfig {
            policy: TemporalPolicy::Periodic(Duration::from_mins(10)),
            mutual: None,
            until: mins(100),
        };
        let out = run_temporal(&origin, std::slice::from_ref(&id), &config);
        for r in out.logs[&id].records() {
            assert!(r.at <= mins(100));
        }
    }

    #[test]
    fn deterministic_runs() {
        let (origin, id) = regular_origin("x", 15);
        let config = TemporalSimConfig {
            policy: TemporalPolicy::Limd(limd_config(10)),
            mutual: None,
            until: mins(600),
        };
        let a = run_temporal(&origin, std::slice::from_ref(&id), &config);
        let b = run_temporal(&origin, std::slice::from_ref(&id), &config);
        assert_eq!(a.logs, b.logs);
    }
}
