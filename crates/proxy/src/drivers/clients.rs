//! Client request workloads against the proxy cache.
//!
//! The paper's simulator models "a proxy cache that receives requests
//! from several clients" (§6.1.1): hits are served from the cache, misses
//! fetch from the server. The consistency experiments themselves only
//! need the refresher side, but the client path matters for the
//! motivation (response-time savings come from hits) and for validating
//! that the refresher actually keeps what clients read fresh.
//!
//! [`run_client_workload`] replays a Poisson stream of client requests
//! over a set of cached objects (Zipf-ish popularity), serving them from
//! a [`ProxyCache`] maintained by the temporal driver's poll log, and
//! reports hit ratios plus the *staleness seen by clients* — the
//! user-visible face of Δt-consistency.

use std::collections::BTreeMap;

use mutcon_core::object::{ObjectId, Version, VersionStamp};
use mutcon_core::time::{Duration, Timestamp};
use mutcon_sim::queue::EventQueue;
use mutcon_sim::rng::SimRng;

use crate::cache::ProxyCache;
use crate::log::{PollLog, PollOutcome};
use crate::origin::OriginServer;

/// Configuration of a client request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientWorkload {
    /// Mean time between client requests (exponential gaps).
    pub mean_gap: Duration,
    /// Zipf-style skew: weight of object `k` (1-based popularity rank) is
    /// `1 / k^skew`. Zero means uniform.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
    /// End of the request stream.
    pub until: Timestamp,
}

/// What the clients experienced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClientStats {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that had to fetch from the origin (first access).
    pub misses: u64,
    /// Total staleness across hit responses (how far behind the origin
    /// the served copies were).
    pub total_staleness: Duration,
    /// The single worst staleness served.
    pub worst_staleness: Duration,
}

impl ClientStats {
    /// Hit ratio in `[0, 1]` (1.0 when there were no requests).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Mean staleness of hit responses.
    pub fn mean_staleness(&self) -> Duration {
        if self.hits == 0 {
            Duration::ZERO
        } else {
            self.total_staleness / self.hits
        }
    }
}

/// Replays a client request stream against a cache maintained by the
/// given poll logs (as produced by
/// [`run_temporal`](crate::drivers::run_temporal)).
///
/// The cache contents at any instant are derived from each object's poll
/// log: the copy a client sees is the version fetched by the most recent
/// refresh. Staleness is measured against the origin's ground truth.
///
/// # Panics
///
/// Panics if an object in `logs` is not hosted by the origin.
pub fn run_client_workload(
    origin: &OriginServer,
    logs: &BTreeMap<ObjectId, PollLog>,
    workload: &ClientWorkload,
) -> ClientStats {
    let objects: Vec<&ObjectId> = logs.keys().collect();
    assert!(!objects.is_empty(), "client workload needs at least one object");

    // Popularity weights: rank 1 is the most popular.
    let weights: Vec<f64> = (1..=objects.len())
        .map(|k| 1.0 / (k as f64).powf(workload.skew.max(0.0)))
        .collect();
    let total_weight: f64 = weights.iter().sum();

    // Pre-compute each object's refresh timeline for O(log n) lookups.
    let timelines: BTreeMap<&ObjectId, Vec<(Timestamp, usize)>> = logs
        .iter()
        .map(|(id, log)| (id, log.refresh_timeline().collect()))
        .collect();

    let mut rng = SimRng::seed_from_u64(workload.seed);
    let mut cache = ProxyCache::unbounded();
    let mut stats = ClientStats::default();

    // A queue keeps the request stream in the same deterministic
    // framework as every other driver.
    let mut queue: EventQueue<()> = EventQueue::new();
    let first_gap = Duration::from_secs_f64(rng.exponential(workload.mean_gap.as_secs_f64()));
    queue.schedule_at(Timestamp::ZERO + first_gap, ());

    while let Some(at) = queue.peek_time() {
        if at > workload.until {
            break;
        }
        let (now, ()) = queue.pop().expect("peeked event exists");

        // Pick an object by popularity.
        let mut target = rng.uniform() * total_weight;
        let mut chosen = objects[objects.len() - 1];
        for (obj, w) in objects.iter().zip(&weights) {
            if target < *w {
                chosen = obj;
                break;
            }
            target -= w;
        }

        // The copy the refresher has most recently installed.
        let timeline = &timelines[chosen];
        let held = match timeline.binary_search_by(|(t, _)| t.cmp(&now)) {
            Ok(i) => Some(timeline[i]),
            Err(0) => None,
            Err(i) => Some(timeline[i - 1]),
        };

        match held {
            Some((_, version_index)) => {
                let trace = origin.trace(chosen).expect("object hosted");
                let event = trace.events()[version_index];
                if cache.lookup(chosen, now).is_none() {
                    // First client touch of an already-refreshed object:
                    // count the install, then serve the hit path next time.
                    cache.store(
                        (*chosen).clone(),
                        VersionStamp::new(Version::from_raw(version_index as u64), event.at),
                        event.value,
                        now,
                    );
                    stats.misses += 1;
                } else {
                    stats.hits += 1;
                    // Staleness: how long ago did the origin move past the
                    // served version?
                    let staleness = match trace.events().get(version_index + 1) {
                        Some(next) if next.at <= now => now.since(next.at),
                        _ => Duration::ZERO,
                    };
                    stats.total_staleness = stats.total_staleness.saturating_add(staleness);
                    stats.worst_staleness = stats.worst_staleness.max(staleness);
                }
            }
            None => {
                // Nothing fetched yet: a genuine miss to the origin.
                stats.misses += 1;
            }
        }

        let gap = Duration::from_secs_f64(rng.exponential(workload.mean_gap.as_secs_f64()));
        queue.schedule_after(gap.max(Duration::from_millis(1)), ());
    }
    stats
}

/// Derives the proxy-cache view at `at` from a poll log (exposed for
/// tests and tooling): the version index most recently refreshed.
pub fn cached_version_at(log: &PollLog, at: Timestamp) -> Option<usize> {
    log.records()
        .iter()
        .take_while(|r| r.at <= at)
        .filter_map(|r| match r.outcome {
            PollOutcome::Refreshed { version_index } => Some(version_index),
            PollOutcome::NotModified => None,
        })
        .last()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{run_temporal, TemporalPolicy, TemporalSimConfig};
    use mutcon_core::limd::LimdConfig;
    use mutcon_traces::generator::NewsTraceBuilder;

    fn setup(delta_min: u64) -> (OriginServer, BTreeMap<ObjectId, PollLog>, Timestamp) {
        let mut origin = OriginServer::new();
        let mut ids = Vec::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            let id = ObjectId::new(*name);
            let trace = NewsTraceBuilder::new(*name, Duration::from_hours(6), 30 + i * 10)
                .seed(500 + i as u64)
                .build()
                .unwrap();
            origin.host(id.clone(), trace);
            ids.push(id);
        }
        let until = Timestamp::ZERO + Duration::from_hours(6);
        let out = run_temporal(
            &origin,
            &ids,
            &TemporalSimConfig {
                policy: TemporalPolicy::Limd(
                    LimdConfig::builder(Duration::from_mins(delta_min))
                        .build()
                        .unwrap(),
                ),
                mutual: None,
                until,
            },
        );
        (origin, out.logs, until)
    }

    fn workload(until: Timestamp) -> ClientWorkload {
        ClientWorkload {
            mean_gap: Duration::from_secs(30),
            skew: 1.0,
            seed: 7,
            until,
        }
    }

    #[test]
    fn mostly_hits_once_warm() {
        let (origin, logs, until) = setup(10);
        let stats = run_client_workload(&origin, &logs, &workload(until));
        assert!(stats.hits > 100, "expected many hits, got {}", stats.hits);
        // One miss per object at most (first touch), since the refresher
        // keeps everything cached from t=0.
        assert!(stats.misses <= 3, "unexpected misses: {}", stats.misses);
        assert!(stats.hit_ratio() > 0.95);
    }

    #[test]
    fn tighter_delta_means_fresher_responses() {
        let (origin, logs_tight, until) = setup(2);
        let tight = run_client_workload(&origin, &logs_tight, &workload(until));
        let (origin_loose, logs_loose, _) = setup(40);
        let loose = run_client_workload(&origin_loose, &logs_loose, &workload(until));
        assert!(
            tight.mean_staleness() <= loose.mean_staleness(),
            "Δ=2min staleness {} should not exceed Δ=40min staleness {}",
            tight.mean_staleness(),
            loose.mean_staleness()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (origin, logs, until) = setup(10);
        let a = run_client_workload(&origin, &logs, &workload(until));
        let b = run_client_workload(&origin, &logs, &workload(until));
        assert_eq!(a, b);
        let mut other = workload(until);
        other.seed = 8;
        let c = run_client_workload(&origin, &logs, &other);
        assert_ne!(a, c);
    }

    #[test]
    fn cached_version_lookup() {
        let (_, logs, until) = setup(10);
        let log = logs.values().next().unwrap();
        // Before the first poll nothing is cached.
        assert_eq!(cached_version_at(log, Timestamp::ZERO - Duration::ZERO), Some(0));
        // At the end, some version is cached and indices never decrease.
        let mut prev = 0;
        for r in log.records() {
            if let Some(v) = cached_version_at(log, r.at) {
                assert!(v >= prev);
                prev = v;
            }
        }
        assert!(cached_version_at(log, until).is_some());
    }

    #[test]
    fn stats_helpers() {
        let mut s = ClientStats::default();
        assert_eq!(s.hit_ratio(), 1.0);
        assert_eq!(s.mean_staleness(), Duration::ZERO);
        s.hits = 3;
        s.misses = 1;
        s.total_staleness = Duration::from_secs(9);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.mean_staleness(), Duration::from_secs(3));
    }
}
