//! Event-driven simulation loops.
//!
//! Drivers wire the `mutcon-core` algorithms to the trace-driven origin
//! through the `mutcon-sim` event queue and record every poll in a
//! [`PollLog`](crate::log::PollLog):
//!
//! * [`temporal`] — Δt consistency (periodic baseline or LIMD) with
//!   optional Mt coordination (triggered polls / rate heuristic) across a
//!   group of objects.
//! * [`value`] — Δv consistency (adaptive TTR) and the two Mv approaches
//!   (virtual object, partitioned tolerance) over a pair of valued
//!   objects.
//! * [`clients`] — client request streams against the cache (hit ratios
//!   and user-visible staleness).
//! * [`push`] — the ideal server-push baselines of §2 footnote 1
//!   (extension beyond the paper's proxy-only scope).

pub mod clients;
pub mod push;
pub mod temporal;
pub mod value;

pub use clients::{run_client_workload, ClientStats, ClientWorkload};
pub use push::{push_delta_t, push_every_update};
pub use temporal::{run_temporal, MutualSetup, TemporalPolicy, TemporalSimConfig, TemporalSimOutput};
pub use value::{
    run_value_individual, run_value_pair, ValuePairOutput, ValuePairPolicy,
};
