//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each function sweeps one knob while holding the paper's defaults for
//! everything else, reporting polls and fidelity so the knob's effect is
//! isolated:
//!
//! * [`limd_aggressiveness`] — the `l`/`m` trade-off of §3.1 ("the
//!   approach can be made optimistic … or conservative").
//! * [`violation_detection`] — plain `Last-Modified` vs the §5.1
//!   modification-history extension (exact Figure 1(b) detection).
//! * [`heuristic_threshold`] — how strict "approximately the same or
//!   faster rate" is in the Mt heuristic.
//! * [`alpha_blend`] — the Equation 10 α: biasing the value-domain TTR
//!   towards the smallest TTR ever required.
//!
//! Like the figure sweeps, every grid fans its independent runs out
//! across cores via [`mutcon_sim::parallel::run_all`]; rows come back in
//! grid order, identical to a serial run.

use mutcon_core::limd::DecreaseFactor;
use mutcon_sim::parallel::run_all;
use mutcon_core::mutual::temporal::MtPolicy;
use mutcon_core::object::ObjectId;
use mutcon_core::time::Duration;
use mutcon_core::value::Value;
use mutcon_traces::UpdateTrace;

use crate::drivers::{run_temporal, MutualSetup, TemporalPolicy, TemporalSimConfig};
use crate::experiment::{Fig3Config, Fig7Config};
use crate::metrics;
use crate::origin::{HistorySupport, OriginServer};

/// One configuration's outcome in an ablation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Human-readable description of the knob setting.
    pub setting: String,
    /// Total polls.
    pub polls: u64,
    /// Fidelity by violations (Equation 13).
    pub fidelity_violations: f64,
    /// Fidelity by out-of-sync time (Equation 14).
    pub fidelity_time: f64,
}

fn run_limd_once(trace: &UpdateTrace, delta: Duration, config: &Fig3Config) -> AblationRow {
    let id = ObjectId::new(trace.name());
    let mut origin = OriginServer::new().with_history(config.history);
    origin.host(id.clone(), trace.clone());
    let out = run_temporal(
        &origin,
        std::slice::from_ref(&id),
        &TemporalSimConfig {
            policy: TemporalPolicy::Limd(limd_from(config, delta)),
            mutual: None,
            until: trace.end(),
        },
    );
    let stats = metrics::individual_temporal(trace, &out.logs[&id], delta, trace.end());
    AblationRow {
        setting: String::new(),
        polls: stats.polls(),
        fidelity_violations: stats.fidelity_by_violations(),
        fidelity_time: stats.fidelity_by_time(),
    }
}

fn limd_from(config: &Fig3Config, delta: Duration) -> mutcon_core::limd::LimdConfig {
    mutcon_core::limd::LimdConfig::builder(delta)
        .linear_increase(config.linear_increase)
        .epsilon(config.epsilon)
        .ttr_max(config.ttr_max.max(delta))
        .decrease(config.decrease)
        .build()
        .expect("ablation parameters are valid")
}

/// §3.1 aggressiveness: optimistic (large `l`) to conservative (small
/// `l`, harsh fixed `m`), at a fixed Δ.
pub fn limd_aggressiveness(trace: &UpdateTrace, delta: Duration) -> Vec<AblationRow> {
    let variants: [(&str, f64, DecreaseFactor); 4] = [
        ("optimistic   l=0.5, adaptive m", 0.5, DecreaseFactor::PAPER),
        ("paper        l=0.2, adaptive m", 0.2, DecreaseFactor::PAPER),
        ("conservative l=0.05, adaptive m", 0.05, DecreaseFactor::PAPER),
        ("harsh        l=0.2, fixed m=0.2", 0.2, DecreaseFactor::Fixed(0.2)),
    ];
    run_all(variants.to_vec(), |(label, l, m)| {
        let config = Fig3Config {
            linear_increase: l,
            decrease: m,
            ..Fig3Config::default()
        };
        AblationRow {
            setting: label.to_owned(),
            ..run_limd_once(trace, delta, &config)
        }
    })
}

/// Plain HTTP vs the §5.1 modification-history extension.
pub fn violation_detection(trace: &UpdateTrace, delta: Duration) -> Vec<AblationRow> {
    let variants = vec![
        ("last-modified only (plain HTTP)", HistorySupport::None),
        ("modification history (§5.1)", HistorySupport::Full),
    ];
    run_all(variants, |(label, history)| {
        let config = Fig3Config {
            history,
            ..Fig3Config::default()
        };
        AblationRow {
            setting: label.to_owned(),
            ..run_limd_once(trace, delta, &config)
        }
    })
}

/// The Mt heuristic's rate-comparability threshold, from "trigger almost
/// everything" (0.25) to "only strictly faster" (1.5).
pub fn heuristic_threshold(
    trace_a: &UpdateTrace,
    trace_b: &UpdateTrace,
    delta: Duration,
    mutual_delta: Duration,
) -> Vec<AblationRow> {
    let ids = [ObjectId::new(trace_a.name()), ObjectId::new(trace_b.name())];
    let until = trace_a.end().min(trace_b.end());
    run_all(vec![0.25, 0.5, 0.75, 1.0, 1.5], |threshold| {
            let mut origin = OriginServer::new();
            origin.host(ids[0].clone(), trace_a.clone());
            origin.host(ids[1].clone(), trace_b.clone());
            let out = run_temporal(
                &origin,
                &ids,
                &TemporalSimConfig {
                    policy: TemporalPolicy::Limd(limd_from(&Fig3Config::default(), delta)),
                    mutual: Some(MutualSetup {
                        delta: mutual_delta,
                        policy: MtPolicy::RateHeuristic { threshold },
                    }),
                    until,
                },
            );
            let stats = metrics::mutual_temporal(
                trace_a,
                &out.logs[&ids[0]],
                trace_b,
                &out.logs[&ids[1]],
                mutual_delta,
                until,
            );
            AblationRow {
                setting: format!("threshold = {threshold:.2}"),
                polls: stats.polls(),
                fidelity_violations: stats.fidelity_by_violations(),
                fidelity_time: stats.fidelity_by_time(),
            }
    })
}

/// The Equation 10 α-blend in the value domain: α = 1 ignores the
/// observed minimum; α = 0 always uses it (most conservative).
pub fn alpha_blend(
    trace_a: &UpdateTrace,
    trace_b: &UpdateTrace,
    delta: Value,
) -> Vec<AblationRow> {
    use crate::drivers::{run_value_pair, ValuePairPolicy};
    use mutcon_core::functions::ValueFunction;
    use mutcon_core::mutual::value::VirtualObjectConfig;

    let ids = [ObjectId::new(trace_a.name()), ObjectId::new(trace_b.name())];
    let until = trace_a.end().min(trace_b.end());
    run_all(vec![1.0, 0.75, 0.5, 0.25, 0.0], |alpha| {
            let mut origin = OriginServer::new();
            origin.host(ids[0].clone(), trace_a.clone());
            origin.host(ids[1].clone(), trace_b.clone());
            let defaults = Fig7Config::default();
            let cfg = VirtualObjectConfig::builder(ValueFunction::Difference, delta)
                .smoothing(defaults.smoothing)
                .alpha(alpha)
                .ttr_bounds(defaults.ttr_min, defaults.ttr_max)
                .build()
                .expect("ablation parameters are valid");
            let out = run_value_pair(
                &origin,
                &ids[0],
                &ids[1],
                &ValuePairPolicy::Virtual(cfg),
                until,
            );
            let stats = metrics::mutual_value(
                trace_a,
                &out.log_a,
                trace_b,
                &out.log_b,
                ValueFunction::Difference,
                delta,
                until,
            );
            AblationRow {
                setting: format!("alpha = {alpha:.2}"),
                polls: stats.polls(),
                fidelity_violations: stats.fidelity_by_violations(),
                fidelity_time: stats.fidelity_by_time(),
            }
    })
}

/// Renders ablation rows as an aligned text table.
pub fn render(title: &str, rows: &[AblationRow]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{title}\n");
    writeln!(
        out,
        "{:<36} {:>7} {:>15} {:>10}",
        "setting", "polls", "fid(violations)", "fid(time)"
    )
    .expect("writing to String cannot fail");
    for r in rows {
        writeln!(
            out,
            "{:<36} {:>7} {:>15.3} {:>10.3}",
            r.setting, r.polls, r.fidelity_violations, r.fidelity_time
        )
        .expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_traces::generator::{NewsTraceBuilder, StockTraceBuilder};

    fn news(name: &str, updates: usize, seed: u64) -> UpdateTrace {
        NewsTraceBuilder::new(name, Duration::from_hours(12), updates)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn aggressiveness_orders_polls() {
        let trace = news("n", 50, 1);
        let rows = limd_aggressiveness(&trace, Duration::from_mins(5));
        assert_eq!(rows.len(), 4);
        let optimistic = &rows[0];
        let conservative = &rows[2];
        // The conservative setting polls at least as often and is at
        // least as faithful.
        assert!(conservative.polls >= optimistic.polls);
        assert!(conservative.fidelity_violations >= optimistic.fidelity_violations - 0.05);
        let rendered = render("test", &rows);
        assert!(rendered.contains("optimistic"));
    }

    #[test]
    fn history_never_hurts() {
        let trace = news("n", 80, 2);
        let rows = violation_detection(&trace, Duration::from_mins(5));
        assert_eq!(rows.len(), 2);
        assert!(rows[1].fidelity_violations >= rows[0].fidelity_violations - 1e-9);
    }

    #[test]
    fn threshold_monotonicity_in_polls() {
        let a = news("a", 80, 3);
        let b = news("b", 30, 4);
        let rows = heuristic_threshold(
            &a,
            &b,
            Duration::from_mins(10),
            Duration::from_mins(2),
        );
        assert_eq!(rows.len(), 5);
        // Stricter thresholds trigger fewer polls (non-strictly).
        assert!(rows.last().unwrap().polls <= rows[0].polls);
    }

    #[test]
    fn alpha_zero_is_most_conservative() {
        let a = StockTraceBuilder::new("hi", Duration::from_mins(45), 200, 160.0, 170.0)
            .seed(5)
            .build()
            .unwrap();
        let b = StockTraceBuilder::new("lo", Duration::from_mins(45), 80, 35.0, 37.0)
            .seed(6)
            .build()
            .unwrap();
        let rows = alpha_blend(&a, &b, Value::new(0.6));
        assert_eq!(rows.len(), 5);
        let alpha1 = &rows[0];
        let alpha0 = &rows[4];
        assert!(
            alpha0.polls >= alpha1.polls,
            "α=0 should poll at least as much: {} vs {}",
            alpha0.polls,
            alpha1.polls
        );
    }
}
