//! Plain-text rendering of experiment results.
//!
//! The `repro` binary (in `mutcon-bench`) prints these tables; each
//! mirrors one table or figure of the paper so runs can be diffed against
//! `EXPERIMENTS.md`.

use std::fmt::Write as _;

use mutcon_traces::stats::TraceSummary;
use mutcon_traces::UpdateTrace;

use crate::experiment::{Fig3Row, Fig4Output, Fig5Row, Fig6Output, Fig7Row, Fig8Output};

/// Renders rows of Table 2 (temporal workload characteristics).
pub fn table2(summaries: &[TraceSummary]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<18} {:>12} {:>9} {:>18}",
        "Trace", "Duration(h)", "Updates", "Avg gap (min)"
    )
    .expect("writing to String cannot fail");
    for s in summaries {
        let gap = s
            .mean_update_gap
            .map_or("-".to_owned(), |g| format!("{:.1}", g.as_mins_f64()));
        writeln!(
            out,
            "{:<18} {:>12.1} {:>9} {:>18}",
            s.name,
            s.duration.as_secs_f64() / 3_600.0,
            s.updates,
            gap
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Renders rows of Table 3 (value workload characteristics).
pub fn table3(summaries: &[TraceSummary]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<10} {:>12} {:>9} {:>11} {:>11}",
        "Stock", "Duration(h)", "Updates", "Min ($)", "Max ($)"
    )
    .expect("writing to String cannot fail");
    for s in summaries {
        let (lo, hi) = s
            .value_range
            .map_or(("-".to_owned(), "-".to_owned()), |(lo, hi)| {
                (format!("{:.2}", lo.as_f64()), format!("{:.2}", hi.as_f64()))
            });
        writeln!(
            out,
            "{:<10} {:>12.1} {:>9} {:>11} {:>11}",
            s.name,
            s.duration.as_secs_f64() / 3_600.0,
            s.updates,
            lo,
            hi
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Renders the Figure 3 sweep (polls + both fidelity metrics vs Δ).
pub fn fig3(trace: &UpdateTrace, rows: &[Fig3Row]) -> String {
    let mut out = format!("Figure 3 — LIMD vs baseline, {} trace\n", trace.name());
    writeln!(
        out,
        "{:>9} {:>15} {:>11} {:>14} {:>13}",
        "Δ (min)", "baseline polls", "LIMD polls", "fid(violations)", "fid(time)"
    )
    .expect("writing to String cannot fail");
    for r in rows {
        writeln!(
            out,
            "{:>9.0} {:>15} {:>11} {:>14.3} {:>13.3}",
            r.delta.as_mins_f64(),
            r.baseline_polls,
            r.limd_polls,
            r.limd_fidelity_violations,
            r.limd_fidelity_time
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Renders the Figure 4 timelines (update counts and TTR trajectory).
pub fn fig4(out4: &Fig4Output) -> String {
    let mut out = String::from("Figure 4(a) — updates per window\n");
    for w in &out4.update_counts {
        writeln!(out, "{:>10.1} h {:>6}", w.start.as_secs_f64() / 3_600.0, w.count)
            .expect("writing to String cannot fail");
    }
    out.push_str("\nFigure 4(b) — TTR after each poll\n");
    for (t, ttr) in &out4.ttr {
        writeln!(
            out,
            "{:>10.1} h {:>8.1} min",
            t.as_secs_f64() / 3_600.0,
            ttr.as_mins_f64()
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Renders the Figure 5 sweep (three Mt policies vs δ).
pub fn fig5(rows: &[Fig5Row]) -> String {
    let mut out = String::from("Figure 5 — mutual consistency in the temporal domain\n");
    writeln!(
        out,
        "{:>9} {:>15} {:>15} {:>15} {:>10} {:>10} {:>10}",
        "δ (min)", "baseline polls", "triggered", "heuristic", "fid(base)", "fid(trig)", "fid(heur)"
    )
    .expect("writing to String cannot fail");
    for r in rows {
        writeln!(
            out,
            "{:>9.0} {:>15} {:>15} {:>15} {:>10.3} {:>10.3} {:>10.3}",
            r.mutual_delta.as_mins_f64(),
            r.baseline.polls,
            r.triggered.polls,
            r.heuristic.polls,
            r.baseline.fidelity,
            r.triggered.fidelity,
            r.heuristic.fidelity
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Renders the Figure 6 timelines (rate ratio and extra polls).
pub fn fig6(out6: &Fig6Output) -> String {
    let mut out = String::from("Figure 6 — heuristic adaptivity\n");
    writeln!(out, "{:>10} {:>12} {:>12}", "window (h)", "rate ratio", "extra polls")
        .expect("writing to String cannot fail");
    for (r, e) in out6.rate_ratio.iter().zip(&out6.extra_polls) {
        let ratio = r.1.map_or("-".to_owned(), |v| format!("{v:.2}"));
        writeln!(
            out,
            "{:>10.1} {:>12} {:>12}",
            r.0.as_secs_f64() / 3_600.0,
            ratio,
            e.count
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Renders the Figure 7 sweep (adaptive vs partitioned Mv).
pub fn fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::from("Figure 7 — mutual consistency in the value domain\n");
    writeln!(
        out,
        "{:>8} {:>15} {:>15} {:>12} {:>12}",
        "δ ($)", "adaptive polls", "partitioned", "fid(adapt)", "fid(part)"
    )
    .expect("writing to String cannot fail");
    for r in rows {
        writeln!(
            out,
            "{:>8.2} {:>15} {:>15} {:>12.3} {:>12.3}",
            r.delta.as_f64(),
            r.adaptive_polls,
            r.partitioned_polls,
            r.adaptive_fidelity,
            r.partitioned_fidelity
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Renders the Figure 8 step functions (subsampled to at most
/// `max_points` rows per approach).
pub fn fig8(out8: &Fig8Output, max_points: usize) -> String {
    let mut out = String::from("Figure 8 — f at proxy vs server (δ = $0.6)\n");
    for (label, points) in [("adaptive", &out8.adaptive), ("partitioned", &out8.partitioned)] {
        writeln!(out, "\n[{label}]").expect("writing to String cannot fail");
        writeln!(out, "{:>10} {:>12} {:>12}", "t (s)", "server f", "proxy f")
            .expect("writing to String cannot fail");
        let stride = points.len().div_ceil(max_points.max(1)).max(1);
        for p in points.iter().step_by(stride) {
            writeln!(
                out,
                "{:>10.0} {:>12.2} {:>12.2}",
                p.at.as_secs_f64(),
                p.server,
                p.proxy
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{
        individual_temporal_sweep, mutual_temporal_sweep, mutual_value_sweep, ttr_timeline,
        value_timeline, Fig3Config, Fig7Config,
    };
    use mutcon_core::time::{Duration, Timestamp};
    use mutcon_core::value::Value;
    use mutcon_traces::generator::{NewsTraceBuilder, StockTraceBuilder};
    use mutcon_traces::stats::summarize;

    #[test]
    fn tables_render() {
        let news = NewsTraceBuilder::new("n", Duration::from_hours(6), 20)
            .seed(1)
            .build()
            .unwrap();
        let stock = StockTraceBuilder::new("s", Duration::from_mins(30), 50, 10.0, 11.0)
            .seed(2)
            .build()
            .unwrap();
        let t2 = table2(&[summarize(&news)]);
        assert!(t2.contains("n"));
        assert!(t2.contains("20"));
        let t3 = table3(&[summarize(&stock)]);
        assert!(t3.contains("50"));
        assert!(t3.contains("10."));
    }

    #[test]
    fn figures_render_without_panic() {
        let news = NewsTraceBuilder::new("n", Duration::from_hours(6), 30)
            .seed(3)
            .build()
            .unwrap();
        let news_b = NewsTraceBuilder::new("m", Duration::from_hours(6), 20)
            .seed(4)
            .build()
            .unwrap();
        let cfg = Fig3Config::default();
        let rows = individual_temporal_sweep(&news, &[Duration::from_mins(10)], &cfg);
        assert!(fig3(&news, &rows).contains("LIMD"));

        let out4 = ttr_timeline(&news, Duration::from_mins(10), Duration::from_hours(2), &cfg);
        assert!(fig4(&out4).contains("TTR"));

        let rows5 = mutual_temporal_sweep(
            &news,
            &news_b,
            Duration::from_mins(10),
            &[Duration::from_mins(5)],
            &cfg,
        );
        assert!(fig5(&rows5).contains("triggered"));

        let a = StockTraceBuilder::new("hi", Duration::from_mins(30), 120, 160.0, 170.0)
            .seed(5)
            .build()
            .unwrap();
        let b = StockTraceBuilder::new("lo", Duration::from_mins(30), 40, 35.0, 37.0)
            .seed(6)
            .build()
            .unwrap();
        let rows7 = mutual_value_sweep(&a, &b, &[Value::new(1.0)], &Fig7Config::default());
        assert!(fig7(&rows7).contains("partitioned"));

        let out8 = value_timeline(
            &a,
            &b,
            Value::new(0.6),
            Timestamp::from_secs(0),
            Timestamp::from_secs(600),
            &Fig7Config::default(),
        );
        let rendered = fig8(&out8, 20);
        assert!(rendered.contains("adaptive"));
        assert!(rendered.lines().count() < 60);
    }
}
