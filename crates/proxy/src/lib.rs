//! # mutcon-proxy — the simulated proxy cache and experiment harness
//!
//! This crate is the paper's §6 methodology made executable: "an
//! event-based simulator \[of\] a proxy cache", with an infinitely large
//! cache, fixed network latency, and user-specified tolerances Δ and δ.
//!
//! * [`origin`] — the trace-driven origin server: answers
//!   `If-Modified-Since` polls from an [`UpdateTrace`], optionally with
//!   the §5.1 modification-history extension.
//! * [`cache`] — the proxy's object store (infinite, per the paper).
//! * [`log`] — per-object poll logs, the raw material of every metric.
//! * [`drivers`] — event-driven simulation loops wiring the `mutcon-core`
//!   algorithms to the origin: temporal (periodic/LIMD ± Mt coordination)
//!   and value (adaptive TTR, virtual-object, partitioned).
//! * [`metrics`] — *ground-truth* fidelity evaluation: unlike the proxy,
//!   the evaluator sees the full server history, so violations and
//!   out-of-sync time are exact (including the Figure 1(b) cases the
//!   proxy itself cannot observe).
//! * [`experiment`] — parameter sweeps that regenerate every figure of
//!   the evaluation; [`report`] renders them as tables.
//!
//! ```
//! use mutcon_core::time::Duration;
//! use mutcon_proxy::experiment::{individual_temporal_sweep, Fig3Config};
//! use mutcon_traces::NamedTrace;
//!
//! let trace = NamedTrace::CnnFn.generate();
//! let rows = individual_temporal_sweep(&trace, &[Duration::from_mins(10)], &Fig3Config::default());
//! assert_eq!(rows.len(), 1);
//! // LIMD never polls more than the every-Δ baseline.
//! assert!(rows[0].limd_polls <= rows[0].baseline_polls);
//! ```
//!
//! [`UpdateTrace`]: mutcon_traces::UpdateTrace

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod cache;
pub mod drivers;
pub mod experiment;
pub mod log;
pub mod metrics;
pub mod origin;
pub mod report;

pub use log::{PollLog, PollOutcome, PollRecord};
pub use origin::{HistorySupport, OriginResponse, OriginServer};
