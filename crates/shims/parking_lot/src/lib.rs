//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps the std locks behind parking_lot's non-poisoning API (the only
//! part the workspace uses). A poisoned std lock — a panic while holding
//! the guard — aborts via `expect`, which matches parking_lot closely
//! enough for the live proxy's usage: its critical sections contain no
//! panicking code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Tries to acquire the write guard without blocking; `None` if any
    /// guard is currently held. The live cache uses this for
    /// opportunistic LRU touches on the read path.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

/// A mutual-exclusion lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn rwlock_try_write() {
        let lock = RwLock::new(1);
        {
            let _read = lock.read();
            assert!(lock.try_write().is_none(), "reader blocks try_write");
        }
        *lock.try_write().expect("uncontended") += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new("x");
        assert_eq!(*m.lock(), "x");
        assert_eq!(m.into_inner(), "x");
    }
}
