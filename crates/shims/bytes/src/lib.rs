//! Minimal offline stand-in for the `bytes` crate.
//!
//! The workspace builds without network access, so instead of the real
//! crate this shim provides just the API surface `mutcon-http` and
//! `mutcon-live` use: an immutable, cheaply-cloneable [`Bytes`] and a
//! growable read buffer [`BytesMut`]. Semantics match the real crate for
//! that subset; swap in the real dependency by deleting this shim and
//! pointing Cargo at crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Creates a buffer from a static slice (copies, unlike the real
    /// crate, which is fine for the small literals used here).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes(Arc::from(data))
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(data: BytesMut) -> Self {
        data.freeze()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

/// A growable byte buffer used for socket reads.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Appends `data` to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Removes and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.0.len(), "split_to out of bounds");
        let rest = self.0.split_off(at);
        BytesMut(std::mem::replace(&mut self.0, rest))
    }

    /// Discards the first `cnt` bytes in place.
    ///
    /// Unlike [`BytesMut::split_to`], which carves the prefix into a new
    /// allocation, this just shifts the tail down — the buffer's capacity
    /// is retained, so hot parse loops can consume without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > len`.
    pub fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.0.len(), "advance out of bounds");
        self.0.drain(..cnt);
    }

    /// Wraps an existing `Vec`, keeping its contents and capacity.
    /// Used to recycle buffers through a pool.
    pub fn from_vec(vec: Vec<u8>) -> Self {
        BytesMut(vec)
    }

    /// Unwraps into the backing `Vec`, keeping contents and capacity.
    pub fn into_vec(self) -> Vec<u8> {
        self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        let c = b.clone();
        assert_eq!(c, b);
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from("hi"), Bytes::from(vec![b'h', b'i']));
        assert!(format!("{:?}", Bytes::from("a\n")).contains("\\n"));
    }

    #[test]
    fn bytes_mut_split_to() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"abcdef");
        let head = buf.split_to(4);
        assert_eq!(&head[..], b"abcd");
        assert_eq!(&buf[..], b"ef");
        assert_eq!(buf.split_to(0).len(), 0);
        assert_eq!(&buf.freeze()[..], b"ef");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn split_to_rejects_overrun() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"ab");
        let _ = buf.split_to(3);
    }

    #[test]
    fn advance_consumes_in_place() {
        let mut buf = BytesMut::with_capacity(64);
        buf.extend_from_slice(b"abcdef");
        let cap = buf.0.capacity();
        buf.advance(4);
        assert_eq!(&buf[..], b"ef");
        assert_eq!(buf.0.capacity(), cap, "advance must not reallocate");
        buf.advance(2);
        assert!(buf.is_empty());
        buf.advance(0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn advance_rejects_overrun() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"ab");
        buf.advance(3);
    }

    #[test]
    fn vec_round_trip_keeps_capacity() {
        let mut vec = Vec::with_capacity(128);
        vec.extend_from_slice(b"xy");
        let buf = BytesMut::from_vec(vec);
        assert_eq!(&buf[..], b"xy");
        let back = buf.into_vec();
        assert_eq!(back, b"xy");
        assert!(back.capacity() >= 128);
    }
}
