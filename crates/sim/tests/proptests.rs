// Property tests require the external `proptest` crate, which is not
// vendored in this offline workspace; enable with `--features proptests`
// in an environment that can reach a cargo registry.
#![cfg(feature = "proptests")]
//! Property-based tests of the event queue's ordering guarantees.

use proptest::prelude::*;

use mutcon_core::time::Timestamp;
use mutcon_sim::queue::EventQueue;

proptest! {
    /// Events always come out in non-decreasing time order, FIFO within
    /// an instant, regardless of the scheduling order.
    #[test]
    fn delivery_is_time_ordered(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(Timestamp::from_millis(t), i);
        }
        let mut prev_time = Timestamp::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_time = None;
        while let Some((at, idx)) = q.pop() {
            prop_assert!(at >= prev_time);
            // FIFO within an instant: indices increase.
            if last_time == Some(at) {
                prop_assert!(seen_at_time.last().is_none_or(|&p| p < idx));
                seen_at_time.push(idx);
            } else {
                seen_at_time.clear();
                seen_at_time.push(idx);
            }
            last_time = Some(at);
            prev_time = at;
            prop_assert_eq!(at, Timestamp::from_millis(times[idx]));
        }
        prop_assert_eq!(q.executed(), times.len() as u64);
    }

    /// Cancellation removes exactly the cancelled events.
    #[test]
    fn cancellation_is_precise(
        times in prop::collection::vec(0u64..10_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule_at(Timestamp::from_millis(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push(i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, idx)) = q.pop() {
            delivered.push(idx);
        }
        delivered.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(delivered, expected);
    }

    /// run_until delivers exactly the events at or before the horizon.
    #[test]
    fn run_until_respects_horizon(
        times in prop::collection::vec(0u64..10_000, 1..100),
        horizon in 0u64..12_000,
    ) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule_at(Timestamp::from_millis(t), t);
        }
        let mut seen = Vec::new();
        q.run_until(Timestamp::from_millis(horizon), |_, _, t| seen.push(t));
        let expected = times.iter().filter(|&&t| t <= horizon).count();
        prop_assert_eq!(seen.len(), expected);
        prop_assert!(q.now() >= Timestamp::from_millis(horizon.min(10_000)));
    }
}
