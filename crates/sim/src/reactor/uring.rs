//! A raw-syscall io_uring reactor backend.
//!
//! No `libc`, no `io-uring` crate: `io_uring_setup(2)`/`io_uring_enter(2)`
//! go through the C library's `syscall(3)` entry point and the SQ/CQ
//! rings are mmap'd by hand. Readiness comes from **multishot**
//! `POLL_ADD` SQEs (one per registered fd, re-armed only when interest
//! changes) and **multishot** `ACCEPT` SQEs on listeners; the data plane
//! (`recv`/`send`/`writev`) is submitted as SQEs that complete *inline*:
//! `MSG_DONTWAIT` (and `O_NONBLOCK` on every socket we touch) makes the
//! kernel finish them in the submission syscall instead of poll-arming,
//! so a `read` here has exactly the nonblocking-syscall semantics the
//! engine expects and both backends stay byte-identical by construction.
//!
//! Ring layout (single-mmap feature, required):
//!
//! ```text
//!   mmap #1 (IORING_OFF_SQ_RING): [ SQ head | SQ tail | masks | flags |
//!                                   SQ index array | CQ head | CQ tail |
//!                                   CQE array ]
//!   mmap #2 (IORING_OFF_SQES):    [ 64-byte SQE slots ×  sq_entries ]
//! ```
//!
//! All `unsafe` stays in this module, like the sibling `sys` module.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::c_void;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use super::backend::{Backend, BackendCounters, BackendKind};
use super::{accept_nonblocking, sys, Event, Interest, InterestLedger, Waker};

const IORING_SETUP_CQSIZE: u32 = 1 << 3;
const IORING_SETUP_CLAMP: u32 = 1 << 4;

const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
const IORING_FEAT_NODROP: u32 = 1 << 1;

const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_SQES: i64 = 0x1000_0000;

const IORING_ENTER_GETEVENTS: u32 = 1 << 0;

const OP_WRITEV: u8 = 2;
const OP_POLL_ADD: u8 = 6;
const OP_TIMEOUT: u8 = 11;
const OP_ACCEPT: u8 = 13;
const OP_ASYNC_CANCEL: u8 = 14;
const OP_SEND: u8 = 26;
const OP_RECV: u8 = 27;

/// Multishot flag for `POLL_ADD`, carried in `sqe.len`.
const POLL_ADD_MULTI: u32 = 1 << 0;
/// Multishot flag for `ACCEPT`, carried in `sqe.ioprio`.
const ACCEPT_MULTISHOT: u16 = 1 << 0;
/// The multishot op stays armed after this CQE.
const CQE_F_MORE: u32 = 1 << 1;

const MSG_DONTWAIT: u32 = 0x40;

const EAGAIN: i32 = 11;
const EBUSY: i32 = 16;
const EINVAL: i32 = 22;
const ECANCELED: i32 = 125;

/// CQE `user_data` classes (top byte).
const CLASS_POLL: u8 = 1;
const CLASS_ACCEPT: u8 = 2;
const CLASS_DATA: u8 = 3;
const CLASS_TIMEOUT: u8 = 4;
const CLASS_CANCEL: u8 = 5;

fn pack(class: u8, gen: u32, token: usize) -> u64 {
    ((class as u64) << 56) | (((gen & 0x00ff_ffff) as u64) << 32) | (token as u64 & 0xffff_ffff)
}

fn unpack(user_data: u64) -> (u8, u32, usize) {
    (
        (user_data >> 56) as u8,
        ((user_data >> 32) & 0x00ff_ffff) as u32,
        (user_data & 0xffff_ffff) as usize,
    )
}

/// `struct io_sqring_offsets`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct SqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    user_addr: u64,
}

/// `struct io_cqring_offsets`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct CqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    user_addr: u64,
}

/// `struct io_uring_params`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct IoUringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqringOffsets,
    cq_off: CqringOffsets,
}

/// `struct io_uring_sqe` (64 bytes).
#[repr(C)]
#[derive(Clone, Copy)]
struct Sqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    op_flags: u32,
    user_data: u64,
    buf_index: u16,
    personality: u16,
    splice_fd_in: i32,
    addr3: u64,
    pad2: u64,
}

impl Sqe {
    fn zeroed() -> Sqe {
        // Only integers: all-zero is the valid NOP-shaped blank SQE.
        unsafe { std::mem::zeroed() }
    }
}

/// `struct io_uring_cqe` (16 bytes).
#[repr(C)]
#[derive(Clone, Copy)]
struct Cqe {
    user_data: u64,
    res: i32,
    flags: u32,
}

/// `struct __kernel_timespec`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct KernelTimespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// An mmap'd ring region, unmapped on drop.
struct MmapRegion {
    ptr: *mut u8,
    len: usize,
}

impl MmapRegion {
    fn map(fd: &OwnedFd, len: usize, offset: i64) -> io::Result<MmapRegion> {
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED | sys::MAP_POPULATE,
                fd.as_raw_fd(),
                offset,
            )
        };
        if ptr as isize == -1 {
            Err(io::Error::last_os_error())
        } else {
            Ok(MmapRegion {
                ptr: ptr.cast(),
                len,
            })
        }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        unsafe {
            sys::munmap(self.ptr.cast(), self.len);
        }
    }
}

/// The raw ring: fd, mapped regions, and cached pointers into them.
struct Ring {
    fd: OwnedFd,
    _ring_map: MmapRegion,
    _sqes_map: MmapRegion,
    sq_head: *const AtomicU32,
    sq_tail: *const AtomicU32,
    sq_mask: u32,
    sq_entries: u32,
    sqes: *mut Sqe,
    cq_head: *const AtomicU32,
    cq_tail: *const AtomicU32,
    cq_mask: u32,
    cqes: *const Cqe,
    /// SQEs staged since the last `enter`.
    to_submit: u32,
    pushed: u64,
    popped: u64,
}

// The raw pointers target mappings owned (and solely used) by this Ring,
// which lives on exactly one reactor thread at a time.
unsafe impl Send for Ring {}

impl Ring {
    fn new(entries: u32) -> io::Result<Ring> {
        let mut params = IoUringParams::default();
        // A deep CQ absorbs multishot accept/poll bursts between reaps.
        params.flags = IORING_SETUP_CQSIZE | IORING_SETUP_CLAMP;
        params.cq_entries = entries.saturating_mul(16);
        let ret = unsafe {
            sys::syscall(
                sys::SYS_IO_URING_SETUP,
                entries,
                &mut params as *mut IoUringParams,
            )
        };
        if ret < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = unsafe { OwnedFd::from_raw_fd(ret as RawFd) };
        if params.features & IORING_FEAT_SINGLE_MMAP == 0
            || params.features & IORING_FEAT_NODROP == 0
        {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "io_uring lacks SINGLE_MMAP/NODROP",
            ));
        }
        let sq_len = params.sq_off.array as usize + params.sq_entries as usize * 4;
        let cq_len =
            params.cq_off.cqes as usize + params.cq_entries as usize * std::mem::size_of::<Cqe>();
        let ring_map = MmapRegion::map(&fd, sq_len.max(cq_len), IORING_OFF_SQ_RING)?;
        let sqes_map = MmapRegion::map(
            &fd,
            params.sq_entries as usize * std::mem::size_of::<Sqe>(),
            IORING_OFF_SQES,
        )?;
        let base = ring_map.ptr;
        unsafe {
            // The SQ index array never changes: slot i always holds SQE i.
            let array = base.add(params.sq_off.array as usize).cast::<u32>();
            for i in 0..params.sq_entries {
                *array.add(i as usize) = i;
            }
            Ok(Ring {
                sq_head: base.add(params.sq_off.head as usize).cast(),
                sq_tail: base.add(params.sq_off.tail as usize).cast(),
                sq_mask: *base.add(params.sq_off.ring_mask as usize).cast::<u32>(),
                sq_entries: params.sq_entries,
                sqes: sqes_map.ptr.cast(),
                cq_head: base.add(params.cq_off.head as usize).cast(),
                cq_tail: base.add(params.cq_off.tail as usize).cast(),
                cq_mask: *base.add(params.cq_off.ring_mask as usize).cast::<u32>(),
                cqes: base.add(params.cq_off.cqes as usize).cast(),
                fd,
                _ring_map: ring_map,
                _sqes_map: sqes_map,
                to_submit: 0,
                pushed: 0,
                popped: 0,
            })
        }
    }

    /// Stages one SQE, flushing the ring first if it is full.
    fn push(&mut self, sqe: Sqe) -> io::Result<()> {
        loop {
            let head = unsafe { (*self.sq_head).load(Ordering::Acquire) };
            let tail = unsafe { (*self.sq_tail).load(Ordering::Relaxed) };
            if tail.wrapping_sub(head) < self.sq_entries {
                unsafe {
                    self.sqes.add((tail & self.sq_mask) as usize).write(sqe);
                    (*self.sq_tail).store(tail.wrapping_add(1), Ordering::Release);
                }
                self.to_submit += 1;
                self.pushed += 1;
                return Ok(());
            }
            self.enter(0)?;
        }
    }

    /// Submits staged SQEs and (with `min_complete > 0`) waits for
    /// completions. `EINTR` retries; `EBUSY` (CQ backlogged) returns so
    /// the caller can reap.
    fn enter(&mut self, min_complete: u32) -> io::Result<()> {
        let mut min = min_complete;
        loop {
            let ret = unsafe {
                sys::syscall(
                    sys::SYS_IO_URING_ENTER,
                    self.fd.as_raw_fd(),
                    self.to_submit,
                    min,
                    IORING_ENTER_GETEVENTS,
                    std::ptr::null::<c_void>(),
                    0usize,
                )
            };
            if ret < 0 {
                let err = io::Error::last_os_error();
                return match err.raw_os_error() {
                    Some(code) if code == super::sys::EINTR => continue,
                    Some(EBUSY) => Ok(()),
                    _ => Err(err),
                };
            }
            let consumed = (ret as u32).min(self.to_submit);
            self.to_submit -= consumed;
            if self.to_submit == 0 || consumed == 0 {
                return Ok(());
            }
            min = 0;
        }
    }

    fn pop(&mut self) -> Option<Cqe> {
        let head = unsafe { (*self.cq_head).load(Ordering::Relaxed) };
        let tail = unsafe { (*self.cq_tail).load(Ordering::Acquire) };
        if head == tail {
            return None;
        }
        let cqe = unsafe { *self.cqes.add((head & self.cq_mask) as usize) };
        unsafe { (*self.cq_head).store(head.wrapping_add(1), Ordering::Release) };
        self.popped += 1;
        Some(cqe)
    }
}

/// Whether this kernel hands out usable rings (probe + teardown).
pub(super) fn probe() -> bool {
    Ring::new(8).is_ok()
}

/// Per-token state beside the ledger cell.
#[derive(Default)]
struct Slot {
    /// Bumped on (re)registration and poll re-arm; CQEs carrying a stale
    /// generation are dropped, so deregister needs no synchronous drain.
    gen: u32,
    /// Mask the in-flight multishot poll was armed with.
    poll_armed: Option<u32>,
    accept_armed: bool,
    is_listener: bool,
    /// Multishot accept falls back to `accept4` when the kernel rejects
    /// the opcode (pre-5.19).
    accept_via_poll: bool,
    /// Connections the multishot accept delivered but the engine has not
    /// collected yet.
    accepted: VecDeque<RawFd>,
}

impl Slot {
    fn close_queued(&mut self) {
        for fd in self.accepted.drain(..) {
            drop(unsafe { OwnedFd::from_raw_fd(fd) });
        }
    }
}

/// The io_uring implementation of [`Backend`].
pub struct UringBackend {
    ring: Ring,
    ledger: InterestLedger,
    waker: Waker,
    slots: Vec<Slot>,
    listeners: Vec<usize>,
    /// Tokens whose armed state must be re-synced with desired interest.
    rearm: Vec<usize>,
    /// Events discovered while reaping outside `wait` (stale-turn CQEs).
    pending: Vec<Event>,
    /// Storage for the per-wait TIMEOUT SQE (kernel copies it at prep).
    ts: Box<KernelTimespec>,
    data_seq: u32,
}

impl UringBackend {
    /// Sets up the ring and registers the wake eventfd under
    /// `waker_token`.
    ///
    /// # Errors
    ///
    /// Ring setup failures (`ENOSYS`, `EPERM`, missing features) — the
    /// caller falls back to epoll.
    pub fn new(waker_token: usize) -> io::Result<UringBackend> {
        let ring = Ring::new(256)?;
        let waker = Waker::new()?;
        let mut backend = UringBackend {
            ring,
            ledger: InterestLedger::new(),
            waker,
            slots: Vec::new(),
            listeners: Vec::new(),
            rearm: Vec::new(),
            pending: Vec::new(),
            ts: Box::new(KernelTimespec::default()),
            data_seq: 0,
        };
        let wfd = backend.waker.as_raw_fd();
        backend.slot_reset(waker_token);
        backend.ledger.insert(waker_token, wfd, Interest::READABLE);
        Ok(backend)
    }

    fn slot_reset(&mut self, token: usize) -> &mut Slot {
        if token >= self.slots.len() {
            self.slots.resize_with(token + 1, Slot::default);
        }
        let slot = &mut self.slots[token];
        slot.close_queued();
        slot.gen = slot.gen.wrapping_add(1);
        slot.poll_armed = None;
        slot.accept_armed = false;
        slot.is_listener = false;
        slot.accept_via_poll = false;
        slot
    }

    /// Re-syncs one token's armed kernel ops with its desired interest,
    /// staging poll/accept/cancel SQEs as needed.
    fn sync_token(&mut self, token: usize) -> io::Result<()> {
        let Some(desired) = self.ledger.desired(token) else {
            return Ok(());
        };
        let fd = self.ledger.fd(token).expect("cell has fd");
        if token >= self.slots.len() {
            self.slots.resize_with(token + 1, Slot::default);
        }
        let slot = &mut self.slots[token];
        if slot.is_listener && !slot.accept_via_poll {
            let want = desired.bits() & Interest::READABLE.bits() != 0;
            if want && !slot.accept_armed {
                let mut sqe = Sqe::zeroed();
                sqe.opcode = OP_ACCEPT;
                sqe.fd = fd;
                sqe.ioprio = ACCEPT_MULTISHOT;
                sqe.op_flags = (sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC) as u32;
                sqe.user_data = pack(CLASS_ACCEPT, slot.gen, token);
                slot.accept_armed = true;
                self.ring.push(sqe)?;
            } else if !want && slot.accept_armed {
                let mut sqe = Sqe::zeroed();
                sqe.opcode = OP_ASYNC_CANCEL;
                sqe.fd = -1;
                sqe.addr = pack(CLASS_ACCEPT, slot.gen, token);
                sqe.user_data = pack(CLASS_CANCEL, 0, token);
                slot.accept_armed = false;
                self.ring.push(sqe)?;
            }
            return Ok(());
        }
        // Mask 0 still reports ERR/HUP, matching epoll's NONE semantics.
        let mask = desired.bits();
        if slot.poll_armed == Some(mask) {
            return Ok(());
        }
        if slot.poll_armed.is_some() {
            let mut cancel = Sqe::zeroed();
            cancel.opcode = OP_ASYNC_CANCEL;
            cancel.fd = -1;
            cancel.addr = pack(CLASS_POLL, slot.gen, token);
            cancel.user_data = pack(CLASS_CANCEL, 0, token);
            // New generation: CQEs from the cancelled arm are dropped.
            slot.gen = slot.gen.wrapping_add(1);
            self.ring.push(cancel)?;
        }
        let slot = &mut self.slots[token];
        let mut sqe = Sqe::zeroed();
        sqe.opcode = OP_POLL_ADD;
        sqe.fd = fd;
        sqe.len = POLL_ADD_MULTI;
        sqe.op_flags = mask;
        sqe.user_data = pack(CLASS_POLL, slot.gen, token);
        slot.poll_armed = Some(mask);
        self.ring.push(sqe)?;
        Ok(())
    }

    fn flush_interest(&mut self) -> io::Result<()> {
        let mut touched = std::mem::take(&mut self.rearm);
        self.ledger.flush(|_fd, token, _interest, _add| {
            touched.push(token);
            Ok(())
        });
        for token in touched {
            self.sync_token(token)?;
        }
        Ok(())
    }

    fn handle_cqe(&mut self, cqe: Cqe) {
        let (class, gen, token) = unpack(cqe.user_data);
        match class {
            CLASS_POLL => {
                let Some(slot) = self.slots.get_mut(token) else {
                    return;
                };
                if gen != (slot.gen & 0x00ff_ffff) {
                    return;
                }
                if cqe.flags & CQE_F_MORE == 0 {
                    slot.poll_armed = None;
                    self.rearm.push(token);
                }
                if cqe.res >= 0 {
                    let bits = cqe.res as u32;
                    let event = Event {
                        token,
                        readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    };
                    if event.readable || event.writable || event.closed {
                        self.pending.push(event);
                    }
                }
            }
            CLASS_ACCEPT => {
                let fresh = self
                    .slots
                    .get(token)
                    .is_some_and(|s| gen == (s.gen & 0x00ff_ffff));
                if cqe.res >= 0 {
                    if fresh {
                        let slot = &mut self.slots[token];
                        slot.accepted.push_back(cqe.res);
                        self.pending.push(Event {
                            token,
                            readable: true,
                            writable: false,
                            closed: false,
                        });
                    } else {
                        // A cancelled listener's connection: close it.
                        drop(unsafe { OwnedFd::from_raw_fd(cqe.res) });
                    }
                }
                if fresh && (cqe.res < 0 || cqe.flags & CQE_F_MORE == 0) {
                    let slot = &mut self.slots[token];
                    slot.accept_armed = false;
                    if cqe.res == -EINVAL {
                        // Kernel predates multishot accept: use poll
                        // readiness + accept4 for this listener instead.
                        slot.accept_via_poll = true;
                    }
                    if cqe.res != -ECANCELED {
                        self.rearm.push(token);
                    }
                }
            }
            _ => {} // timeouts, cancels, and stale data completions
        }
    }

    /// Submits one data-plane SQE and spins the ring until its CQE
    /// arrives. `MSG_DONTWAIT`/`O_NONBLOCK` make that inline in the
    /// common case; if the kernel still parks the op, a cancel bounds
    /// the wait (a cancelled op reports `-ECANCELED`, mapped to
    /// `WouldBlock`).
    fn submit_data(&mut self, sqe: Sqe) -> io::Result<usize> {
        let target = sqe.user_data;
        self.ring.push(sqe)?;
        self.ring.enter(0)?;
        let mut cancelled = false;
        loop {
            while let Some(cqe) = self.ring.pop() {
                if cqe.user_data == target {
                    return if cqe.res >= 0 {
                        Ok(cqe.res as usize)
                    } else if cqe.res == -ECANCELED || cqe.res == -EAGAIN {
                        Err(io::Error::from(io::ErrorKind::WouldBlock))
                    } else {
                        Err(io::Error::from_raw_os_error(-cqe.res))
                    };
                }
                self.handle_cqe(cqe);
            }
            if !cancelled {
                let mut cancel = Sqe::zeroed();
                cancel.opcode = OP_ASYNC_CANCEL;
                cancel.fd = -1;
                cancel.addr = target;
                cancel.user_data = pack(CLASS_CANCEL, 0, 0);
                self.ring.push(cancel)?;
                cancelled = true;
            }
            self.ring.enter(1)?;
        }
    }

    fn next_data_ud(&mut self, token: usize) -> u64 {
        self.data_seq = self.data_seq.wrapping_add(1);
        pack(CLASS_DATA, self.data_seq, token)
    }
}

impl std::fmt::Debug for UringBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UringBackend")
            .field("ring_fd", &self.ring.fd.as_raw_fd())
            .field("sq_entries", &self.ring.sq_entries)
            .field("pushed", &self.ring.pushed)
            .field("popped", &self.ring.popped)
            .finish()
    }
}

impl Drop for UringBackend {
    fn drop(&mut self) {
        // Undelivered accepted connections would otherwise leak; ring
        // teardown itself cancels every armed op.
        for slot in &mut self.slots {
            slot.close_queued();
        }
    }
}

impl Backend for UringBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::IoUring
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.slot_reset(token);
        self.ledger.insert(token, fd, interest);
        Ok(())
    }

    fn register_acceptor(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        self.slot_reset(token).is_listener = true;
        self.listeners.push(token);
        self.ledger.insert(token, fd, Interest::READABLE);
        Ok(())
    }

    fn set_interest(&mut self, token: usize, interest: Interest) {
        self.ledger.set(token, interest);
    }

    fn deregister(&mut self, token: usize) {
        if self.ledger.remove(token).is_none() {
            return;
        }
        if let Some(slot) = self.slots.get_mut(token) {
            // Armed ops hold a reference on the file: without the cancel
            // the socket would outlive its close. Fire-and-forget; the
            // generation bump drops their final CQEs.
            if slot.poll_armed.is_some() {
                let mut cancel = Sqe::zeroed();
                cancel.opcode = OP_ASYNC_CANCEL;
                cancel.fd = -1;
                cancel.addr = pack(CLASS_POLL, slot.gen, token);
                cancel.user_data = pack(CLASS_CANCEL, 0, token);
                let _ = self.ring.push(cancel);
            }
            if slot.accept_armed {
                let mut cancel = Sqe::zeroed();
                cancel.opcode = OP_ASYNC_CANCEL;
                cancel.fd = -1;
                cancel.addr = pack(CLASS_ACCEPT, slot.gen, token);
                cancel.user_data = pack(CLASS_CANCEL, 0, token);
                let _ = self.ring.push(cancel);
            }
            self.slot_reset(token);
        }
        self.listeners.retain(|&t| t != token);
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.flush_interest()?;
        // Connections queued while a paused listener resumes need no new
        // kernel event: surface them as synthetic readiness.
        for i in 0..self.listeners.len() {
            let token = self.listeners[i];
            let wants = self
                .ledger
                .desired(token)
                .is_some_and(|d| d.bits() & Interest::READABLE.bits() != 0);
            if wants && self.slots.get(token).is_some_and(|s| !s.accepted.is_empty()) {
                self.pending.push(Event {
                    token,
                    readable: true,
                    writable: false,
                    closed: false,
                });
            }
        }
        let min_complete = if !self.pending.is_empty() {
            0
        } else {
            match timeout {
                Some(d) if d.is_zero() => 0,
                Some(d) => {
                    self.ts.tv_sec = d.as_secs().min(i64::MAX as u64) as i64;
                    self.ts.tv_nsec = i64::from(d.subsec_nanos());
                    let mut sqe = Sqe::zeroed();
                    sqe.opcode = OP_TIMEOUT;
                    sqe.fd = -1;
                    sqe.addr = (&*self.ts as *const KernelTimespec) as u64;
                    sqe.len = 1;
                    sqe.user_data = pack(CLASS_TIMEOUT, 0, 0);
                    self.ring.push(sqe)?;
                    1
                }
                None => 1,
            }
        };
        self.ring.enter(min_complete)?;
        while let Some(cqe) = self.ring.pop() {
            self.handle_cqe(cqe);
        }
        events.append(&mut self.pending);
        Ok(())
    }

    fn accept(&mut self, listener: &TcpListener, token: usize) -> io::Result<TcpStream> {
        if let Some(slot) = self.slots.get_mut(token) {
            if let Some(fd) = slot.accepted.pop_front() {
                return Ok(unsafe { TcpStream::from_raw_fd(fd) });
            }
            if slot.accept_via_poll {
                return accept_nonblocking(listener);
            }
        }
        Err(io::Error::from(io::ErrorKind::WouldBlock))
    }

    fn read(&mut self, fd: RawFd, token: usize, buf: &mut [u8]) -> io::Result<usize> {
        let mut sqe = Sqe::zeroed();
        sqe.opcode = OP_RECV;
        sqe.fd = fd;
        sqe.addr = buf.as_mut_ptr() as u64;
        sqe.len = buf.len().min(u32::MAX as usize) as u32;
        sqe.op_flags = MSG_DONTWAIT;
        sqe.user_data = self.next_data_ud(token);
        self.submit_data(sqe)
    }

    fn write(&mut self, fd: RawFd, token: usize, buf: &[u8]) -> io::Result<usize> {
        let mut sqe = Sqe::zeroed();
        sqe.opcode = OP_SEND;
        sqe.fd = fd;
        sqe.addr = buf.as_ptr() as u64;
        sqe.len = buf.len().min(u32::MAX as usize) as u32;
        sqe.op_flags = MSG_DONTWAIT;
        sqe.user_data = self.next_data_ud(token);
        self.submit_data(sqe)
    }

    fn writev(&mut self, fd: RawFd, token: usize, bufs: &[&[u8]]) -> io::Result<usize> {
        assert!(bufs.len() <= super::MAX_IOVECS, "too many iovecs");
        let mut iov = [sys::IoVec {
            base: std::ptr::null(),
            len: 0,
        }; super::MAX_IOVECS];
        for (slot, buf) in iov.iter_mut().zip(bufs) {
            slot.base = buf.as_ptr().cast();
            slot.len = buf.len();
        }
        let mut sqe = Sqe::zeroed();
        sqe.opcode = OP_WRITEV;
        sqe.fd = fd;
        sqe.addr = iov.as_ptr() as u64;
        sqe.len = bufs.len() as u32;
        sqe.user_data = self.next_data_ud(token);
        // The iovec array lives on this stack frame; submit_data does not
        // return before the op's terminal CQE, so it cannot dangle.
        self.submit_data(sqe)
    }

    fn wake_handle(&self) -> Waker {
        self.waker.clone()
    }

    fn drain_waker(&self) {
        self.waker.drain();
    }

    fn counters(&self) -> BackendCounters {
        BackendCounters {
            epoll_ctl_calls: 0,
            interest_coalesced: self.ledger.coalesced,
            sqe_submitted: self.ring.pushed,
            cqe_completed: self.ring.popped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    fn skip_notice() -> bool {
        if probe() {
            return false;
        }
        eprintln!("NOTICE: kernel refuses io_uring rings; skipping io_uring test");
        true
    }

    #[test]
    fn sqe_and_cqe_abi_sizes() {
        assert_eq!(std::mem::size_of::<Sqe>(), 64);
        assert_eq!(std::mem::size_of::<Cqe>(), 16);
        assert_eq!(std::mem::size_of::<IoUringParams>(), 120);
    }

    #[test]
    fn user_data_round_trips() {
        let ud = pack(CLASS_POLL, 0xabcdef, 123_456);
        assert_eq!(unpack(ud), (CLASS_POLL, 0xabcdef, 123_456));
        // Generation wraps into its 24-bit field.
        let ud = pack(CLASS_DATA, 0x1ff_ffff, 7);
        assert_eq!(unpack(ud), (CLASS_DATA, 0xff_ffff, 7));
    }

    #[test]
    fn ring_sets_up_and_tears_down() {
        if skip_notice() {
            return;
        }
        let ring = Ring::new(8).unwrap();
        assert!(ring.sq_entries >= 8);
        drop(ring);
    }

    #[test]
    fn recv_on_empty_socket_completes_inline_with_wouldblock() {
        if skip_notice() {
            return;
        }
        let mut backend = UringBackend::new(1).unwrap();
        let listener = super::super::listen_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let accepted = loop {
            match accept_nonblocking(&listener) {
                Ok(s) => break s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2))
                }
                Err(e) => panic!("{e}"),
            }
        };
        let mut chunk = [0u8; 16];
        let start = std::time::Instant::now();
        let err = backend
            .read(accepted.as_raw_fd(), 5, &mut chunk)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "recv must not park on an empty nonblocking socket"
        );
    }

    #[test]
    fn backend_accept_read_writev_round_trip() {
        if skip_notice() {
            return;
        }
        let mut backend = UringBackend::new(1).unwrap();
        let listener = super::super::listen_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        backend.register_acceptor(listener.as_raw_fd(), 0).unwrap();

        let client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !events.iter().any(|e: &Event| e.token == 0 && e.readable) {
            assert!(std::time::Instant::now() < deadline, "no accept event");
            backend
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
        }
        let accepted = backend.accept(&listener, 0).unwrap();
        assert!(matches!(
            backend.accept(&listener, 0),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock
        ));

        let tok = 6;
        backend
            .register(accepted.as_raw_fd(), tok, Interest::READABLE)
            .unwrap();
        (&client).write_all(b"ping").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !events.iter().any(|e: &Event| e.token == tok && e.readable) {
            assert!(std::time::Instant::now() < deadline, "no read event");
            backend
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
        }
        let mut chunk = [0u8; 16];
        let n = backend.read(accepted.as_raw_fd(), tok, &mut chunk).unwrap();
        assert_eq!(&chunk[..n], b"ping");
        let err = backend
            .read(accepted.as_raw_fd(), tok, &mut chunk)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);

        let wrote = backend
            .writev(accepted.as_raw_fd(), tok, &[b"po", b"", b"ng"])
            .unwrap();
        assert_eq!(wrote, 4);
        let mut got = [0u8; 4];
        (&client).read_exact(&mut got).unwrap();
        assert_eq!(&got, b"pong");

        let counters = backend.counters();
        assert!(counters.sqe_submitted > 0);
        assert!(counters.cqe_completed > 0);
        assert_eq!(counters.epoll_ctl_calls, 0);

        backend.deregister(tok);
        drop(accepted);
        // The ring keeps working after a deregister + close.
        backend.wait(&mut events, Some(Duration::ZERO)).unwrap();
    }

    #[test]
    fn waker_interrupts_uring_wait() {
        if skip_notice() {
            return;
        }
        let mut backend = UringBackend::new(1).unwrap();
        let waker = backend.wake_handle();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !events.iter().any(|e: &Event| e.token == 1 && e.readable) {
            assert!(std::time::Instant::now() < deadline, "waker never fired");
            backend
                .wait(&mut events, Some(Duration::from_secs(1)))
                .unwrap();
        }
        backend.drain_waker();
        handle.join().unwrap();
    }

    #[test]
    fn interest_changes_rearm_poll() {
        if skip_notice() {
            return;
        }
        let mut backend = UringBackend::new(1).unwrap();
        let listener = super::super::listen_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let client = super::super::connect_nonblocking(listener.local_addr().unwrap()).unwrap();
        let tok = 9;
        backend
            .register(client.as_raw_fd(), tok, Interest::WRITABLE)
            .unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !events.iter().any(|e: &Event| e.token == tok && e.writable) {
            assert!(std::time::Instant::now() < deadline, "no writable event");
            backend
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
        }
        // Narrow to readable-only: no data → no events, and the old
        // writable arm must not fire again after the re-arm.
        backend.set_interest(tok, Interest::READABLE);
        backend.wait(&mut events, Some(Duration::ZERO)).unwrap();
        backend
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(
            !events.iter().any(|e| e.token == tok && e.writable),
            "stale writable arm leaked through: {events:?}"
        );
    }
}
